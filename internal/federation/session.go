package federation

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"

	"idaax/internal/accel"
	"idaax/internal/catalog"
	"idaax/internal/core"
	"idaax/internal/expr"
	"idaax/internal/obs"
	"idaax/internal/obs/eventlog"
	"idaax/internal/relalg"
	"idaax/internal/shard"
	"idaax/internal/sqlparse"
	"idaax/internal/txn"
	"idaax/internal/types"
)

// AccelerationMode mirrors the DB2 special register CURRENT QUERY ACCELERATION.
type AccelerationMode int

const (
	// AccelerationNone disables query offload; queries on AOTs fail.
	AccelerationNone AccelerationMode = iota
	// AccelerationEnable offloads eligible queries and runs the rest locally.
	AccelerationEnable
	// AccelerationEligible behaves like ENABLE in this implementation.
	AccelerationEligible
	// AccelerationAll requires offload and fails queries that cannot be offloaded.
	AccelerationAll
)

// String returns the register spelling of the mode.
func (m AccelerationMode) String() string {
	switch m {
	case AccelerationNone:
		return "NONE"
	case AccelerationEnable:
		return "ENABLE"
	case AccelerationEligible:
		return "ELIGIBLE"
	case AccelerationAll:
		return "ALL"
	default:
		return "UNKNOWN"
	}
}

// ParseAccelerationMode parses the register value.
func ParseAccelerationMode(s string) (AccelerationMode, error) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "NONE":
		return AccelerationNone, nil
	case "ENABLE", "ENABLE WITH FAILBACK":
		return AccelerationEnable, nil
	case "ELIGIBLE":
		return AccelerationEligible, nil
	case "ALL":
		return AccelerationAll, nil
	default:
		return AccelerationNone, fmt.Errorf("federation: invalid CURRENT QUERY ACCELERATION value %q", s)
	}
}

// Result is the outcome of one statement.
type Result struct {
	// Columns are the result-set column names (queries and SHOW/EXPLAIN).
	Columns []string
	// Rows is the result set.
	Rows []types.Row
	// RowsAffected counts modified rows for DML.
	RowsAffected int
	// Routed names where the statement ran: "DB2", an accelerator name, or a
	// combination such as "DB2->IDAA1" for cross-system INSERT ... SELECT.
	Routed string
	// Message is an informational completion message.
	Message string
}

// Session is one application connection. It carries the authorization id, the
// CURRENT QUERY ACCELERATION register, and the open transaction including the
// set of accelerators that participated in it.
type Session struct {
	coord        *Coordinator
	user         string
	mode         AccelerationMode
	tx           *txn.Txn
	explicit     bool
	participants map[string]accel.Backend

	// prof is the root trace span of the statement currently executing (nil
	// between statements). Nested statements run from a procedure body attach
	// their backend work to it instead of opening their own profile, so one
	// CALL is one history entry whose trace nests the inner statements.
	prof *obs.Span

	// pendingQueueWait is admission queue time the serving layer recorded for
	// the next statement; beginProfile folds it into the statement's trace as
	// an admission_queue span and clears it.
	pendingQueueWait time.Duration
}

// NoteQueueWait records how long the next statement waited in the admission
// queue before this session got to run it. The wire serving layer calls it
// after acquiring an admission slot so queue time shows up in the statement's
// trace (and EXPLAIN ANALYZE / slow-query output) alongside execution time.
func (s *Session) NoteQueueWait(d time.Duration) {
	if d > 0 {
		s.pendingQueueWait = d
	}
}

// User returns the session's authorization id.
func (s *Session) User() string { return s.user }

// AccelerationMode returns the current offload mode.
func (s *Session) AccelerationMode() AccelerationMode { return s.mode }

// SetAccelerationMode sets the offload mode (equivalent to the SET statement).
func (s *Session) SetAccelerationMode(m AccelerationMode) { s.mode = m }

// InTransaction reports whether an explicit transaction is open.
func (s *Session) InTransaction() bool { return s.tx != nil && s.explicit }

// ---------------------------------------------------------------------------
// Public execution API
// ---------------------------------------------------------------------------

// Exec parses and executes a single SQL statement.
func (s *Session) Exec(sql string) (*Result, error) {
	prof := s.beginProfile(sql)
	psp := prof.span.Child("parse")
	st, err := sqlparse.Parse(sql)
	psp.Finish()
	if err != nil {
		prof.finish(nil, nil, err)
		return nil, err
	}
	res, err := s.dispatchStmt(st)
	prof.finish(st, res, err)
	return res, err
}

// ExecScript parses and executes a semicolon-separated script, stopping at the
// first error.
func (s *Session) ExecScript(sql string) ([]*Result, error) {
	stmts, err := sqlparse.ParseMulti(sql)
	if err != nil {
		return nil, err
	}
	results := make([]*Result, 0, len(stmts))
	for _, st := range stmts {
		res, err := s.ExecStmt(st)
		if err != nil {
			return results, err
		}
		results = append(results, res)
	}
	return results, nil
}

// Query is Exec restricted to statements producing a result set.
func (s *Session) Query(sql string) (*Result, error) {
	res, err := s.Exec(sql)
	if err != nil {
		return nil, err
	}
	if res.Columns == nil {
		return nil, fmt.Errorf("federation: statement did not produce a result set")
	}
	return res, nil
}

// Begin starts an explicit transaction.
func (s *Session) Begin() error {
	if s.tx != nil {
		return fmt.Errorf("federation: a transaction is already active")
	}
	s.tx = s.coord.DB2.Begin(false)
	s.explicit = true
	return nil
}

// Commit commits the explicit transaction across DB2 and every participating
// accelerator (prepare, DB2 commit, accelerator commit).
func (s *Session) Commit() error {
	if s.tx == nil {
		return fmt.Errorf("federation: no transaction is active")
	}
	tx := s.tx
	s.tx = nil
	s.explicit = false
	return s.commitTxn(tx)
}

// Rollback rolls the explicit transaction back on both sides.
func (s *Session) Rollback() error {
	if s.tx == nil {
		return fmt.Errorf("federation: no transaction is active")
	}
	tx := s.tx
	s.tx = nil
	s.explicit = false
	s.abortTxn(tx)
	return nil
}

// ExecStmt executes an already-parsed statement.
func (s *Session) ExecStmt(st sqlparse.Statement) (*Result, error) {
	prof := s.beginProfile(stmtText(st))
	res, err := s.dispatchStmt(st)
	prof.finish(st, res, err)
	return res, err
}

// dispatchStmt executes a statement under the already-open profile.
func (s *Session) dispatchStmt(st sqlparse.Statement) (*Result, error) {
	switch stmt := st.(type) {
	case *sqlparse.BeginStmt:
		if err := s.Begin(); err != nil {
			return nil, err
		}
		return &Result{Message: "transaction started", Routed: "DB2"}, nil
	case *sqlparse.CommitStmt:
		if err := s.Commit(); err != nil {
			return nil, err
		}
		return &Result{Message: "committed", Routed: "DB2"}, nil
	case *sqlparse.RollbackStmt:
		if err := s.Rollback(); err != nil {
			return nil, err
		}
		return &Result{Message: "rolled back", Routed: "DB2"}, nil
	case *sqlparse.SetStmt:
		return s.execSet(stmt)
	case *sqlparse.ShowStmt:
		return s.execShow(stmt)
	case *sqlparse.ExplainStmt:
		return s.execExplain(stmt)
	case *sqlparse.AnalyzeStmt:
		return s.execAnalyze(stmt)
	case *sqlparse.AlterAcceleratorStmt:
		return s.execAlterAccelerator(stmt)
	}

	tx, done := s.stmtTxn()
	res, err := s.execInTxn(tx, st)
	if ferr := done(err); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		return nil, err
	}
	return res, nil
}

// ---------------------------------------------------------------------------
// Transaction plumbing
// ---------------------------------------------------------------------------

// stmtTxn returns the transaction a statement should run under and a finaliser.
// Inside an explicit transaction the finaliser is a no-op; otherwise an
// implicit transaction is created and committed/rolled back around the
// statement (auto-commit).
func (s *Session) stmtTxn() (*txn.Txn, func(error) error) {
	if s.tx != nil {
		return s.tx, func(err error) error { return err }
	}
	tx := s.coord.DB2.Begin(true)
	return tx, func(err error) error {
		if err != nil {
			s.abortTxn(tx)
			return err
		}
		return s.commitTxn(tx)
	}
}

func (s *Session) addParticipant(a accel.Backend) {
	s.participants[a.Name()] = a
}

// commitTxn runs the commit handshake: prepare every participating
// accelerator, commit DB2, then commit the accelerators. A prepare failure
// rolls everything back. Failpoints let tests exercise coordinator crashes
// between the stages; once DB2 has committed, the accelerators are always
// driven to commit as well (in-doubt resolution in favour of commit).
func (s *Session) commitTxn(tx *txn.Txn) error {
	for _, a := range s.participants {
		if err := a.Prepare(int64(tx.ID)); err != nil {
			s.abortTxn(tx)
			return fmt.Errorf("federation: accelerator %s failed to prepare: %w", a.Name(), err)
		}
	}
	if err := s.coord.failpoint("after-prepare"); err != nil {
		s.abortTxn(tx)
		return err
	}
	db2Err := s.coord.DB2.Commit(tx)
	failpointErr := s.coord.failpoint("after-db2-commit")
	for _, a := range orderGroupsFirst(s.participants) {
		a.CommitTxn(int64(tx.ID))
	}
	s.participants = make(map[string]accel.Backend)
	// Accelerator commit records and DDL/catalog records are appended without
	// their own fsync; this group-shared barrier makes everything journaled
	// so far durable before the statement is acknowledged, and surfaces a
	// poisoned log as a commit error. It is a no-op when nothing was appended
	// since the last sync (pure reads, or DB2's own commit barrier covered it).
	barrierErr := s.coord.commitBarrier()
	if failpointErr != nil {
		return failpointErr
	}
	if db2Err != nil {
		return db2Err
	}
	return barrierErr
}

func (s *Session) abortTxn(tx *txn.Txn) {
	_ = s.coord.DB2.Rollback(tx)
	participants := orderGroupsFirst(s.participants)
	for _, a := range participants {
		a.AbortTxn(int64(tx.ID))
	}
	s.participants = make(map[string]accel.Backend)
	s.coord.Events.Emitf(eventlog.TypeTxnAborted, eventlog.Warn, "", "",
		fmt.Sprintf("transaction %d rolled back (user %s, %d accelerator participant(s))", tx.ID, s.user, len(participants)))
}

// orderGroupsFirst returns the participants with shard groups ahead of plain
// accelerators. A shard group's CommitTxn commits every member under its
// visibility fence; committing groups first means a member that also
// participated directly (e.g. an AOT on one fleet accelerator) is already
// committed when its own turn comes, so no member's visibility ever flips
// outside the fence.
func orderGroupsFirst(participants map[string]accel.Backend) []accel.Backend {
	out := make([]accel.Backend, 0, len(participants))
	for _, a := range participants {
		if _, isGroup := a.(*shard.Router); isGroup {
			out = append(out, a)
		}
	}
	for _, a := range participants {
		if _, isGroup := a.(*shard.Router); !isGroup {
			out = append(out, a)
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Statement execution inside a transaction
// ---------------------------------------------------------------------------

func (s *Session) execInTxn(tx *txn.Txn, st sqlparse.Statement) (*Result, error) {
	switch stmt := st.(type) {
	case *sqlparse.SelectStmt:
		return s.execSelect(tx, stmt)
	case *sqlparse.CreateTableStmt:
		return s.execCreateTable(tx, stmt)
	case *sqlparse.DropTableStmt:
		return s.execDropTable(stmt)
	case *sqlparse.TruncateStmt:
		return s.execTruncate(tx, stmt)
	case *sqlparse.InsertStmt:
		return s.execInsert(tx, stmt)
	case *sqlparse.UpdateStmt:
		return s.execUpdate(tx, stmt)
	case *sqlparse.DeleteStmt:
		return s.execDelete(tx, stmt)
	case *sqlparse.GrantStmt:
		return s.execGrant(stmt)
	case *sqlparse.RevokeStmt:
		return s.execRevoke(stmt)
	case *sqlparse.CallStmt:
		return s.execCall(tx, stmt)
	default:
		return nil, fmt.Errorf("federation: unsupported statement %T", st)
	}
}

// execSelect routes and runs a query.
func (s *Session) execSelect(tx *txn.Txn, sel *sqlparse.SelectStmt) (*Result, error) {
	rel, routed, err := s.runSelect(tx, sel)
	if err != nil {
		return nil, err
	}
	atomic.AddInt64(&s.coord.metrics.RowsReturnedToClient, int64(len(rel.Rows)))
	return relationResult(rel, routed), nil
}

// runSelect checks privileges, routes and executes a SELECT, returning the
// relation and the system it ran on.
func (s *Session) runSelect(tx *txn.Txn, sel *sqlparse.SelectStmt) (*relalg.Relation, string, error) {
	tables := sqlparse.ReferencedTables(sel)
	for _, t := range tables {
		if err := s.coord.cat.CheckPrivilege(s.user, t, catalog.PrivSelect); err != nil {
			return nil, "", err
		}
	}
	dec, err := s.routeSelect(sel)
	if err != nil {
		return nil, "", err
	}
	s.coord.noteRouting(dec.offload)
	if dec.offload {
		rel, err := dec.accel.QueryTraced(int64(tx.ID), sel, s.execSpan())
		if err != nil {
			return nil, "", err
		}
		return rel, dec.accelName, nil
	}
	dsp := s.execSpan().Child("db2")
	rel, err := s.coord.DB2.Query(tx, sel)
	dsp.Finish()
	if err != nil {
		return nil, "", err
	}
	return rel, "DB2", nil
}

// routeDecision captures where a query will run and why.
type routeDecision struct {
	offload   bool
	accel     accel.Backend
	accelName string
	reason    string
}

// routeSelect implements the offload rules: queries referencing an
// accelerator-only table must run on its accelerator; queries whose tables all
// have accelerator copies are offloaded when acceleration is enabled;
// everything else runs in DB2 (or fails under ACCELERATION ALL).
func (s *Session) routeSelect(sel *sqlparse.SelectStmt) (routeDecision, error) {
	tables := sqlparse.ReferencedTables(sel)
	if len(tables) == 0 {
		return routeDecision{offload: false, reason: "no table references"}, nil
	}
	anyAOT := false
	allAccelResident := true
	accelName := ""
	for _, t := range tables {
		meta, err := s.coord.cat.Table(t)
		if err != nil {
			return routeDecision{}, err
		}
		switch meta.Kind {
		case catalog.KindAcceleratorOnly:
			anyAOT = true
			if accelName == "" {
				accelName = meta.Accelerator
			} else if accelName != meta.Accelerator {
				return routeDecision{}, fmt.Errorf("federation: query references tables on different accelerators (%s, %s)", accelName, meta.Accelerator)
			}
		case catalog.KindAccelerated:
			if accelName == "" {
				accelName = meta.Accelerator
			} else if accelName != meta.Accelerator {
				return routeDecision{}, fmt.Errorf("federation: query references tables on different accelerators (%s, %s)", accelName, meta.Accelerator)
			}
		case catalog.KindRegular:
			allAccelResident = false
		}
	}
	if anyAOT {
		if !allAccelResident {
			return routeDecision{}, fmt.Errorf("federation: query mixes accelerator-only tables with tables that have no accelerator copy")
		}
		if s.mode == AccelerationNone {
			return routeDecision{}, fmt.Errorf("federation: CURRENT QUERY ACCELERATION is NONE but the query references accelerator-only tables")
		}
		a, err := s.coord.Accelerator(accelName)
		if err != nil {
			return routeDecision{}, err
		}
		return routeDecision{offload: true, accel: a, accelName: accelName, reason: "references accelerator-only tables"}, nil
	}
	if s.mode == AccelerationNone {
		return routeDecision{offload: false, reason: "CURRENT QUERY ACCELERATION = NONE"}, nil
	}
	if allAccelResident && accelName != "" {
		a, err := s.coord.Accelerator(accelName)
		if err != nil {
			return routeDecision{}, err
		}
		return routeDecision{offload: true, accel: a, accelName: accelName, reason: "all referenced tables are accelerated"}, nil
	}
	if s.mode == AccelerationAll {
		return routeDecision{}, fmt.Errorf("federation: CURRENT QUERY ACCELERATION is ALL but the query is not accelerable")
	}
	return routeDecision{offload: false, reason: "referenced tables are not (all) accelerated"}, nil
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

func (s *Session) execCreateTable(tx *txn.Txn, stmt *sqlparse.CreateTableStmt) (*Result, error) {
	routed := "DB2"
	if stmt.InAccelerator != "" {
		if err := s.coord.AOTs.Create(s.user, stmt); err != nil {
			return nil, err
		}
		routed = types.NormalizeName(stmt.InAccelerator)
	} else {
		if len(stmt.Columns) == 0 && stmt.AsSelect != nil {
			return nil, fmt.Errorf("federation: CREATE TABLE ... AS SELECT without a column list requires IN ACCELERATOR in this implementation")
		}
		schema := db2SchemaFromDefs(stmt.Columns)
		if err := s.coord.DB2.CreateTable(stmt.Table, schema, s.user); err != nil {
			if stmt.IfNotExists && s.coord.cat.HasTable(stmt.Table) {
				return &Result{Message: "table already exists", Routed: routed}, nil
			}
			return nil, err
		}
	}
	affected := 0
	if stmt.AsSelect != nil {
		ins := &sqlparse.InsertStmt{Table: stmt.Table, Select: stmt.AsSelect}
		res, err := s.execInsert(tx, ins)
		if err != nil {
			return nil, err
		}
		affected = res.RowsAffected
	}
	return &Result{RowsAffected: affected, Routed: routed, Message: "table " + types.NormalizeName(stmt.Table) + " created"}, nil
}

func (s *Session) execDropTable(stmt *sqlparse.DropTableStmt) (*Result, error) {
	meta, err := s.coord.cat.Table(stmt.Table)
	if err != nil {
		if stmt.IfExists {
			return &Result{Message: "table does not exist", Routed: "DB2"}, nil
		}
		return nil, err
	}
	if err := s.checkOwnership(meta); err != nil {
		return nil, err
	}
	switch meta.Kind {
	case catalog.KindAcceleratorOnly:
		if err := s.coord.AOTs.Drop(meta.Name); err != nil {
			return nil, err
		}
		return &Result{Routed: meta.Accelerator, Message: "accelerator-only table dropped"}, nil
	case catalog.KindAccelerated:
		a, err := s.coord.Accelerator(meta.Accelerator)
		if err == nil && a.HasTable(meta.Name) {
			_ = a.DropTable(meta.Name)
		}
		if err := s.coord.DB2.DropTable(meta.Name); err != nil {
			return nil, err
		}
		return &Result{Routed: "DB2", Message: "accelerated table dropped"}, nil
	default:
		if err := s.coord.DB2.DropTable(meta.Name); err != nil {
			return nil, err
		}
		return &Result{Routed: "DB2", Message: "table dropped"}, nil
	}
}

func (s *Session) execTruncate(tx *txn.Txn, stmt *sqlparse.TruncateStmt) (*Result, error) {
	meta, err := s.coord.cat.Table(stmt.Table)
	if err != nil {
		return nil, err
	}
	if err := s.coord.cat.CheckPrivilege(s.user, meta.Name, catalog.PrivDelete); err != nil {
		return nil, err
	}
	if meta.Kind == catalog.KindAcceleratorOnly {
		a, err := s.coord.Accelerator(meta.Accelerator)
		if err != nil {
			return nil, err
		}
		s.addParticipant(a)
		n, err := a.Truncate(int64(tx.ID), meta.Name)
		if err != nil {
			return nil, err
		}
		return &Result{RowsAffected: n, Routed: meta.Accelerator}, nil
	}
	n, err := s.coord.DB2.Truncate(tx, meta.Name)
	if err != nil {
		return nil, err
	}
	return &Result{RowsAffected: n, Routed: "DB2"}, nil
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

func (s *Session) execInsert(tx *txn.Txn, stmt *sqlparse.InsertStmt) (*Result, error) {
	meta, err := s.coord.cat.Table(stmt.Table)
	if err != nil {
		return nil, err
	}
	if err := s.coord.cat.CheckPrivilege(s.user, meta.Name, catalog.PrivInsert); err != nil {
		return nil, err
	}

	sourceRouted := ""
	var rows []types.Row
	if stmt.Select != nil {
		rel, routed, err := s.runSelect(tx, stmt.Select)
		if err != nil {
			return nil, err
		}
		sourceRouted = routed
		rows, err = expr.MapSelectRows(stmt.Columns, rel.Rows, meta.Schema)
		if err != nil {
			return nil, err
		}
	} else {
		rows, err = expr.BuildInsertRows(stmt.Columns, stmt.Rows, meta.Schema)
		if err != nil {
			return nil, err
		}
	}

	if meta.Kind == catalog.KindAcceleratorOnly {
		a, err := s.coord.Accelerator(meta.Accelerator)
		if err != nil {
			return nil, err
		}
		s.addParticipant(a)
		n, err := a.Insert(int64(tx.ID), meta.Name, rows)
		if err != nil {
			return nil, err
		}
		routed := meta.Accelerator
		if sourceRouted == "DB2" {
			s.coord.addMoved(true, n)
			routed = "DB2->" + meta.Accelerator
		} else if sourceRouted == "" && stmt.Select == nil {
			// VALUES travel from the application through DB2 to the accelerator.
			s.coord.addMoved(true, n)
		}
		return &Result{RowsAffected: n, Routed: routed}, nil
	}

	n, err := s.coord.DB2.Insert(tx, meta.Name, rows)
	if err != nil {
		return nil, err
	}
	routed := "DB2"
	if sourceRouted != "" && sourceRouted != "DB2" {
		s.coord.addMoved(false, n)
		routed = sourceRouted + "->DB2"
	}
	return &Result{RowsAffected: n, Routed: routed}, nil
}

func (s *Session) execUpdate(tx *txn.Txn, stmt *sqlparse.UpdateStmt) (*Result, error) {
	meta, err := s.coord.cat.Table(stmt.Table)
	if err != nil {
		return nil, err
	}
	if err := s.coord.cat.CheckPrivilege(s.user, meta.Name, catalog.PrivUpdate); err != nil {
		return nil, err
	}
	if meta.Kind == catalog.KindAcceleratorOnly {
		a, err := s.coord.Accelerator(meta.Accelerator)
		if err != nil {
			return nil, err
		}
		s.addParticipant(a)
		n, err := a.Update(int64(tx.ID), meta.Name, stmt.Assignments, stmt.Where)
		if err != nil {
			return nil, err
		}
		return &Result{RowsAffected: n, Routed: meta.Accelerator}, nil
	}
	n, err := s.coord.DB2.Update(tx, meta.Name, stmt.Assignments, stmt.Where)
	if err != nil {
		return nil, err
	}
	return &Result{RowsAffected: n, Routed: "DB2"}, nil
}

func (s *Session) execDelete(tx *txn.Txn, stmt *sqlparse.DeleteStmt) (*Result, error) {
	meta, err := s.coord.cat.Table(stmt.Table)
	if err != nil {
		return nil, err
	}
	if err := s.coord.cat.CheckPrivilege(s.user, meta.Name, catalog.PrivDelete); err != nil {
		return nil, err
	}
	if meta.Kind == catalog.KindAcceleratorOnly {
		a, err := s.coord.Accelerator(meta.Accelerator)
		if err != nil {
			return nil, err
		}
		s.addParticipant(a)
		n, err := a.Delete(int64(tx.ID), meta.Name, stmt.Where)
		if err != nil {
			return nil, err
		}
		return &Result{RowsAffected: n, Routed: meta.Accelerator}, nil
	}
	n, err := s.coord.DB2.Delete(tx, meta.Name, stmt.Where)
	if err != nil {
		return nil, err
	}
	return &Result{RowsAffected: n, Routed: "DB2"}, nil
}

// ---------------------------------------------------------------------------
// Governance
// ---------------------------------------------------------------------------

func (s *Session) checkOwnership(meta *catalog.Table) error {
	if s.user == types.NormalizeName(s.coord.cfg.AdminUser) || s.user == catalog.AdminUser {
		return nil
	}
	if types.NormalizeName(meta.Owner) == s.user {
		return nil
	}
	return &catalog.ErrNotAuthorized{User: s.user, Privilege: "CONTROL", Object: meta.Name}
}

func (s *Session) execGrant(stmt *sqlparse.GrantStmt) (*Result, error) {
	meta, err := s.coord.cat.Table(stmt.Table)
	if err != nil {
		return nil, err
	}
	if err := s.checkOwnership(meta); err != nil {
		return nil, err
	}
	s.coord.cat.Grant(stmt.Grantee, meta.Name, stmt.Privileges...)
	return &Result{Routed: "DB2", Message: fmt.Sprintf("granted %s on %s to %s", strings.Join(stmt.Privileges, ","), meta.Name, stmt.Grantee)}, nil
}

func (s *Session) execRevoke(stmt *sqlparse.RevokeStmt) (*Result, error) {
	meta, err := s.coord.cat.Table(stmt.Table)
	if err != nil {
		return nil, err
	}
	if err := s.checkOwnership(meta); err != nil {
		return nil, err
	}
	s.coord.cat.Revoke(stmt.Grantee, meta.Name, stmt.Privileges...)
	return &Result{Routed: "DB2", Message: fmt.Sprintf("revoked %s on %s from %s", strings.Join(stmt.Privileges, ","), meta.Name, stmt.Grantee)}, nil
}

// ---------------------------------------------------------------------------
// Procedures (the analytics framework entry point)
// ---------------------------------------------------------------------------

func (s *Session) execCall(tx *txn.Txn, stmt *sqlparse.CallStmt) (*Result, error) {
	atomic.AddInt64(&s.coord.metrics.ProcedureCalls, 1)
	env := expr.NewEnv(nil)
	args := make([]types.Value, len(stmt.Args))
	for i, a := range stmt.Args {
		v, err := env.Eval(a, nil)
		if err != nil {
			return nil, err
		}
		args[i] = v
	}
	acc, err := s.coord.Accelerator("")
	if err != nil {
		return nil, err
	}
	ctx := &core.ProcContext{
		User:        s.user,
		TxnID:       int64(tx.ID),
		Catalog:     s.coord.cat,
		Accelerator: acc,
		AOTs:        s.coord.AOTs,
		Span:        s.execSpan(),
		Query: func(sel *sqlparse.SelectStmt) (*relalg.Relation, error) {
			rel, _, err := s.runSelect(tx, sel)
			return rel, err
		},
		Exec: func(inner sqlparse.Statement) (int, error) {
			res, err := s.execInTxn(tx, inner)
			if err != nil {
				return 0, err
			}
			return res.RowsAffected, nil
		},
		InsertRows: func(table string, rows []types.Row) (int, error) {
			n, err := s.insertMaterialized(tx, table, rows)
			if err != nil {
				return 0, err
			}
			// Procedure output rows are produced on the accelerator; writing
			// them to a DB2-resident table is cross-system movement.
			if meta, merr := s.coord.cat.Table(table); merr == nil && meta.Kind != catalog.KindAcceleratorOnly {
				s.coord.addMoved(false, n)
			}
			return n, nil
		},
		BackendFor: func(table string) (accel.Backend, string) {
			meta, err := s.coord.cat.Table(table)
			if err != nil || meta.Accelerator == "" {
				return nil, ""
			}
			b, err := s.coord.Accelerator(meta.Accelerator)
			if err != nil {
				return nil, ""
			}
			return b, meta.Accelerator
		},
	}
	procRes, err := s.coord.Procs.Call(ctx, stmt.Procedure, args)
	if err != nil {
		return nil, err
	}
	res := &Result{
		RowsAffected: procRes.RowsAffected,
		Routed:       acc.Name(),
		Message:      procRes.Message,
	}
	if procRes.Relation != nil {
		filled := relationResult(procRes.Relation, acc.Name())
		res.Columns = filled.Columns
		res.Rows = filled.Rows
	}
	return res, nil
}

// insertMaterialized writes already-materialised rows (produced on the
// accelerator, e.g. by an analytics procedure) into a table under the given
// transaction, with the usual privilege check and AOT delegation. Rows
// written to an AOT stay on the accelerator and are not counted as moved.
func (s *Session) insertMaterialized(tx *txn.Txn, table string, rows []types.Row) (int, error) {
	meta, err := s.coord.cat.Table(table)
	if err != nil {
		return 0, err
	}
	if err := s.coord.cat.CheckPrivilege(s.user, meta.Name, catalog.PrivInsert); err != nil {
		return 0, err
	}
	if meta.Kind == catalog.KindAcceleratorOnly {
		a, err := s.coord.Accelerator(meta.Accelerator)
		if err != nil {
			return 0, err
		}
		s.addParticipant(a)
		return a.Insert(int64(tx.ID), meta.Name, rows)
	}
	return s.coord.DB2.Insert(tx, meta.Name, rows)
}

// ---------------------------------------------------------------------------
// Session control, SHOW, EXPLAIN
// ---------------------------------------------------------------------------

func (s *Session) execSet(stmt *sqlparse.SetStmt) (*Result, error) {
	name := strings.ToUpper(strings.TrimSpace(stmt.Name))
	if strings.Contains(name, "QUERY ACCELERATION") || name == "ACCELERATION" {
		mode, err := ParseAccelerationMode(stmt.Value)
		if err != nil {
			return nil, err
		}
		s.mode = mode
		return &Result{Message: "CURRENT QUERY ACCELERATION = " + mode.String(), Routed: "DB2"}, nil
	}
	return nil, fmt.Errorf("federation: unknown special register %q", stmt.Name)
}

func (s *Session) execShow(stmt *sqlparse.ShowStmt) (*Result, error) {
	switch types.NormalizeName(stmt.What) {
	case "TABLES":
		res := &Result{Columns: []string{"NAME", "KIND", "ACCELERATOR", "DB2_ROWS", "ACCEL_ROWS"}, Routed: "DB2"}
		for _, meta := range s.coord.cat.Tables() {
			db2Rows := int64(-1)
			if st, err := s.coord.DB2.Storage(meta.Name); err == nil {
				db2Rows = int64(st.RowCount())
			}
			accelRows := int64(-1)
			if meta.Kind != catalog.KindRegular {
				if a, err := s.coord.Accelerator(meta.Accelerator); err == nil {
					if n, err := a.RowCount(0, meta.Name); err == nil {
						accelRows = int64(n)
					}
				}
			}
			res.Rows = append(res.Rows, types.Row{
				types.NewString(meta.Name),
				types.NewString(meta.Kind.String()),
				types.NewString(meta.Accelerator),
				types.NewInt(db2Rows),
				types.NewInt(accelRows),
			})
		}
		return res, nil
	case "ACCELERATORS":
		res := &Result{Columns: []string{"NAME", "SLICES", "TABLES", "QUERIES", "ROWS_SCANNED", "BLOCKS_PRUNED", "ROWS_INGESTED"}, Routed: "DB2"}
		for _, name := range s.coord.Accelerators() {
			a, err := s.coord.Accelerator(name)
			if err != nil {
				continue
			}
			st := a.Stats()
			res.Rows = append(res.Rows, types.Row{
				types.NewString(name),
				types.NewInt(int64(st.Slices)),
				types.NewInt(int64(st.Tables)),
				types.NewInt(st.QueriesRun),
				types.NewInt(st.RowsScanned),
				types.NewInt(st.BlocksPruned),
				types.NewInt(st.RowsIngested),
			})
		}
		return res, nil
	case "PROCEDURES":
		res := &Result{Columns: []string{"NAME"}, Routed: "DB2"}
		for _, name := range s.coord.Procs.List() {
			res.Rows = append(res.Rows, types.Row{types.NewString(name)})
		}
		return res, nil
	default:
		return nil, fmt.Errorf("federation: SHOW %s is not supported (use TABLES, ACCELERATORS or PROCEDURES)", stmt.What)
	}
}

// execExplain renders the routing decision and — for offloaded SELECTs — the
// cost-based execution plan: scan cardinalities with pushdown predicates,
// the chosen join order and methods, and the shard placement (co-located /
// broadcast / gather, with the pruned candidate shard set). The first row is
// the routing summary; subsequent rows carry one plan line each.
//
// EXPLAIN ANALYZE additionally executes the SELECT under a trace span and
// annotates each plan operator with what it actually did — rows produced,
// elapsed time (the longest single-shard scan for a scatter), participating
// shards, blocks pruned — beside the planner's estimates.
func (s *Session) execExplain(stmt *sqlparse.ExplainStmt) (*Result, error) {
	res := &Result{Columns: []string{"STATEMENT", "ROUTED_TO", "REASON", "PLAN"}, Routed: "DB2"}
	summary := func(stmtName, to, reason string) {
		res.Rows = append(res.Rows, types.Row{
			types.NewString(stmtName), types.NewString(to), types.NewString(reason), types.NewString(""),
		})
	}
	planLine := func(line string) {
		res.Rows = append(res.Rows, types.Row{
			types.NewString(""), types.NewString(""), types.NewString(""), types.NewString(line),
		})
	}
	switch target := stmt.Target.(type) {
	case *sqlparse.SelectStmt:
		dec, err := s.routeSelect(target)
		if err != nil {
			return nil, err
		}
		to := "DB2"
		if dec.offload {
			to = dec.accelName
		}
		summary("SELECT", to, dec.reason)
		if !dec.offload {
			if stmt.Analyze {
				rel, elapsed, err := s.executeForAnalyze(target, nil)
				if err != nil {
					return nil, err
				}
				planLine("execution: DB2 row engine (no accelerator plan)")
				planLine(fmt.Sprintf("actual rows=%d time=%.3fms", len(rel.Rows), float64(elapsed)/float64(time.Millisecond)))
			}
			break
		}
		plan, err := dec.accel.Explain(target)
		if err != nil {
			return nil, err
		}
		if plan == nil {
			break
		}
		lines := plan.Describe()
		if stmt.Analyze {
			xsp := obs.NewSpan("execute")
			rel, _, err := s.executeForAnalyze(target, xsp)
			if err != nil {
				return nil, err
			}
			xsp.Finish()
			lines = plan.DescribeAnalyze(actualsFromSpan(xsp, len(rel.Rows)))
		}
		for _, line := range lines {
			planLine(line)
		}
	case *sqlparse.InsertStmt, *sqlparse.UpdateStmt, *sqlparse.DeleteStmt, *sqlparse.TruncateStmt:
		tables := sqlparse.StatementTables(stmt.Target)
		to, reason := "DB2", "target table is DB2-resident"
		if len(tables) > 0 {
			if meta, err := s.coord.cat.Table(tables[0]); err == nil && meta.Kind == catalog.KindAcceleratorOnly {
				to, reason = meta.Accelerator, "target table is accelerator-only"
			}
		}
		summary(fmt.Sprintf("%T", stmt.Target), to, reason)
	default:
		summary(fmt.Sprintf("%T", stmt.Target), "DB2", "statement type always runs in DB2")
	}
	return res, nil
}

// executeForAnalyze runs a SELECT on behalf of EXPLAIN ANALYZE, attaching the
// backend's work to sp (nil for a DB2-routed statement, where only the total
// is reported). The usual privilege checks and auto-commit rules apply, so an
// EXPLAIN ANALYZE inside an explicit transaction sees that transaction's
// snapshot.
func (s *Session) executeForAnalyze(sel *sqlparse.SelectStmt, sp *obs.Span) (*relalg.Relation, time.Duration, error) {
	for _, t := range sqlparse.ReferencedTables(sel) {
		if err := s.coord.cat.CheckPrivilege(s.user, t, catalog.PrivSelect); err != nil {
			return nil, 0, err
		}
	}
	dec, err := s.routeSelect(sel)
	if err != nil {
		return nil, 0, err
	}
	tx, done := s.stmtTxn()
	start := time.Now()
	var rel *relalg.Relation
	if dec.offload {
		rel, err = dec.accel.QueryTraced(int64(tx.ID), sel, sp)
	} else {
		rel, err = s.coord.DB2.Query(tx, sel)
	}
	elapsed := time.Since(start)
	if ferr := done(err); ferr != nil && err == nil {
		err = ferr
	}
	if err != nil {
		return nil, 0, err
	}
	return rel, elapsed, nil
}

// execAlterAccelerator implements the elastic-fleet DDL: ALTER ACCELERATOR
// <group> ADD MEMBER <name> [SLICES n] grows the shard group and starts a
// background rebalance; REMOVE MEMBER drains the member and detaches it,
// blocking until the drain completes. Changing fleet topology is an
// administrative action.
func (s *Session) execAlterAccelerator(stmt *sqlparse.AlterAcceleratorStmt) (*Result, error) {
	if s.user != types.NormalizeName(s.coord.cfg.AdminUser) && s.user != catalog.AdminUser {
		return nil, &catalog.ErrNotAuthorized{User: s.user, Privilege: "CONTROL", Object: types.NormalizeName(stmt.Accelerator)}
	}
	group := types.NormalizeName(stmt.Accelerator)
	member := types.NormalizeName(stmt.Member)
	if stmt.Remove {
		if err := s.coord.RemoveShardMember(group, member); err != nil {
			return nil, err
		}
		return &Result{
			Routed:  group,
			Message: fmt.Sprintf("member %s drained and removed from %s", member, group),
		}, nil
	}
	if err := s.coord.AddShardMember(group, member, stmt.Slices); err != nil {
		return nil, err
	}
	return &Result{
		Routed:  group,
		Message: fmt.Sprintf("member %s added to %s; rebalance started", member, group),
	}, nil
}

// execAnalyze implements ANALYZE TABLE: rebuild the table's planner
// statistics on its accelerator (every shard for a sharded table).
func (s *Session) execAnalyze(stmt *sqlparse.AnalyzeStmt) (*Result, error) {
	meta, err := s.coord.cat.Table(stmt.Table)
	if err != nil {
		return nil, err
	}
	if err := s.coord.cat.CheckPrivilege(s.user, meta.Name, catalog.PrivSelect); err != nil {
		return nil, err
	}
	if meta.Kind == catalog.KindRegular {
		return nil, fmt.Errorf("federation: ANALYZE TABLE %s: the table has no accelerator copy (planner statistics live on the accelerators)", meta.Name)
	}
	a, err := s.coord.Accelerator(meta.Accelerator)
	if err != nil {
		return nil, err
	}
	n, err := a.Analyze(meta.Name)
	if err != nil {
		return nil, err
	}
	return &Result{
		RowsAffected: n,
		Routed:       meta.Accelerator,
		Message:      fmt.Sprintf("analyzed %s: %d rows", meta.Name, n),
	}, nil
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

func relationResult(rel *relalg.Relation, routed string) *Result {
	cols := make([]string, len(rel.Cols))
	for i, c := range rel.Cols {
		name := c.Name
		if name == "" {
			name = fmt.Sprintf("COL%d", i+1)
		}
		cols[i] = name
	}
	return &Result{Columns: cols, Rows: rel.Rows, Routed: routed}
}

func db2SchemaFromDefs(defs []sqlparse.ColumnDef) types.Schema {
	cols := make([]types.Column, len(defs))
	for i, d := range defs {
		cols[i] = types.Column{Name: d.Name, Kind: d.Kind, NotNull: d.NotNull}
	}
	return types.NewSchema(cols...)
}
