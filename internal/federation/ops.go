package federation

import (
	"fmt"
	"sync"
	"time"

	"idaax/internal/accel"
	"idaax/internal/obs"
	"idaax/internal/obs/eventlog"
	"idaax/internal/obs/health"
	"idaax/internal/shard"
)

// This file is the coordinator end of the operations plane: the per-component
// health checks, the watchdog's temporal degradation rules, the bridge from
// watchdog transitions into the event journal, and the fleet-wide resource
// gauges capacity planning scrapes.

// plannerStatsRowFloor is the table size above which missing ANALYZE
// statistics degrade the planner_stats component. Tiny tables plan fine on
// the incremental counters alone; large unanalyzed ones mis-estimate joins.
const plannerStatsRowFloor = 50_000

// stallIntervals is how many consecutive watchdog evaluations an active
// rebalance may go without migrating a row before it is declared stalled.
const stallIntervals = 3

// slowQuerySpikeRate is how many statements must cross the slow-query
// threshold within one watchdog interval to count as a spike.
const slowQuerySpikeRate = 5

// scanErrorStreak is how many consecutive intervals the fleet's query error
// count must grow before the shard_backends component degrades.
const scanErrorStreak = 3

// shardRouters snapshots the registered shard routers.
func (c *Coordinator) shardRouters() []*shard.Router {
	c.accelMu.RLock()
	defer c.accelMu.RUnlock()
	var out []*shard.Router
	for _, b := range c.accels {
		if r, ok := b.(*shard.Router); ok {
			out = append(out, r)
		}
	}
	return out
}

// memberAccels snapshots the paired plain accelerators — standalone ones and
// shard-group members alike. Routers are excluded so nothing counts twice.
func (c *Coordinator) memberAccels() []*accel.Accelerator {
	c.accelMu.RLock()
	defer c.accelMu.RUnlock()
	var out []*accel.Accelerator
	for _, b := range c.accels {
		if a, ok := b.(*accel.Accelerator); ok {
			out = append(out, a)
		}
	}
	return out
}

// FleetResources aggregates every paired accelerator's memory accounting into
// the fleet capacity view (/fleet endpoint, fleet_* gauges).
func (c *Coordinator) FleetResources() obs.FleetResources {
	accels := c.memberAccels()
	members := make([]obs.StoreResources, 0, len(accels))
	for _, a := range accels {
		members = append(members, a.Resources())
	}
	return obs.AggregateFleet(members)
}

// registerOps installs the health checks, builds the watchdog with its rules,
// bridges watchdog transitions into the event journal and registers the
// fleet-wide gauges. Called once from NewCoordinator; the watchdog is left
// stopped.
func (c *Coordinator) registerOps() {
	c.registerHealthChecks()
	c.Watchdog = health.NewWatchdog(c.Health, c.cfg.WatchdogInterval)
	c.Watchdog.OnTransition(func(tr health.Transition) {
		if tr.Probe != nil {
			sev := eventlog.Warn
			if tr.Probe.Status == health.Unhealthy {
				sev = eventlog.Error
			}
			c.Events.Emitf(eventlog.TypeHealthChanged, sev, "", "",
				fmt.Sprintf("%s is %s: %s (rule %s)", tr.Component, tr.Probe.Status, tr.Probe.Detail, tr.Rule))
		} else {
			c.Events.Emitf(eventlog.TypeHealthChanged, eventlog.Info, "", "",
				fmt.Sprintf("%s recovered (rule %s cleared)", tr.Component, tr.Rule))
		}
	})
	c.addWatchdogRules()
	c.registerFleetGauges()
}

// registerHealthChecks installs the instantaneous per-component checks. The
// watchdog's temporal rules overlay these with overrides when a condition
// persists across intervals.
func (c *Coordinator) registerHealthChecks() {
	c.Health.Register("shard_backends", func() health.Probe {
		routers := c.shardRouters()
		if len(routers) == 0 {
			return health.Ok(fmt.Sprintf("%d standalone accelerator(s)", len(c.memberAccels())))
		}
		members := 0
		for _, r := range routers {
			members += len(r.Members())
		}
		return health.Ok(fmt.Sprintf("%d group(s), %d member(s)", len(routers), members))
	})

	c.Health.Register("replication", func() health.Probe {
		pending, lag := c.Repl.LagReport()
		detail := fmt.Sprintf("%d pending change(s), apply lag %s", pending, lag.Round(time.Millisecond))
		if lag > c.cfg.CDCLagThreshold {
			return health.Degrade(detail)
		}
		return health.Ok(detail)
	})

	c.Health.Register("rebalancer", func() health.Probe {
		active, migrating := 0, 0
		for _, r := range c.shardRouters() {
			st := r.RebalanceStatus()
			if st.LastError != "" {
				return health.Degrade(fmt.Sprintf("group %s: last rebalance error: %s", r.Name(), st.LastError))
			}
			if st.Active {
				active++
				migrating += len(st.MigratingTables)
			}
		}
		if active > 0 {
			return health.Ok(fmt.Sprintf("%d rebalance(s) active, %d table(s) migrating", active, migrating))
		}
		return health.Ok("idle")
	})

	c.Health.Register("planner_stats", func() health.Probe {
		stale, first := 0, ""
		for _, a := range c.memberAccels() {
			for _, t := range a.TableNames() {
				snap, err := a.TableStatistics(t)
				if err != nil {
					continue
				}
				if !snap.Analyzed && snap.Rows >= plannerStatsRowFloor {
					stale++
					if first == "" {
						first = t
					}
				}
			}
		}
		if stale > 0 {
			return health.Degrade(fmt.Sprintf("%d large table copy(ies) never analyzed (e.g. %s); run ANALYZE TABLE", stale, first))
		}
		return health.Ok("statistics fresh")
	})
}

// addWatchdogRules installs the temporal rules. Each rule keeps its memory in
// closure state guarded by ruleMu: the background loop is the usual evaluator,
// but tests drive Tick directly and both may overlap with scrapes.
func (c *Coordinator) addWatchdogRules() {
	var ruleMu sync.Mutex

	// Rebalance no-progress: an active rebalance whose migrated-rows counter
	// does not advance for stallIntervals consecutive evaluations is stalled —
	// typically an uncommitted transaction pinning row fates, or a wedged
	// member. Stall flips the rebalancer component Unhealthy, which is what
	// takes /healthz to 503 (a stuck migration is operator-actionable in a way
	// a merely slow one is not).
	lastRows := make(map[string]int64)
	noProgress := make(map[string]int)
	announced := make(map[string]bool)
	c.Watchdog.AddRule(health.Rule{
		Name:      "rebalance-stall",
		Component: "rebalancer",
		Evaluate: func() *health.Probe {
			ruleMu.Lock()
			defer ruleMu.Unlock()
			var worst *health.Probe
			for _, r := range c.shardRouters() {
				name := r.Name()
				st := r.RebalanceStatus()
				if !st.Active {
					delete(lastRows, name)
					delete(noProgress, name)
					delete(announced, name)
					continue
				}
				if prev, seen := lastRows[name]; seen && prev == st.RowsMigrated {
					noProgress[name]++
				} else {
					noProgress[name] = 0
					delete(announced, name)
				}
				lastRows[name] = st.RowsMigrated
				if noProgress[name] >= stallIntervals {
					if !announced[name] {
						announced[name] = true
						c.Events.Emitf(eventlog.TypeRebalanceStalled, eventlog.Error, name, "",
							fmt.Sprintf("rebalance made no progress for %d intervals (stuck at %d rows, %d batches)",
								noProgress[name], st.RowsMigrated, st.Batches))
					}
					p := health.Fail(fmt.Sprintf("group %s: rebalance stalled at %d rows for %d intervals",
						name, st.RowsMigrated, noProgress[name]))
					worst = &p
				}
			}
			return worst
		},
	})

	// CDC lag crossing: the replication check already degrades on high lag;
	// this rule adds the crossing events (high once, recovered once) and keeps
	// the verdict imposed between ticks.
	lagHigh := false
	c.Watchdog.AddRule(health.Rule{
		Name:      "cdc-lag",
		Component: "replication",
		Evaluate: func() *health.Probe {
			pending, lag := c.Repl.LagReport()
			ruleMu.Lock()
			defer ruleMu.Unlock()
			if lag > c.cfg.CDCLagThreshold {
				if !lagHigh {
					lagHigh = true
					c.Events.Emitf(eventlog.TypeCDCLagHigh, eventlog.Warn, "", "",
						fmt.Sprintf("replication apply lag %s crossed threshold %s (%d pending change(s))",
							lag.Round(time.Millisecond), c.cfg.CDCLagThreshold, pending))
				}
				p := health.Degrade(fmt.Sprintf("apply lag %s above threshold %s (%d pending)",
					lag.Round(time.Millisecond), c.cfg.CDCLagThreshold, pending))
				return &p
			}
			if lagHigh {
				lagHigh = false
				c.Events.Emitf(eventlog.TypeCDCLagRecovered, eventlog.Info, "", "",
					fmt.Sprintf("replication apply lag back under %s", c.cfg.CDCLagThreshold))
			}
			return nil
		},
	})

	// Slow-query spike: more than slowQuerySpikeRate statements crossed the
	// slow threshold within one interval. Sequence numbers (not ring length)
	// drive the delta so a saturated slow-log ring still counts fresh entries.
	var lastSlowSeq int64
	spiking := false
	c.Watchdog.AddRule(health.Rule{
		Name:      "slow-query-spike",
		Component: "queries",
		Evaluate: func() *health.Probe {
			recs := c.History.SlowQueries(0)
			ruleMu.Lock()
			defer ruleMu.Unlock()
			fresh, maxSeq := 0, lastSlowSeq
			for _, r := range recs {
				if r.Seq > lastSlowSeq {
					fresh++
				}
				if r.Seq > maxSeq {
					maxSeq = r.Seq
				}
			}
			lastSlowSeq = maxSeq
			if fresh >= slowQuerySpikeRate {
				if !spiking {
					spiking = true
					c.Events.Emitf(eventlog.TypeSlowQuerySpike, eventlog.Warn, "", "",
						fmt.Sprintf("%d statements crossed the slow-query threshold within one interval", fresh))
				}
				p := health.Degrade(fmt.Sprintf("%d slow queries in the last interval", fresh))
				return &p
			}
			spiking = false
			return nil
		},
	})

	// Scan-error streak: the fleet's accelerator query-error count grew in
	// scanErrorStreak consecutive intervals — a persistent failure source
	// (bad table, wedged member), not a one-off.
	var lastErrs int64
	streak := 0
	c.Watchdog.AddRule(health.Rule{
		Name:      "scan-error-streak",
		Component: "shard_backends",
		Evaluate: func() *health.Probe {
			var cur int64
			for _, a := range c.memberAccels() {
				cur += a.Stats().QueryErrors
			}
			ruleMu.Lock()
			defer ruleMu.Unlock()
			if cur > lastErrs {
				streak++
			} else {
				streak = 0
			}
			lastErrs = cur
			if streak >= scanErrorStreak {
				p := health.Degrade(fmt.Sprintf("query errors grew for %d consecutive intervals (%d total)", streak, cur))
				return &p
			}
			return nil
		},
	})
}

// registerFleetGauges exports the fleet capacity view and the journal's own
// counters into the metrics registry.
func (c *Coordinator) registerFleetGauges() {
	fleet := func(f func(obs.FleetResources) int64) func() int64 {
		return func() int64 { return f(c.FleetResources()) }
	}
	gauge := func(name, help string, fn func() int64) {
		c.Obs.GaugeFunc(name, fn)
		c.Obs.Help(name, help)
	}
	gauge("fleet_members", "Paired accelerators (shard-group members and standalone).",
		fleet(func(fr obs.FleetResources) int64 { return int64(len(fr.Members)) }))
	gauge("fleet_bytes_total", "Approximate bytes of table data held across the fleet.",
		fleet(func(fr obs.FleetResources) int64 { return fr.TotalBytes }))
	gauge("fleet_rows_total", "Row versions held across the fleet.",
		fleet(func(fr obs.FleetResources) int64 { return fr.TotalRows }))
	gauge("fleet_member_bytes_max", "Largest single member footprint in bytes.",
		fleet(func(fr obs.FleetResources) int64 { return fr.MaxMemberBytes }))
	gauge("fleet_member_bytes_min", "Smallest single member footprint in bytes.",
		fleet(func(fr obs.FleetResources) int64 { return fr.MinMemberBytes }))
	gauge("fleet_capacity_skew_pct", "How far the largest member sits above the per-member mean, in percent.",
		fleet(func(fr obs.FleetResources) int64 { return int64(fr.SkewPct) }))

	gauge("events_total", "Events emitted into the journal since start.",
		func() int64 { return c.Events.Total() })
	gauge("events_warn_total", "WARN events emitted since start.",
		func() int64 { return c.Events.Count(eventlog.Warn) })
	gauge("events_error_total", "ERROR events emitted since start.",
		func() int64 { return c.Events.Count(eventlog.Error) })
	gauge("events_dropped_total", "Events dropped on saturated subscriber channels.",
		func() int64 { return c.Events.Dropped() })
	gauge("watchdog_ticks_total", "Health watchdog evaluations since start.",
		func() int64 { return c.Watchdog.Ticks() })
	gauge("health_status", "Fleet health verdict (0 healthy, 1 degraded, 2 unhealthy).",
		func() int64 { return int64(c.Health.Report().Status) })
}
