package federation

import (
	"fmt"
	"testing"
)

// TestShardGroupRegistration covers the fleet wiring edge cases: the implicit
// group, name collisions with members, and the no-clobber guarantee.
func TestShardGroupRegistration(t *testing.T) {
	c := NewCoordinator(Config{Accelerators: []AcceleratorSpec{
		{Name: "A", Slices: 1}, {Name: "B", Slices: 1},
	}})
	router, err := c.ShardGroup("SHARDS")
	if err != nil {
		t.Fatalf("implicit group missing: %v", err)
	}
	if got := len(router.Members()); got != 2 {
		t.Fatalf("group spans %d members, want 2", got)
	}
	if c.DefaultAccelerator() != "A" {
		t.Fatalf("default accelerator = %s, want first fleet member", c.DefaultAccelerator())
	}

	// AddAccelerator with the group's name must not clobber the router.
	if a := c.AddAccelerator("SHARDS", 1); a != nil {
		t.Fatal("AddAccelerator on a shard-group name must return nil")
	}
	if _, err := c.ShardGroup("SHARDS"); err != nil {
		t.Fatalf("shard group was clobbered: %v", err)
	}

	// Registering a second group under the same name fails cleanly.
	if _, err := c.AddShardGroup("SHARDS", "A", "B"); err == nil {
		t.Fatal("duplicate shard group must fail")
	}
	// Groups cannot nest and members must exist.
	if _, err := c.AddShardGroup("G2", "SHARDS"); err == nil {
		t.Fatal("nesting a group inside a group must fail")
	}
	if _, err := c.AddShardGroup("G3", "NOPE"); err == nil {
		t.Fatal("unknown member must fail")
	}

	// Duplicate and empty fleet entries are normalised away instead of
	// registering the same accelerator as two shards.
	c3 := NewCoordinator(Config{Accelerators: []AcceleratorSpec{
		{Name: "A", Slices: 1}, {Name: "a", Slices: 1}, {Name: "", Slices: 1}, {Name: "B", Slices: 1},
	}})
	r3, err := c3.ShardGroup("SHARDS")
	if err != nil {
		t.Fatalf("fleet with duplicates lost its group: %v", err)
	}
	names := map[string]bool{}
	for _, m := range r3.Members() {
		if names[m.Name()] {
			t.Fatalf("duplicate shard member %s", m.Name())
		}
		names[m.Name()] = true
	}
	if len(names) != 3 { // A, IDAA3 (positional default for ""), B
		t.Fatalf("normalised fleet has %d members: %v", len(names), names)
	}

	// A member that claims the group name keeps it; no group is registered
	// and construction does not panic.
	c2 := NewCoordinator(Config{Accelerators: []AcceleratorSpec{
		{Name: "SHARDS", Slices: 1}, {Name: "B", Slices: 1},
	}})
	if _, err := c2.ShardGroup("SHARDS"); err == nil {
		t.Fatal("SHARDS should resolve to the member accelerator, not a group")
	}
	if b, err := c2.Accelerator("SHARDS"); err != nil || b.Name() != "SHARDS" {
		t.Fatalf("member named SHARDS not reachable: %v", err)
	}
}

// TestMixedParticipantCommitAtomicity commits transactions that touch both a
// sharded table and an AOT on one fleet member, while a concurrent reader
// counts the sharded rows. Committing the shard group before the member (see
// orderGroupsFirst) keeps every commit's visibility all-or-nothing across
// shards; a partial count means a member's registry flipped outside the
// router's fence.
func TestMixedParticipantCommitAtomicity(t *testing.T) {
	c := NewCoordinator(Config{Accelerators: []AcceleratorSpec{
		{Name: "IDAA1", Slices: 1}, {Name: "IDAA2", Slices: 1},
	}})
	admin := c.Session("SYSADM")
	mustExec := func(sql string) {
		t.Helper()
		if _, err := admin.Exec(sql); err != nil {
			t.Fatal(err)
		}
	}
	mustExec("CREATE TABLE y (id BIGINT, v DOUBLE) IN ACCELERATOR SHARDS DISTRIBUTE BY HASH(id)")
	mustExec("CREATE TABLE x (id BIGINT) IN ACCELERATOR IDAA1")

	const batch = 20
	const rounds = 40
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		reader := c.Session("SYSADM")
		for {
			select {
			case <-stop:
				done <- nil
				return
			default:
			}
			res, err := reader.Query("SELECT COUNT(*) FROM y")
			if err != nil {
				done <- err
				return
			}
			if n := res.Rows[0][0].Int; n%batch != 0 {
				done <- fmt.Errorf("reader saw %d rows: commit partially visible across shards", n)
				return
			}
		}
	}()

	for round := 0; round < rounds; round++ {
		if err := admin.Begin(); err != nil {
			t.Fatal(err)
		}
		stmt := "INSERT INTO y VALUES "
		for i := 0; i < batch; i++ {
			if i > 0 {
				stmt += ", "
			}
			stmt += fmt.Sprintf("(%d, 1)", round*batch+i)
		}
		mustExec(stmt)
		mustExec(fmt.Sprintf("INSERT INTO x VALUES (%d)", round))
		if err := admin.Commit(); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
}
