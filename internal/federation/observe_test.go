package federation

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"idaax/internal/catalog"
	"idaax/internal/obs"
	"idaax/internal/relalg"
	"idaax/internal/sqlparse"
)

func parseSelect(t *testing.T, sql string) *sqlparse.SelectStmt {
	t.Helper()
	st, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	sel, ok := st.(*sqlparse.SelectStmt)
	if !ok {
		t.Fatalf("%s parsed as %T", sql, st)
	}
	return sel
}

func relFingerprint(rel *relalg.Relation) string {
	var sb strings.Builder
	for _, c := range rel.Cols {
		sb.WriteString(c.Name + ",")
	}
	sb.WriteString("\n")
	for _, row := range rel.Rows {
		for _, v := range row {
			sb.WriteString(v.String() + "|")
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

// TestTracedExecutionDifferential proves tracing is observation only: the
// same statement executed with a live span tree and with tracing disabled
// (nil span) returns byte-identical relations, on a single accelerator and
// through the shard router's scatter-gather path alike.
func TestTracedExecutionDifferential(t *testing.T) {
	c := NewCoordinator(Config{Accelerators: []AcceleratorSpec{
		{Name: "A", Slices: 2}, {Name: "B", Slices: 2},
	}})
	s := c.Session(catalog.AdminUser)
	mustExec(t, s, "CREATE TABLE single (id BIGINT, grp BIGINT, v DOUBLE) IN ACCELERATOR A")
	mustExec(t, s, "CREATE TABLE sharded (id BIGINT, grp BIGINT, v DOUBLE) IN ACCELERATOR SHARDS DISTRIBUTE BY HASH(id)")
	for _, table := range []string{"single", "sharded"} {
		var sb strings.Builder
		fmt.Fprintf(&sb, "INSERT INTO %s VALUES ", table)
		for i := 0; i < 300; i++ {
			if i > 0 {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, %g)", i, i%7, float64(i)*0.25)
		}
		mustExec(t, s, sb.String())
	}

	queries := []string{
		"SELECT * FROM %s ORDER BY id",
		"SELECT grp, COUNT(*), SUM(v) FROM %s WHERE v > 10 GROUP BY grp ORDER BY grp",
		"SELECT COUNT(*) FROM %s WHERE id = 42",
	}
	for _, table := range []string{"single", "sharded"} {
		backendName := "A"
		if table == "sharded" {
			backendName = "SHARDS"
		}
		be, err := c.Accelerator(backendName)
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range queries {
			sql := fmt.Sprintf(q, table)
			sel := parseSelect(t, sql)
			untraced, err := be.QueryTraced(0, sel, nil)
			if err != nil {
				t.Fatalf("untraced %s: %v", sql, err)
			}
			sp := obs.NewSpan("test")
			traced, err := be.QueryTraced(0, sel, sp)
			if err != nil {
				t.Fatalf("traced %s: %v", sql, err)
			}
			sp.Finish()
			if got, want := relFingerprint(traced), relFingerprint(untraced); got != want {
				t.Fatalf("%s: traced result differs:\ntraced:\n%s\nuntraced:\n%s", sql, got, want)
			}
			// The span actually observed the execution: at least one scan span
			// with a row count.
			scans := 0
			sp.Walk(func(s *obs.Span, depth int) {
				if s.Name == "scan" {
					scans++
				}
			})
			if scans == 0 {
				t.Fatalf("%s: trace recorded no scan spans:\n%s", sql, sp.Format())
			}
		}
	}
}

// TestQueryHistoryNestedStatements proves one top-level statement yields one
// history record even when a procedure body executes further SQL internally,
// and that the record carries the statement's class and routing.
func TestQueryHistoryNestedStatements(t *testing.T) {
	c := newTestCoordinator(t)
	c.History.SetSlowThreshold(time.Nanosecond)
	s := c.Session(catalog.AdminUser)
	mustExec(t, s, "CREATE TABLE t (id BIGINT, v DOUBLE) IN ACCELERATOR IDAA1")
	mustExec(t, s, "INSERT INTO t VALUES (1, 1.5), (2, 2.5)")
	before := len(c.History.Recent(0))
	mustExec(t, s, "CALL SYSPROC.ACCEL_TABLE_INFO('t')")
	recs := c.History.Recent(0)
	if len(recs) != before+1 {
		t.Fatalf("CALL produced %d history records, want 1", len(recs)-before)
	}
	if recs[0].Class != "call" {
		t.Fatalf("record class = %q, want call", recs[0].Class)
	}
	if !recs[0].Slow() {
		t.Fatal("1ns threshold should mark the CALL slow and keep its trace")
	}
	if !strings.Contains(recs[0].Trace, "statement") {
		t.Fatalf("trace missing root span:\n%s", recs[0].Trace)
	}
}
