package federation

import (
	"fmt"
	"runtime"
	"sort"
	"time"

	"idaax/internal/accel"
	"idaax/internal/colstore"
	"idaax/internal/db2"
	"idaax/internal/durable"
	"idaax/internal/obs/eventlog"
	"idaax/internal/replication"
	"idaax/internal/rowstore"
	"idaax/internal/shard"
	"idaax/internal/txn"
	"idaax/internal/types"
	"idaax/internal/vfs"
	"idaax/internal/wal"
)

// This file wires the coordinator to the durable store: one WAL and one
// checkpoint stream for the whole system — the DB2 row engine, every
// accelerator member, the shard routers and the replicator all journal
// through narrow interfaces into the same log, so cross-system facts
// (a rebalance batch spanning members, a DB2 commit and its CDC capture)
// are ordered by one sequence and recovered from one manifest.
//
// Recovery sequence (OpenCoordinator):
//
//  1. Load the checkpoint: catalog, DB2 heap tables, per-member columnar
//     tables, transaction registries, CDC backlog, replication cursors and
//     the id allocators.
//  2. Replay the WAL in log order; every apply is idempotent against the
//     checkpoint image (per-table op sequences, registry/changelog sequence
//     cursors, last-writer-wins catalog snapshots).
//  3. Resolve in-doubt accelerator transactions against the DB2-side commit
//     evidence (replayed commit records plus the manifest's recent-commit
//     ring): roll forward if DB2 committed, abort and sweep otherwise.
//  4. Prune CDC records captured for transactions that never committed.
//  5. Attach the journals and let the replicator catch every accelerated
//     table up from the change stream (tables with a durable replication
//     cursor take the cheap incremental path; the rest are re-loaded).
//
// Shard-group topology is configuration, not durable state: a restarted
// system must be opened with the same fleet layout (the same members and
// groups); member-local data then recovers exactly, and rows a crashed
// rebalance left behind are picked up by the next rebalance pass.

// RecoveryStats describes what recovery did, for observability and tests.
type RecoveryStats struct {
	// Recovered is true when a checkpoint or WAL records existed.
	Recovered bool
	// WALRecords is the number of WAL records replayed.
	WALRecords int64
	// ResolvedCommits / ResolvedAborts count in-doubt accelerator
	// transactions rolled forward / rolled back.
	ResolvedCommits int
	ResolvedAborts  int
	// PrunedChanges counts CDC records dropped because their transaction
	// never committed.
	PrunedChanges int
	// CaughtUp / FullLoaded count replicated tables recovered via the
	// incremental CDC stream vs. re-loaded from DB2.
	CaughtUp   int
	FullLoaded int
	// Micros is the wall-clock duration of recovery (load + replay + resolve).
	Micros int64
}

// recentCommitCap bounds the ring of recently committed DB2 transaction ids
// carried in each manifest. In-doubt resolution consults it for commits whose
// WAL records were pruned by a checkpoint.
const recentCommitCap = 1024

// OpenCoordinator builds a coordinator and opens its durable store: an
// existing store is recovered, a missing one is initialised. It is the
// durable twin of NewCoordinator (which stays purely in-memory).
func OpenCoordinator(cfg Config) (*Coordinator, error) {
	c := NewCoordinator(cfg)
	if err := c.openDurability(); err != nil {
		c.Watchdog.Stop()
		return nil, err
	}
	return c, nil
}

// Durable reports whether the coordinator runs on a durable store.
func (c *Coordinator) Durable() bool { return c.store != nil }

// RecoveryInfo returns what recovery did when the store was opened.
func (c *Coordinator) RecoveryInfo() RecoveryStats { return c.recovery }

// Store exposes the durable store (nil when in-memory); the ops plane and
// benchmarks read WAL/checkpoint counters from it.
func (c *Coordinator) Store() *durable.Store { return c.store }

// commitBarrier makes everything journaled so far durable per the fsync
// policy. The commit handshake calls it after accelerator registries commit,
// so transactions that touched no DB2 row table (accelerator-only tables,
// whose commit records bypass the engine's own barrier) get the same
// durability guarantee before success is reported to the client.
func (c *Coordinator) commitBarrier() error {
	if c.store == nil {
		return nil
	}
	return c.store.CommitBarrier()
}

func (c *Coordinator) durabilityConfigured() bool {
	return c.cfg.DataDir != "" || c.cfg.FS != nil
}

// openDurability opens (and recovers) the durable store per the config. A
// coordinator without DataDir/FS stays in-memory and this is a no-op.
func (c *Coordinator) openDurability() error {
	if !c.durabilityConfigured() {
		return nil
	}
	start := time.Now()
	fs := c.cfg.FS
	if fs == nil {
		fs = vfs.OS(c.cfg.DataDir)
	}
	policy, err := wal.ParsePolicy(c.cfg.FsyncPolicy)
	if err != nil {
		return err
	}
	interval := c.cfg.GroupCommitInterval
	if interval <= 0 {
		interval = 2 * time.Millisecond
	}
	ckptBytes := c.cfg.CheckpointWALBytes
	if ckptBytes == 0 {
		ckptBytes = 64 << 20
	} else if ckptBytes < 0 {
		ckptBytes = 0 // explicit: auto-checkpoint off
	}
	par := c.cfg.RecoveryParallelism
	if par <= 0 {
		par = runtime.NumCPU()
	}

	store, err := durable.Open(fs, ".", durable.Options{
		Policy:             policy,
		GroupInterval:      interval,
		CheckpointWALBytes: ckptBytes,
	})
	if err != nil {
		return err
	}
	st, err := c.recover(store, par)
	if err != nil {
		store.Close()
		return fmt.Errorf("federation: recovery failed: %w", err)
	}

	// The store is live: attach every journal. From here on, all mutations
	// are logged; nothing during recovery was.
	c.store = store
	c.restoreRecentCommits(st.recentCommits())
	c.DB2.SetJournal(db2Journal{c})
	c.Repl.SetJournal(replJournal{c})
	c.accelMu.RLock()
	for name, b := range c.accels {
		switch v := b.(type) {
		case *accel.Accelerator:
			v.SetJournal(&memberJournal{c: c, scope: name})
		case *shard.Router:
			v.SetJournal(multiJournal{c})
		}
	}
	c.accelMu.RUnlock()

	// CDC catch-up: journaled, so a rejoining member's incremental applies
	// are themselves durable.
	caught, loaded, err := c.Repl.RecoverAll()
	c.recovery.CaughtUp, c.recovery.FullLoaded = caught, loaded
	if err != nil {
		return fmt.Errorf("federation: replication catch-up failed: %w", err)
	}

	store.SetOnFull(func() {
		if err := c.Checkpoint(); err != nil {
			c.Events.Emitf(eventlog.TypeCheckpoint, eventlog.Error, "", "",
				fmt.Sprintf("auto checkpoint failed: %v", err))
		}
	})
	c.registerDurabilityGauges()
	c.recovery.Micros = time.Since(start).Microseconds()
	if c.recovery.Recovered {
		c.Events.Emitf(eventlog.TypeRecovered, eventlog.Info, "", "",
			fmt.Sprintf("recovered in %dµs: %d WAL records, %d/%d in-doubt commits/aborts, %d CDC records pruned, %d tables caught up, %d re-loaded",
				c.recovery.Micros, c.recovery.WALRecords,
				c.recovery.ResolvedCommits, c.recovery.ResolvedAborts,
				c.recovery.PrunedChanges, caught, loaded))
	}
	return nil
}

func (c *Coordinator) registerDurabilityGauges() {
	s := c.store
	c.Obs.GaugeFunc("wal_records", func() int64 { return s.WALStats().Records })
	c.Obs.GaugeFunc("wal_bytes", func() int64 { return s.WALStats().Bytes })
	c.Obs.GaugeFunc("wal_fsyncs", func() int64 { return s.WALStats().Fsyncs })
	c.Obs.GaugeFunc("wal_rotations", func() int64 { return s.WALStats().Rotations })
	c.Obs.GaugeFunc("checkpoints_total", func() int64 { return s.Checkpoints() })
	c.Obs.GaugeFunc("checkpoint_last_micros", func() int64 { return s.LastCheckpointMicros() })
	c.Obs.GaugeFunc("recovery_wal_records", func() int64 { return c.recovery.WALRecords })
	c.Obs.GaugeFunc("recovery_micros", func() int64 { return c.recovery.Micros })
}

// ---------------------------------------------------------------------------
// Recovery
// ---------------------------------------------------------------------------

// recoverState accumulates cross-record facts while the WAL replays.
type recoverState struct {
	// committed holds every DB2 transaction with durable commit evidence:
	// the manifest's recent-commit ring plus every replayed OpDB2Commit.
	committed map[int64]bool
	// maxTxn tracks the highest DB2 (positive) transaction id observed, so
	// the id allocator restarts beyond every id that may appear in recovered
	// state.
	maxTxn int64
	// internal tracks, per member scope, the highest internal-transaction
	// counter value observed (internal ids are negative; the counter is the
	// magnitude).
	internal map[string]int64
	// ring preserves the manifest's recent-commit ring in order so the next
	// checkpoint keeps carrying forward commits this process never saw.
	ring []int64
}

func newRecoverState() *recoverState {
	return &recoverState{committed: make(map[int64]bool), internal: make(map[string]int64)}
}

func (st *recoverState) noteTxn(id int64, scope string) {
	if id > 0 {
		if id > st.maxTxn {
			st.maxTxn = id
		}
	} else if id < 0 {
		if n := -id; n > st.internal[scope] {
			st.internal[scope] = n
		}
	}
}

func (st *recoverState) noteCommitted(id int64) {
	if !st.committed[id] {
		st.committed[id] = true
		st.ring = append(st.ring, id)
		if len(st.ring) > recentCommitCap {
			st.ring = st.ring[len(st.ring)-recentCommitCap:]
		}
	}
}

func (st *recoverState) recentCommits() []int64 { return st.ring }

// memberForScope resolves a WAL scope to its accelerator, pairing a member
// recovery discovers but the config did not list (it recovers as a standalone
// accelerator; group membership is configuration).
func (c *Coordinator) memberForScope(scope string) (*accel.Accelerator, error) {
	c.accelMu.RLock()
	b := c.accels[scope]
	c.accelMu.RUnlock()
	if b == nil {
		if a := c.AddAccelerator(scope, 0); a != nil {
			return a, nil
		}
		return nil, fmt.Errorf("cannot pair recovered member %s", scope)
	}
	a, ok := b.(*accel.Accelerator)
	if !ok {
		return nil, fmt.Errorf("WAL scope %s names a shard group", scope)
	}
	return a, nil
}

func (c *Coordinator) recover(store *durable.Store, parallelism int) (*recoverState, error) {
	st := newRecoverState()

	ls, err := store.Load(parallelism)
	if err != nil {
		return nil, err
	}
	if ls != nil {
		if err := c.restoreCheckpoint(ls, st); err != nil {
			return nil, err
		}
		c.recovery.Recovered = true
	}

	if err := store.Replay(func(rec *durable.Record) error {
		c.recovery.WALRecords++
		return c.applyRecord(rec, st)
	}); err != nil {
		return nil, err
	}
	if c.recovery.WALRecords > 0 {
		c.recovery.Recovered = true
	}

	// The routers learn their sharded tables from the final catalog: member
	// shards recovered their partitions themselves.
	c.adoptShardedTables()

	// In-doubt resolution, deterministically ordered; the verdicts are
	// journaled so the next recovery replays them instead of re-deciding.
	resolutions := c.resolveInDoubt(st)
	for _, rec := range resolutions {
		store.Log(rec)
	}
	if len(resolutions) > 0 {
		if err := store.Barrier(); err != nil {
			return nil, err
		}
	}

	// CDC records of transactions without commit evidence are pruned.
	// Records restored from the manifest carry no transaction tag (the
	// checkpoint gate guarantees they belong to settled transactions) and
	// are always kept.
	c.recovery.PrunedChanges = c.DB2.Changes.PruneTxns(func(id int64) bool { return st.committed[id] })

	// Id allocators restart beyond everything observed.
	if st.maxTxn > 0 {
		c.DB2.Txns.EnsureNextAtLeast(txn.ID(st.maxTxn + 1))
	}
	for scope, n := range st.internal {
		if a, err := c.memberForScope(scope); err == nil {
			a.RestoreInternalTxn(n)
		}
	}
	return st, nil
}

// restoreCheckpoint installs the loaded checkpoint image into the engines.
func (c *Coordinator) restoreCheckpoint(ls *durable.LoadedState, st *recoverState) error {
	m := ls.Manifest
	if len(m.Catalog) > 0 {
		if err := c.cat.Restore(m.Catalog); err != nil {
			return err
		}
	}
	c.DB2.SyncStorageWithCatalog()
	for name, snap := range ls.RowTables {
		c.DB2.RestoreStorage(name, snap)
	}
	for scope, snaps := range ls.Scopes {
		a, err := c.memberForScope(scope)
		if err != nil {
			return err
		}
		for _, snap := range snaps {
			a.AdoptTable(colstore.RestoreTable(snap))
		}
	}
	for scope, rs := range m.Registries {
		a, err := c.memberForScope(scope)
		if err != nil {
			return err
		}
		a.Registry.Restore(rs.Committed, rs.NextSeq)
		for id := range rs.Committed {
			st.noteTxn(id, scope)
		}
	}
	if len(m.Changes) > 0 || m.ChangeNextSeq > 1 {
		byTable := make(map[string][]db2.ChangeRecord)
		for _, cs := range m.Changes {
			byTable[cs.Table] = append(byTable[cs.Table], db2.ChangeRecord{
				Seq:   cs.Seq,
				Table: cs.Table,
				Op:    db2.ChangeOp(cs.Op),
				RowID: rowstore.RowID(cs.RowID),
				Row:   cs.Row,
				At:    time.UnixMicro(cs.At),
			})
		}
		c.DB2.Changes.Restore(byTable, m.ChangeNextSeq)
	}
	for table, seq := range m.ReplStates {
		c.Repl.ApplyReplState(table, seq)
	}
	if m.NextTxn > 1 {
		st.noteTxn(m.NextTxn-1, "")
	}
	for scope, n := range m.NextInternal {
		if n > st.internal[scope] {
			st.internal[scope] = n
		}
	}
	for _, id := range m.RecentCommits {
		st.noteCommitted(id)
		st.noteTxn(id, "")
	}
	return nil
}

// applyRecord replays one WAL record. Every branch is idempotent against the
// checkpoint image and against a previous partial replay.
func (c *Coordinator) applyRecord(rec *durable.Record, st *recoverState) error {
	switch rec.Op {
	case durable.OpCatalog:
		if err := c.cat.Restore(rec.Blob); err != nil {
			return err
		}
		c.DB2.SyncStorageWithCatalog()

	case durable.OpAccCreate:
		a, err := c.memberForScope(rec.Scope)
		if err != nil {
			return err
		}
		if !a.HasTable(rec.Table) {
			if err := a.CreateTable(rec.Table, types.Schema{Columns: rec.Cols}, rec.DistKey); err != nil {
				return err
			}
		}

	case durable.OpAccDrop:
		a, err := c.memberForScope(rec.Scope)
		if err != nil {
			return err
		}
		a.DropTableQuiet(rec.Table)

	case durable.OpAccInsert, durable.OpAccMarks, durable.OpAccUnmarks:
		a, err := c.memberForScope(rec.Scope)
		if err != nil {
			return err
		}
		st.noteTxn(rec.Txn, rec.Scope)
		t, err := a.Table(rec.Table)
		if err != nil {
			return nil // dropped later in the log; the final catalog wins
		}
		kind := colstore.TableOpInsert
		switch rec.Op {
		case durable.OpAccMarks:
			kind = colstore.TableOpMarks
		case durable.OpAccUnmarks:
			kind = colstore.TableOpUnmarks
		}
		t.ApplyOp(&colstore.TableOp{
			Table: rec.Table, Seq: rec.Seq, Kind: kind,
			Base: int(rec.Base), Rows: rec.Rows, SrcIDs: rec.SrcIDs,
			Idxs: rec.Idxs, Txn: rec.Txn,
		})

	case durable.OpAccCommit:
		a, err := c.memberForScope(rec.Scope)
		if err != nil {
			return err
		}
		st.noteTxn(rec.Txn, rec.Scope)
		a.Registry.ApplyCommit(rec.Txn, rec.Seq)

	case durable.OpAccAbort:
		a, err := c.memberForScope(rec.Scope)
		if err != nil {
			return err
		}
		st.noteTxn(rec.Txn, rec.Scope)
		a.Registry.ApplyAbort(rec.Txn)
		a.SweepAbortedTxn(rec.Txn)

	case durable.OpMultiCommit:
		for _, e := range rec.Commits {
			a, err := c.memberForScope(e.Scope)
			if err != nil {
				return err
			}
			st.noteTxn(e.Txn, e.Scope)
			a.Registry.ApplyCommit(e.Txn, e.Seq)
		}

	case durable.OpDB2Commit:
		st.noteTxn(rec.Txn, "")
		st.noteCommitted(rec.Txn)
		c.DB2.ApplyRedo(rec.RowOps)

	case durable.OpChange:
		st.noteTxn(rec.Txn, "")
		var row types.Row
		if len(rec.Rows) > 0 {
			row = rec.Rows[0]
		}
		c.DB2.Changes.ApplyChange(db2.ChangeRecord{
			Seq:   rec.Seq,
			Table: rec.Table,
			Op:    db2.ChangeOp(rec.Change),
			RowID: rowstore.RowID(rec.Base),
			Row:   row,
			At:    time.UnixMicro(rec.At),
			Txn:   rec.Txn,
		})

	case durable.OpChangeDiscard:
		// Journal is not attached during replay, so this does not re-journal.
		c.DB2.Changes.Discard(rec.Table, rec.Seq)

	case durable.OpReplState:
		c.Repl.ApplyReplState(rec.Table, rec.Seq)

	default:
		return fmt.Errorf("%w: unexpected op %d in replay", durable.ErrCorrupt, rec.Op)
	}
	return nil
}

// adoptShardedTables registers every catalog table that lives on a shard
// group with its router (member shards recovered the partitions themselves).
func (c *Coordinator) adoptShardedTables() {
	for _, meta := range c.cat.Tables() {
		if meta.Accelerator == "" {
			continue
		}
		b, err := c.Accelerator(meta.Accelerator)
		if err != nil {
			continue
		}
		r, ok := b.(*shard.Router)
		if !ok || r.HasTable(meta.Name) {
			continue
		}
		_ = r.AdoptTable(meta.Name, meta.Schema, meta.DistKey)
	}
}

// resolveInDoubt settles every accelerator transaction the replayed registries
// left neither committed nor aborted: roll forward if the DB2 side has commit
// evidence, abort and physically sweep otherwise. Returns the records to
// journal so a repeated crash replays the verdicts instead of re-deriving.
func (c *Coordinator) resolveInDoubt(st *recoverState) []*durable.Record {
	c.accelMu.RLock()
	members := make([]*accel.Accelerator, 0, len(c.accels))
	for _, b := range c.accels {
		if a, ok := b.(*accel.Accelerator); ok {
			members = append(members, a)
		}
	}
	c.accelMu.RUnlock()
	sort.Slice(members, func(i, j int) bool { return members[i].Name() < members[j].Name() })

	var out []*durable.Record
	for _, a := range members {
		ids := a.Registry.UnsettledTxns()
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for _, id := range ids {
			if id > 0 && st.committed[id] {
				seq := a.Registry.CommitQuiet(id)
				out = append(out, &durable.Record{Op: durable.OpAccCommit, Scope: a.Name(), Txn: id, Seq: seq})
				c.recovery.ResolvedCommits++
			} else {
				a.Registry.ApplyAbort(id)
				a.SweepAbortedTxn(id)
				out = append(out, &durable.Record{Op: durable.OpAccAbort, Scope: a.Name(), Txn: id})
				c.recovery.ResolvedAborts++
			}
		}
	}
	return out
}

// ---------------------------------------------------------------------------
// Checkpoint
// ---------------------------------------------------------------------------

// Checkpoint rotates the WAL and writes a full checkpoint: segment files per
// columnar table and DB2 heap table, and a manifest carrying the catalog, CDC
// backlog, registries, replication cursors and id allocators. Safe to call
// concurrently with traffic; DB2-side capture runs under the checkpoint gate
// (no transaction is mid-mutation), accelerator tables cut by op sequence.
func (c *Coordinator) Checkpoint() error {
	if c.store == nil {
		return nil
	}
	err := c.store.Checkpoint(func() (*durable.CheckpointData, error) {
		data := &durable.CheckpointData{
			Scopes:       make(map[string][]*colstore.TableSnapshot),
			Registries:   make(map[string]durable.RegistrySnap),
			NextInternal: make(map[string]int64),
		}
		if err := c.DB2.CheckpointGate(func() error {
			data.RowTables = c.DB2.TablesSnapshot()
			data.Catalog = c.cat.Snapshot()
			byTable, nextSeq := c.DB2.Changes.SnapshotAll()
			data.ChangeNextSeq = nextSeq
			for table, recs := range byTable {
				for _, rec := range recs {
					data.Changes = append(data.Changes, durable.ChangeSnap{
						Seq:   rec.Seq,
						Table: table,
						Op:    int(rec.Op),
						RowID: int64(rec.RowID),
						Row:   rec.Row,
						At:    rec.At.UnixMicro(),
					})
				}
			}
			sort.Slice(data.Changes, func(i, j int) bool { return data.Changes[i].Seq < data.Changes[j].Seq })
			data.ReplStates = c.Repl.StatesSnapshot()
			data.NextTxn = int64(c.DB2.Txns.NextID())
			data.RecentCommits = c.recentCommitsSnapshot()
			return nil
		}); err != nil {
			return nil, err
		}

		c.accelMu.RLock()
		members := make([]*accel.Accelerator, 0, len(c.accels))
		for _, b := range c.accels {
			if a, ok := b.(*accel.Accelerator); ok {
				members = append(members, a)
			}
		}
		c.accelMu.RUnlock()
		for _, a := range members {
			var snaps []*colstore.TableSnapshot
			for _, name := range a.TableNames() {
				t, err := a.Table(name)
				if err != nil {
					continue
				}
				snaps = append(snaps, t.Snapshot())
			}
			data.Scopes[a.Name()] = snaps
			committed, nextSeq := a.Registry.Committed()
			data.Registries[a.Name()] = durable.RegistrySnap{Committed: committed, NextSeq: nextSeq}
			data.NextInternal[a.Name()] = a.InternalTxnCount()
		}
		return data, nil
	})
	if err == nil {
		c.Events.Emitf(eventlog.TypeCheckpoint, eventlog.Info, "", "",
			fmt.Sprintf("checkpoint %d written in %dµs", c.store.Checkpoints(), c.store.LastCheckpointMicros()))
	}
	return err
}

// closeDurability flushes a final checkpoint and closes the WAL. Called from
// Coordinator.Close.
func (c *Coordinator) closeDurability() error {
	if c.store == nil {
		return nil
	}
	var firstErr error
	if err := c.Checkpoint(); err != nil {
		firstErr = err
	}
	if err := c.store.Barrier(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := c.store.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// ---------------------------------------------------------------------------
// Recent-commit ring
// ---------------------------------------------------------------------------

func (c *Coordinator) noteRecentCommit(id int64) {
	c.recentMu.Lock()
	c.recentCommits = append(c.recentCommits, id)
	if len(c.recentCommits) > recentCommitCap {
		c.recentCommits = c.recentCommits[len(c.recentCommits)-recentCommitCap:]
	}
	c.recentMu.Unlock()
}

func (c *Coordinator) restoreRecentCommits(ids []int64) {
	c.recentMu.Lock()
	c.recentCommits = append([]int64(nil), ids...)
	c.recentMu.Unlock()
}

func (c *Coordinator) recentCommitsSnapshot() []int64 {
	c.recentMu.Lock()
	defer c.recentMu.Unlock()
	return append([]int64(nil), c.recentCommits...)
}

// ---------------------------------------------------------------------------
// Journal implementations
// ---------------------------------------------------------------------------

// memberJournal routes one accelerator member's mutations into the store,
// tagged with the member's scope.
type memberJournal struct {
	c     *Coordinator
	scope string
}

func (j *memberJournal) LogTableOp(op *colstore.TableOp) {
	kind := durable.OpAccInsert
	switch op.Kind {
	case colstore.TableOpMarks:
		kind = durable.OpAccMarks
	case colstore.TableOpUnmarks:
		kind = durable.OpAccUnmarks
	}
	j.c.store.Log(&durable.Record{
		Op: kind, Scope: j.scope, Table: op.Table,
		Txn: op.Txn, Seq: op.Seq, Base: int64(op.Base),
		Rows: op.Rows, SrcIDs: op.SrcIDs, Idxs: op.Idxs,
	})
}

func (j *memberJournal) LogCommit(txnID, seq int64) {
	j.c.store.Log(&durable.Record{Op: durable.OpAccCommit, Scope: j.scope, Txn: txnID, Seq: seq})
}

func (j *memberJournal) LogAbort(txnID int64) {
	j.c.store.Log(&durable.Record{Op: durable.OpAccAbort, Scope: j.scope, Txn: txnID})
}

func (j *memberJournal) LogCreateTable(name string, schema types.Schema, distKey string) {
	// DDL has no commit record to ride on, so it is made durable on its own;
	// a write/sync failure poisons the log and surfaces on the next barrier.
	_ = j.c.store.LogDurable(&durable.Record{
		Op: durable.OpAccCreate, Scope: j.scope, Table: name,
		Cols: schema.Columns, DistKey: distKey,
	})
}

func (j *memberJournal) LogDropTable(name string) {
	_ = j.c.store.LogDurable(&durable.Record{Op: durable.OpAccDrop, Scope: j.scope, Table: name})
}

var _ accel.MemberJournal = (*memberJournal)(nil)

// db2Journal routes the DB2 engine's redo, CDC and catalog records into the
// store (scope "" addresses the DB2 side).
type db2Journal struct{ c *Coordinator }

func (j db2Journal) LogCommit(txnID int64, ops []durable.RowOp) {
	j.c.store.Log(&durable.Record{Op: durable.OpDB2Commit, Txn: txnID, RowOps: ops})
	j.c.noteRecentCommit(txnID)
}

func (j db2Journal) LogCatalog(blob []byte) {
	// Catalog snapshots are journaled on DDL, which commits no redo of its
	// own — fsync here so a crash right after CREATE/DROP keeps the change.
	_ = j.c.store.LogDurable(&durable.Record{Op: durable.OpCatalog, Blob: blob})
}

func (j db2Journal) LogChange(rec db2.ChangeRecord) {
	var rows []types.Row
	if rec.Row != nil {
		rows = []types.Row{rec.Row}
	}
	j.c.store.Log(&durable.Record{
		Op: durable.OpChange, Table: rec.Table,
		Txn: rec.Txn, Seq: rec.Seq, Base: int64(rec.RowID),
		Rows: rows, Change: int64(rec.Op), At: rec.At.UnixMicro(),
	})
}

func (j db2Journal) LogChangeDiscard(table string, upToSeq int64) {
	j.c.store.Log(&durable.Record{Op: durable.OpChangeDiscard, Table: table, Seq: upToSeq})
}

func (j db2Journal) Barrier() error { return j.c.store.CommitBarrier() }

var _ db2.Journal = db2Journal{}

// replJournal records replication-progress cursors.
type replJournal struct{ c *Coordinator }

func (j replJournal) LogReplState(table string, appliedSeq int64) {
	j.c.store.Log(&durable.Record{Op: durable.OpReplState, Table: table, Seq: appliedSeq})
}

var _ replication.Journal = replJournal{}

// multiJournal records the rebalancer's atomic cross-member batch commits,
// durably — the batch's source-side deletes must never outlive a lost
// destination commit.
type multiJournal struct{ c *Coordinator }

func (j multiJournal) LogMultiCommit(entries []durable.CommitEntry) {
	// A write/sync failure poisons the log and surfaces on the next barrier.
	_ = j.c.store.LogDurable(&durable.Record{Op: durable.OpMultiCommit, Commits: entries})
}

var _ shard.MultiCommitJournal = multiJournal{}
