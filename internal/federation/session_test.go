package federation

import (
	"strings"
	"testing"

	"idaax/internal/catalog"
	"idaax/internal/types"
)

func newTestCoordinator(t *testing.T) *Coordinator {
	t.Helper()
	return NewCoordinator(Config{AcceleratorName: "IDAA1", Slices: 2})
}

func mustExec(t *testing.T, s *Session, sql string) *Result {
	t.Helper()
	res, err := s.Exec(sql)
	if err != nil {
		t.Fatalf("Exec(%q): %v", sql, err)
	}
	return res
}

func TestRegularTableLifecycle(t *testing.T) {
	c := newTestCoordinator(t)
	s := c.Session(catalog.AdminUser)

	mustExec(t, s, "CREATE TABLE orders (id BIGINT NOT NULL, amount DOUBLE, region VARCHAR(16))")
	mustExec(t, s, "INSERT INTO orders VALUES (1, 10.5, 'EU'), (2, 20.0, 'US'), (3, 5.25, 'EU')")

	res := mustExec(t, s, "SELECT region, SUM(amount) AS total FROM orders GROUP BY region ORDER BY region")
	if res.Routed != "DB2" {
		t.Fatalf("expected query to run in DB2, ran on %s", res.Routed)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("expected 2 groups, got %d", len(res.Rows))
	}
	if got := res.Rows[0][0].AsString(); got != "EU" {
		t.Fatalf("expected first group EU, got %s", got)
	}
	if got, _ := res.Rows[0][1].AsFloat(); got != 15.75 {
		t.Fatalf("expected EU total 15.75, got %v", got)
	}

	res = mustExec(t, s, "UPDATE orders SET amount = amount * 2 WHERE region = 'US'")
	if res.RowsAffected != 1 {
		t.Fatalf("expected 1 row updated, got %d", res.RowsAffected)
	}
	res = mustExec(t, s, "DELETE FROM orders WHERE id = 1")
	if res.RowsAffected != 1 {
		t.Fatalf("expected 1 row deleted, got %d", res.RowsAffected)
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM orders")
	if n, _ := res.Rows[0][0].AsInt(); n != 2 {
		t.Fatalf("expected 2 rows remaining, got %d", n)
	}
}

func TestAcceleratedTableOffload(t *testing.T) {
	c := newTestCoordinator(t)
	s := c.Session(catalog.AdminUser)

	mustExec(t, s, "CREATE TABLE sales (id BIGINT, amount DOUBLE, region VARCHAR(8))")
	mustExec(t, s, "INSERT INTO sales VALUES (1, 100, 'EU'), (2, 50, 'US'), (3, 25, 'EU')")
	mustExec(t, s, "CALL SYSPROC.ACCEL_ADD_TABLES('IDAA1', 'SALES')")
	mustExec(t, s, "CALL SYSPROC.ACCEL_LOAD_TABLES('IDAA1', 'SALES')")

	res := mustExec(t, s, "SELECT SUM(amount) FROM sales")
	if res.Routed != "IDAA1" {
		t.Fatalf("expected offload to IDAA1, ran on %s", res.Routed)
	}
	if got, _ := res.Rows[0][0].AsFloat(); got != 175 {
		t.Fatalf("expected 175, got %v", got)
	}

	// With acceleration disabled the same query runs in DB2.
	mustExec(t, s, "SET CURRENT QUERY ACCELERATION = NONE")
	res = mustExec(t, s, "SELECT SUM(amount) FROM sales")
	if res.Routed != "DB2" {
		t.Fatalf("expected DB2 execution with acceleration NONE, got %s", res.Routed)
	}
}

func TestAcceleratorOnlyTableDMLAndTransactions(t *testing.T) {
	c := newTestCoordinator(t)
	s := c.Session(catalog.AdminUser)

	mustExec(t, s, "CREATE TABLE stage1 (k BIGINT, v DOUBLE) IN ACCELERATOR IDAA1")
	meta, err := c.Catalog().Table("STAGE1")
	if err != nil {
		t.Fatalf("catalog entry missing: %v", err)
	}
	if meta.Kind != catalog.KindAcceleratorOnly {
		t.Fatalf("expected accelerator-only kind, got %v", meta.Kind)
	}

	res := mustExec(t, s, "INSERT INTO stage1 VALUES (1, 1.0), (2, 2.0)")
	if res.RowsAffected != 2 {
		t.Fatalf("expected 2 rows inserted, got %d", res.RowsAffected)
	}

	// Uncommitted changes of the own transaction must be visible; other
	// sessions must not see them until commit.
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	mustExec(t, s, "INSERT INTO stage1 VALUES (3, 3.0)")
	res = mustExec(t, s, "SELECT COUNT(*) FROM stage1")
	if n, _ := res.Rows[0][0].AsInt(); n != 3 {
		t.Fatalf("own transaction should see 3 rows, saw %d", n)
	}
	other := c.Session(catalog.AdminUser)
	res2, err := other.Exec("SELECT COUNT(*) FROM stage1")
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := res2.Rows[0][0].AsInt(); n != 2 {
		t.Fatalf("other session should see 2 committed rows, saw %d", n)
	}
	if err := s.Rollback(); err != nil {
		t.Fatal(err)
	}
	res = mustExec(t, s, "SELECT COUNT(*) FROM stage1")
	if n, _ := res.Rows[0][0].AsInt(); n != 2 {
		t.Fatalf("after rollback 2 rows expected, saw %d", n)
	}

	// UPDATE and DELETE are delegated too.
	mustExec(t, s, "UPDATE stage1 SET v = v + 10 WHERE k = 1")
	res = mustExec(t, s, "SELECT v FROM stage1 WHERE k = 1")
	if got, _ := res.Rows[0][0].AsFloat(); got != 11.0 {
		t.Fatalf("expected 11.0 after update, got %v", got)
	}
	mustExec(t, s, "DELETE FROM stage1 WHERE k = 2")
	res = mustExec(t, s, "SELECT COUNT(*) FROM stage1")
	if n, _ := res.Rows[0][0].AsInt(); n != 1 {
		t.Fatalf("expected 1 row after delete, saw %d", n)
	}
}

func TestInsertSelectBetweenSystems(t *testing.T) {
	c := newTestCoordinator(t)
	s := c.Session(catalog.AdminUser)

	mustExec(t, s, "CREATE TABLE src (id BIGINT, amount DOUBLE)")
	mustExec(t, s, "INSERT INTO src VALUES (1, 1), (2, 2), (3, 3), (4, 4)")
	mustExec(t, s, "CREATE TABLE tgt (id BIGINT, amount DOUBLE) IN ACCELERATOR IDAA1")

	res := mustExec(t, s, "INSERT INTO tgt SELECT id, amount FROM src WHERE amount > 1")
	if res.RowsAffected != 3 {
		t.Fatalf("expected 3 rows moved, got %d", res.RowsAffected)
	}
	m := c.Metrics()
	if m.RowsMovedToAccel != 3 {
		t.Fatalf("expected 3 rows counted as moved to accelerator, got %d", m.RowsMovedToAccel)
	}

	// AOT -> AOT stays on the accelerator: no cross-system movement.
	mustExec(t, s, "CREATE TABLE tgt2 (id BIGINT, amount DOUBLE) IN ACCELERATOR IDAA1")
	c.ResetMetrics()
	mustExec(t, s, "INSERT INTO tgt2 SELECT id, amount * 2 FROM tgt")
	m = c.Metrics()
	if m.RowsMovedToAccel != 0 || m.RowsMovedToDB2 != 0 {
		t.Fatalf("AOT->AOT insert should not move rows across systems, got %+v", m)
	}
}

func TestGovernancePrivileges(t *testing.T) {
	c := newTestCoordinator(t)
	admin := c.Session(catalog.AdminUser)
	mustExec(t, admin, "CREATE TABLE secure (id BIGINT, secret VARCHAR(32)) IN ACCELERATOR IDAA1")
	mustExec(t, admin, "INSERT INTO secure VALUES (1, 'x')")

	alice := c.Session("ALICE")
	if _, err := alice.Exec("SELECT * FROM secure"); err == nil {
		t.Fatal("expected SELECT without privilege to fail")
	} else if !strings.Contains(err.Error(), "lacks SELECT") {
		t.Fatalf("unexpected error: %v", err)
	}

	mustExec(t, admin, "GRANT SELECT ON secure TO alice")
	if _, err := alice.Exec("SELECT * FROM secure"); err != nil {
		t.Fatalf("SELECT after grant should succeed: %v", err)
	}
	if _, err := alice.Exec("INSERT INTO secure VALUES (2, 'y')"); err == nil {
		t.Fatal("expected INSERT without privilege to fail")
	}
	mustExec(t, admin, "REVOKE SELECT ON secure FROM alice")
	if _, err := alice.Exec("SELECT * FROM secure"); err == nil {
		t.Fatal("expected SELECT after revoke to fail")
	}
}

func TestExplainAndShow(t *testing.T) {
	c := newTestCoordinator(t)
	s := c.Session(catalog.AdminUser)
	mustExec(t, s, "CREATE TABLE t1 (id BIGINT)")
	mustExec(t, s, "CREATE TABLE a1 (id BIGINT) IN ACCELERATOR IDAA1")

	res := mustExec(t, s, "EXPLAIN SELECT * FROM a1")
	if len(res.Rows) < 1 || res.Rows[0][1].AsString() != "IDAA1" {
		t.Fatalf("expected EXPLAIN to route to IDAA1, got %+v", res.Rows)
	}
	// Offloaded SELECTs additionally render the cost-based plan tree.
	foundScan := false
	for _, row := range res.Rows[1:] {
		if strings.Contains(row[3].AsString(), "SCAN A1") {
			foundScan = true
		}
	}
	if !foundScan {
		t.Fatalf("expected a SCAN A1 plan line, got %+v", res.Rows)
	}
	res = mustExec(t, s, "EXPLAIN SELECT * FROM t1")
	if res.Rows[0][1].AsString() != "DB2" {
		t.Fatalf("expected EXPLAIN to route to DB2, got %+v", res.Rows)
	}
	if len(res.Rows) != 1 {
		t.Fatalf("DB2-routed EXPLAIN should be summary-only, got %+v", res.Rows)
	}

	res = mustExec(t, s, "SHOW TABLES")
	if len(res.Rows) != 2 {
		t.Fatalf("expected 2 tables, got %d", len(res.Rows))
	}
	res = mustExec(t, s, "SHOW ACCELERATORS")
	if len(res.Rows) != 1 || res.Rows[0][0].AsString() != "IDAA1" {
		t.Fatalf("expected accelerator IDAA1, got %+v", res.Rows)
	}
}

func TestReplicationKeepsShadowInSync(t *testing.T) {
	c := newTestCoordinator(t)
	s := c.Session(catalog.AdminUser)
	mustExec(t, s, "CREATE TABLE facts (id BIGINT, v DOUBLE)")
	mustExec(t, s, "INSERT INTO facts VALUES (1, 1), (2, 2)")
	mustExec(t, s, "CALL SYSPROC.ACCEL_ADD_TABLES('IDAA1', 'FACTS')")
	mustExec(t, s, "CALL SYSPROC.ACCEL_LOAD_TABLES('IDAA1', 'FACTS')")
	mustExec(t, s, "CALL SYSPROC.ACCEL_SET_TABLES_REPLICATION('IDAA1', 'FACTS', 'ON')")

	mustExec(t, s, "INSERT INTO facts VALUES (3, 3)")
	mustExec(t, s, "UPDATE facts SET v = 20 WHERE id = 2")
	mustExec(t, s, "DELETE FROM facts WHERE id = 1")
	if pending := c.Repl.PendingChanges("FACTS"); pending != 3 {
		t.Fatalf("expected 3 pending changes, got %d", pending)
	}
	mustExec(t, s, "CALL SYSPROC.ACCEL_SYNC_TABLES('IDAA1', 'FACTS')")

	res := mustExec(t, s, "SELECT id, v FROM facts ORDER BY id")
	if res.Routed != "IDAA1" {
		t.Fatalf("expected offload, got %s", res.Routed)
	}
	want := [][2]float64{{2, 20}, {3, 3}}
	if len(res.Rows) != len(want) {
		t.Fatalf("expected %d rows, got %d", len(want), len(res.Rows))
	}
	for i, w := range want {
		id, _ := res.Rows[i][0].AsFloat()
		v, _ := res.Rows[i][1].AsFloat()
		if id != w[0] || v != w[1] {
			t.Fatalf("row %d: got (%v,%v) want %v", i, id, v, w)
		}
	}
}

func TestCommitHandshakeFailpoint(t *testing.T) {
	c := newTestCoordinator(t)
	s := c.Session(catalog.AdminUser)
	mustExec(t, s, "CREATE TABLE aot (id BIGINT) IN ACCELERATOR IDAA1")

	// Failure after prepare rolls both sides back.
	c.Failpoint = func(stage string) error {
		if stage == "after-prepare" {
			return errInjected
		}
		return nil
	}
	if _, err := s.Exec("INSERT INTO aot VALUES (1)"); err == nil {
		t.Fatal("expected injected failure")
	}
	c.Failpoint = nil
	res := mustExec(t, s, "SELECT COUNT(*) FROM aot")
	if n, _ := res.Rows[0][0].AsInt(); n != 0 {
		t.Fatalf("aborted transaction must not be visible, saw %d rows", n)
	}

	// Failure after the DB2 commit still drives the accelerator to commit.
	c.Failpoint = func(stage string) error {
		if stage == "after-db2-commit" {
			return errInjected
		}
		return nil
	}
	if _, err := s.Exec("INSERT INTO aot VALUES (2)"); err == nil {
		t.Fatal("expected the failpoint error to surface")
	}
	c.Failpoint = nil
	res = mustExec(t, s, "SELECT COUNT(*) FROM aot")
	if n, _ := res.Rows[0][0].AsInt(); n != 1 {
		t.Fatalf("in-doubt transaction should resolve to commit, saw %d rows", n)
	}
}

var errInjected = &injectedError{}

type injectedError struct{}

func (*injectedError) Error() string { return "injected coordinator failure" }

func TestValuesInsertMovementAccounting(t *testing.T) {
	c := newTestCoordinator(t)
	s := c.Session(catalog.AdminUser)
	mustExec(t, s, "CREATE TABLE aot (id BIGINT, v VARCHAR(8)) IN ACCELERATOR IDAA1")
	c.ResetMetrics()
	mustExec(t, s, "INSERT INTO aot VALUES (1,'a'),(2,'b')")
	if m := c.Metrics(); m.RowsMovedToAccel != 2 {
		t.Fatalf("VALUES into AOT should count as rows moved to accelerator, got %d", m.RowsMovedToAccel)
	}
	res := mustExec(t, s, "SELECT COUNT(*), MIN(v) FROM aot")
	if n, _ := res.Rows[0][0].AsInt(); n != 2 {
		t.Fatalf("expected 2 rows, got %d", n)
	}
	if got := res.Rows[0][1].AsString(); got != "a" {
		t.Fatalf("expected min 'a', got %q", got)
	}
	_ = types.Null()
}
