package federation

import (
	"fmt"
	"strings"
	"time"

	"idaax/internal/accel"
	"idaax/internal/obs"
	"idaax/internal/obs/eventlog"
	"idaax/internal/planner"
	"idaax/internal/shard"
	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

// This file is the coordinator end of the observability layer: the
// per-statement profile (root trace span, per-class latency histogram, query
// history record), the span-tree → EXPLAIN ANALYZE aggregation, and the
// callback gauges that mirror the long-standing counters into the registry.

// ---------------------------------------------------------------------------
// Statement profiles
// ---------------------------------------------------------------------------

// profile is the observability context of one top-level statement: its root
// trace span plus what is needed to record it when it completes. A nested
// statement (a procedure body running SQL through its ProcContext) reuses the
// active profile, so the whole CALL is one history entry whose trace contains
// the inner statements' spans.
type profile struct {
	s     *Session
	sql   string
	span  *obs.Span
	owner bool
}

// beginProfile opens a profile for a statement about to execute. When a
// profile is already active on the session the statement is nested and the
// returned handle attaches to it without owning it (finish is a no-op).
func (s *Session) beginProfile(sql string) *profile {
	if s.prof != nil {
		return &profile{s: s, span: s.prof}
	}
	sp := obs.NewSpan("statement")
	if qw := s.pendingQueueWait; qw > 0 {
		s.pendingQueueWait = 0
		// The wait happened before the statement span opened; back-date a
		// finished child so the trace shows admission queue time next to
		// execution time.
		q := sp.Child("admission_queue")
		q.Start = q.Start.Add(-qw)
		q.Finish()
	}
	s.prof = sp
	return &profile{s: s, sql: sql, span: sp, owner: true}
}

// finish closes an owning profile: the root span is finished, the per-class
// latency histogram observed, and the statement recorded in the history (with
// its rendered trace when it crossed the slow threshold).
func (p *profile) finish(st sqlparse.Statement, res *Result, err error) {
	if p == nil || !p.owner {
		return
	}
	s := p.s
	s.prof = nil
	p.span.Finish()
	class := stmtClass(st)
	elapsed := p.span.Duration()

	reg := s.coord.Obs
	reg.Counter("stmt_total").Inc()
	reg.Counter("stmt_class_" + class).Inc()
	reg.Histogram("stmt_seconds_" + class).Observe(elapsed)
	if err != nil {
		reg.Counter("stmt_errors_total").Inc()
	}

	rec := obs.QueryRecord{
		SQL:     p.sql,
		User:    s.user,
		Class:   class,
		Start:   p.span.Start,
		Elapsed: elapsed,
	}
	if res != nil {
		rec.Routed = res.Routed
		rec.Rows = len(res.Rows)
		if rec.Rows == 0 {
			rec.Rows = res.RowsAffected
		}
	}
	if err != nil {
		rec.Err = err.Error()
	}
	if th := s.coord.History.SlowThreshold(); th > 0 && elapsed >= th {
		rec.Trace = p.span.Format()
		s.coord.Events.Emitf(eventlog.TypeSlowQuery, eventlog.Warn, "", "",
			fmt.Sprintf("%s statement by %s took %s: %s", class, s.user, elapsed.Round(time.Millisecond), clipSQL(p.sql)))
	}
	s.coord.History.Record(rec)
}

// clipSQL bounds the statement text embedded in slow-query events; the full
// text stays in the query history.
func clipSQL(sql string) string {
	const max = 120
	sql = strings.Join(strings.Fields(sql), " ")
	if len(sql) > max {
		return sql[:max] + "..."
	}
	return sql
}

// execSpan returns the span backend work of the current statement should
// attach to (nil when no profile is active — tracing then costs nothing).
func (s *Session) execSpan() *obs.Span { return s.prof }

// stmtClass buckets a statement for latency accounting.
func stmtClass(st sqlparse.Statement) string {
	switch st.(type) {
	case *sqlparse.SelectStmt:
		return "select"
	case *sqlparse.InsertStmt, *sqlparse.UpdateStmt, *sqlparse.DeleteStmt, *sqlparse.TruncateStmt:
		return "dml"
	case *sqlparse.CreateTableStmt, *sqlparse.DropTableStmt, *sqlparse.AlterAcceleratorStmt:
		return "ddl"
	case *sqlparse.CallStmt:
		return "call"
	case *sqlparse.ExplainStmt:
		return "explain"
	default:
		return "other"
	}
}

// stmtText renders a short placeholder for pre-parsed statements executed
// through ExecStmt, where the original SQL text is not available.
func stmtText(st sqlparse.Statement) string {
	switch t := st.(type) {
	case *sqlparse.CallStmt:
		return "CALL " + types.NormalizeName(t.Procedure)
	case *sqlparse.SelectStmt:
		if tabs := sqlparse.ReferencedTables(t); len(tabs) > 0 {
			return "SELECT ... FROM " + strings.Join(tabs, ", ")
		}
		return "SELECT ..."
	default:
		return "(" + strings.ToUpper(stmtClass(st)) + " statement)"
	}
}

// ---------------------------------------------------------------------------
// EXPLAIN ANALYZE aggregation
// ---------------------------------------------------------------------------

// actualsFromSpan folds a traced execution into per-operator actuals for
// DescribeAnalyze. Scan spans are matched to plan scan operators by their
// table label: rows, pruned blocks and batches sum across shards, while the
// elapsed time is the longest single-shard scan (the wall-clock cost of the
// parallel scan). Retries sum over the whole tree.
func actualsFromSpan(root *obs.Span, resultRows int) planner.Actuals {
	a := planner.Actuals{
		Elapsed: root.Duration(),
		Rows:    int64(resultRows),
		Scans:   make(map[string]planner.ScanActuals),
	}
	root.Walk(func(sp *obs.Span, _ int) {
		if sp.Name != "scan" {
			return
		}
		table := sp.GetLabel(obs.LabelTable)
		if table == "" {
			return
		}
		sa := a.Scans[table]
		sa.Rows += sp.Int(obs.KeyRows)
		if d := sp.Duration(); d > sa.Elapsed {
			sa.Elapsed = d
		}
		sa.Shards++
		sa.BlocksPruned += sp.Int(obs.KeyBlocksPruned)
		sa.Batches += sp.Int(obs.KeyBatches)
		a.Scans[table] = sa
	})
	a.Retries = root.Aggregate(obs.KeyRetries, nil)
	return a
}

// ---------------------------------------------------------------------------
// Counter mirroring
// ---------------------------------------------------------------------------

// registerObsGauges mirrors the pre-existing counters — coordinator movement
// and routing, accelerator activity, shard routing/rebalance progress, CDC
// replication lag — into the registry as callback gauges, so one snapshot
// covers the whole system without double bookkeeping on the hot paths.
func (c *Coordinator) registerObsGauges() {
	metric := func(name string, fn func() int64) { c.Obs.GaugeFunc(name, fn) }

	metric("fed_rows_moved_to_accel", func() int64 { return c.Metrics().RowsMovedToAccel })
	metric("fed_rows_moved_to_db2", func() int64 { return c.Metrics().RowsMovedToDB2 })
	metric("fed_rows_returned_to_client", func() int64 { return c.Metrics().RowsReturnedToClient })
	metric("fed_stmts_offloaded", func() int64 { return c.Metrics().StatementsOffloaded })
	metric("fed_stmts_local", func() int64 { return c.Metrics().StatementsLocal })
	metric("fed_procedure_calls", func() int64 { return c.Metrics().ProcedureCalls })

	// Accelerator activity sums over the paired member accelerators (shard
	// groups delegate to their members, so counting routers too would double).
	sumAccel := func(f func(accel.Stats) int64) func() int64 {
		return func() int64 {
			c.accelMu.RLock()
			defer c.accelMu.RUnlock()
			var n int64
			for _, b := range c.accels {
				if a, ok := b.(*accel.Accelerator); ok {
					n += f(a.Stats())
				}
			}
			return n
		}
	}
	metric("accel_queries", sumAccel(func(st accel.Stats) int64 { return st.QueriesRun }))
	metric("accel_rows_scanned", sumAccel(func(st accel.Stats) int64 { return st.RowsScanned }))
	metric("accel_blocks_pruned", sumAccel(func(st accel.Stats) int64 { return st.BlocksPruned }))
	metric("accel_rows_ingested", sumAccel(func(st accel.Stats) int64 { return st.RowsIngested }))
	metric("accel_dml_statements", sumAccel(func(st accel.Stats) int64 { return st.DMLStatements }))
	metric("accel_vexec_queries", sumAccel(func(st accel.Stats) int64 { return st.VectorizedQueries }))
	metric("accel_vexec_fallbacks", sumAccel(func(st accel.Stats) int64 { return st.VexecFallbacks }))

	sumShard := func(f func(shard.Stats) int64) func() int64 {
		return func() int64 {
			c.accelMu.RLock()
			defer c.accelMu.RUnlock()
			var n int64
			for _, b := range c.accels {
				if r, ok := b.(*shard.Router); ok {
					n += f(r.ShardingStats())
				}
			}
			return n
		}
	}
	metric("shard_queries_routed", sumShard(func(st shard.Stats) int64 { return st.QueriesRouted }))
	metric("shard_queries_pruned", sumShard(func(st shard.Stats) int64 { return st.QueriesPruned }))
	metric("shard_rows_gathered", sumShard(func(st shard.Stats) int64 { return st.RowsGathered }))
	metric("shard_rows_migrated", sumShard(func(st shard.Stats) int64 { return st.RowsMigrated }))
	metric("shard_rebalance_batches", sumShard(func(st shard.Stats) int64 { return st.RebalanceBatches }))
	metric("shard_rebalances_completed", sumShard(func(st shard.Stats) int64 { return st.RebalancesCompleted }))

	// Rebalance progress: how many groups are actively rebalancing and the
	// live migration rate of the fastest-moving one.
	eachRouter := func(f func(shard.RebalanceStatus) int64) func() int64 {
		return func() int64 {
			c.accelMu.RLock()
			defer c.accelMu.RUnlock()
			var n int64
			for _, b := range c.accels {
				if r, ok := b.(*shard.Router); ok {
					n += f(r.RebalanceStatus())
				}
			}
			return n
		}
	}
	metric("rebalance_active", eachRouter(func(st shard.RebalanceStatus) int64 {
		if st.Active {
			return 1
		}
		return 0
	}))
	metric("rebalance_rows_per_sec", func() int64 {
		c.accelMu.RLock()
		defer c.accelMu.RUnlock()
		var best float64
		for _, b := range c.accels {
			if r, ok := b.(*shard.Router); ok {
				if st := r.RebalanceStatus(); st.RowsPerSec > best {
					best = st.RowsPerSec
				}
			}
		}
		return int64(best)
	})
	metric("rebalance_migrating_tables", eachRouter(func(st shard.RebalanceStatus) int64 {
		return int64(len(st.MigratingTables))
	}))

	// CDC replication: cumulative work plus the current backlog (changes
	// captured but not yet applied, and the age of the oldest of them).
	metric("repl_rows_full_loaded", func() int64 { return c.Repl.Stats().RowsFullLoaded })
	metric("repl_rows_incremental", func() int64 { return c.Repl.Stats().RowsIncremental })
	metric("repl_pending_changes", func() int64 {
		pending, _ := c.Repl.LagReport()
		return int64(pending)
	})
	metric("repl_apply_lag_ms", func() int64 {
		_, lag := c.Repl.LagReport()
		return lag.Milliseconds()
	})

	metric("history_slow_queries", func() int64 { return int64(len(c.History.SlowQueries(0))) })
}
