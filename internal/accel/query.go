package accel

import (
	"fmt"
	"strings"
	"sync/atomic"

	"idaax/internal/colstore"
	"idaax/internal/relalg"
	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

// Query executes a SELECT against accelerator-resident tables under a snapshot
// of the DB2 transaction txnID (0 for an anonymous committed-data snapshot).
// Simple "column <op> literal" conjuncts of the WHERE clause are pushed into
// the columnar scans where zone maps can prune blocks; the full predicate is
// then (re-)applied by the shared relational operators, so pushdown is purely
// a performance optimisation.
func (a *Accelerator) Query(txnID int64, sel *sqlparse.SelectStmt) (*relalg.Relation, error) {
	return a.QueryAt(txnID, a.Registry.Snapshot(txnID), sel)
}

// QueryAt is Query under a caller-provided snapshot. The shard router uses it
// to run one statement over many accelerators with snapshots taken together
// under its commit fence, so a transaction committing across the fleet is
// either visible on every shard or on none.
func (a *Accelerator) QueryAt(txnID int64, snap *Snapshot, sel *sqlparse.SelectStmt) (*relalg.Relation, error) {
	atomic.AddInt64(&a.queriesRun, 1)
	from, err := a.buildFrom(txnID, snap, sel)
	if err != nil {
		return nil, err
	}
	rel, err := relalg.ExecuteSelect(from, sel, relalg.Options{Parallelism: a.slices})
	if err != nil {
		return nil, err
	}
	atomic.AddInt64(&a.rowsReturned, int64(len(rel.Rows)))
	return rel, nil
}

// buildFrom materialises every FROM item under the single statement-level
// snapshot, so a multi-table join cannot observe a concurrent commit between
// its scans. Subqueries recurse through Query and snapshot on their own, as
// they always have.
func (a *Accelerator) buildFrom(txnID int64, snap *Snapshot, sel *sqlparse.SelectStmt) (*relalg.Relation, error) {
	if len(sel.From) == 0 {
		return relalg.JoinAll(nil, nil, a.slices)
	}
	rels := make([]*relalg.Relation, len(sel.From))
	for i, item := range sel.From {
		if item.Subquery != nil {
			sub, err := a.Query(txnID, item.Subquery)
			if err != nil {
				return nil, err
			}
			rels[i] = relalg.Requalify(sub, item.Name())
			continue
		}
		t, err := a.Table(item.Table)
		if err != nil {
			return nil, err
		}
		rels[i] = relalg.FromTable(item.Name(), t.Schema(), a.scanTable(t, snap, sel, item))
	}
	return relalg.JoinAll(rels, sel.From, a.slices)
}

// ScanVisible materialises the rows of a table visible under the given
// snapshot (obtain one per statement from Registry.Snapshot), pushing the
// simple WHERE conjuncts of sel that reference the given FROM item into the
// columnar scan (zone-map pruning). The scan and pruning counters are
// accounted on this accelerator, which is what keeps per-shard statistics
// accurate when a shard router gathers base rows from many accelerators. sel
// may be nil to scan without pushdown.
func (a *Accelerator) ScanVisible(snap *Snapshot, table string, sel *sqlparse.SelectStmt, item sqlparse.FromItem) ([]types.Row, error) {
	t, err := a.Table(table)
	if err != nil {
		return nil, err
	}
	return a.scanTable(t, snap, sel, item), nil
}

func (a *Accelerator) scanTable(t *colstore.Table, snap *Snapshot, sel *sqlparse.SelectStmt, item sqlparse.FromItem) []types.Row {
	var preds []colstore.SimplePredicate
	if sel != nil {
		preds = a.pushdownPredicates(sel, item, t)
	}
	rows, stats := t.ParallelScan(a.slices, snap.Visible, preds)
	atomic.AddInt64(&a.rowsScanned, int64(stats.VersionsConsidered))
	atomic.AddInt64(&a.blocksPruned, int64(stats.BlocksPruned))
	return rows
}

// pushdownPredicates extracts the WHERE conjuncts of the form
// "col <op> literal" that unambiguously reference the given FROM item.
func (a *Accelerator) pushdownPredicates(sel *sqlparse.SelectStmt, item sqlparse.FromItem, t *colstore.Table) []colstore.SimplePredicate {
	if sel.Where == nil {
		return nil
	}
	schema := t.Schema()
	singleTable := len(sel.From) == 1
	var preds []colstore.SimplePredicate

	var visit func(e sqlparse.Expr)
	visit = func(e sqlparse.Expr) {
		b, ok := e.(*sqlparse.BinaryExpr)
		if !ok {
			return
		}
		if b.Op == sqlparse.OpAnd {
			visit(b.Left)
			visit(b.Right)
			return
		}
		ref, lit, op, ok := simpleComparison(b)
		if !ok {
			return
		}
		// The reference must belong to this FROM item: either it is qualified
		// with the item's name, or the query has a single table and the column
		// exists in its schema.
		colIdx := schema.IndexOf(ref.Name)
		if colIdx < 0 {
			return
		}
		if ref.Table != "" {
			if !strings.EqualFold(ref.Table, item.Name()) {
				return
			}
		} else if !singleTable {
			return
		}
		preds = append(preds, colstore.NewSimplePredicate(colIdx, op, lit))
	}
	visit(sel.Where)
	return preds
}

// simpleComparison recognises "col <op> literal" and "literal <op> col"
// comparisons, normalising the latter by flipping the operator.
func simpleComparison(b *sqlparse.BinaryExpr) (*sqlparse.ColumnRef, types.Value, colstore.CompareOp, bool) {
	op, ok := compareOp(b.Op)
	if !ok {
		return nil, types.Null(), 0, false
	}
	if ref, isRef := b.Left.(*sqlparse.ColumnRef); isRef {
		if lit, isLit := b.Right.(*sqlparse.Literal); isLit && !lit.Val.IsNull() {
			return ref, lit.Val, op, true
		}
	}
	if ref, isRef := b.Right.(*sqlparse.ColumnRef); isRef {
		if lit, isLit := b.Left.(*sqlparse.Literal); isLit && !lit.Val.IsNull() {
			return ref, lit.Val, flipOp(op), true
		}
	}
	return nil, types.Null(), 0, false
}

func compareOp(op sqlparse.BinOp) (colstore.CompareOp, bool) {
	switch op {
	case sqlparse.OpEq:
		return colstore.CmpEq, true
	case sqlparse.OpNe:
		return colstore.CmpNe, true
	case sqlparse.OpLt:
		return colstore.CmpLt, true
	case sqlparse.OpLe:
		return colstore.CmpLe, true
	case sqlparse.OpGt:
		return colstore.CmpGt, true
	case sqlparse.OpGe:
		return colstore.CmpGe, true
	default:
		return 0, false
	}
}

func flipOp(op colstore.CompareOp) colstore.CompareOp {
	switch op {
	case colstore.CmpLt:
		return colstore.CmpGt
	case colstore.CmpLe:
		return colstore.CmpGe
	case colstore.CmpGt:
		return colstore.CmpLt
	case colstore.CmpGe:
		return colstore.CmpLe
	default:
		return op
	}
}

// MaterializeQuery executes a SELECT and inserts its result into the target
// accelerator table under the same DB2 transaction. It implements the
// accelerator side of INSERT INTO <aot> SELECT ..., the core operation of
// multi-stage transformations running entirely inside the accelerator.
func (a *Accelerator) MaterializeQuery(txnID int64, target string, columns []string, sel *sqlparse.SelectStmt) (int, error) {
	rel, err := a.Query(txnID, sel)
	if err != nil {
		return 0, err
	}
	t, err := a.Table(target)
	if err != nil {
		return 0, err
	}
	rows, err := mapRowsToSchema(columns, rel.Rows, t.Schema())
	if err != nil {
		return 0, err
	}
	return a.Insert(txnID, target, rows)
}

func mapRowsToSchema(columns []string, rows []types.Row, schema types.Schema) ([]types.Row, error) {
	if len(columns) == 0 {
		return rows, nil
	}
	positions := make([]int, len(columns))
	for i, c := range columns {
		idx := schema.IndexOf(c)
		if idx < 0 {
			return nil, fmt.Errorf("accel: INSERT references unknown column %s", c)
		}
		positions[i] = idx
	}
	out := make([]types.Row, len(rows))
	for ri, src := range rows {
		if len(src) != len(positions) {
			return nil, fmt.Errorf("accel: SELECT produced %d columns for %d target columns", len(src), len(positions))
		}
		row := make(types.Row, schema.Len())
		for i := range row {
			row[i] = types.Null()
		}
		for i, v := range src {
			row[positions[i]] = v
		}
		out[ri] = row
	}
	return out, nil
}
