package accel

import (
	"fmt"
	"strings"
	"sync/atomic"

	"idaax/internal/colstore"
	"idaax/internal/obs"
	"idaax/internal/planner"
	"idaax/internal/relalg"
	"idaax/internal/sqlparse"
	"idaax/internal/types"
	"idaax/internal/vexec"
)

// Query executes a SELECT against accelerator-resident tables under a snapshot
// of the DB2 transaction txnID (0 for an anonymous committed-data snapshot).
// Simple "column <op> literal" conjuncts of the WHERE clause are pushed into
// the columnar scans where zone maps can prune blocks; the full predicate is
// then (re-)applied by the shared relational operators, so pushdown is purely
// a performance optimisation.
func (a *Accelerator) Query(txnID int64, sel *sqlparse.SelectStmt) (*relalg.Relation, error) {
	return a.QueryAtTraced(txnID, a.Registry.Snapshot(txnID), sel, nil)
}

// QueryTraced is Query with a trace span (see Backend.QueryTraced): the
// statement's scans and execution attach as children of sp. sp may be nil,
// which disables tracing at the cost of one nil check per span operation.
func (a *Accelerator) QueryTraced(txnID int64, sel *sqlparse.SelectStmt, sp *obs.Span) (*relalg.Relation, error) {
	return a.QueryAtTraced(txnID, a.Registry.Snapshot(txnID), sel, sp)
}

// QueryAt is Query under a caller-provided snapshot. The shard router uses it
// to run one statement over many accelerators with snapshots taken together
// under its commit fence, so a transaction committing across the fleet is
// either visible on every shard or on none.
//
// Multi-table statements first pass through the cost-based planner, which may
// reorder the FROM clause and hoist WHERE equalities into join conditions;
// the rewritten statement returns exactly the same rows (the full WHERE
// clause is re-applied after the joins).
func (a *Accelerator) QueryAt(txnID int64, snap *Snapshot, sel *sqlparse.SelectStmt) (*relalg.Relation, error) {
	return a.QueryAtTraced(txnID, snap, sel, nil)
}

// QueryAtTraced is QueryAt with a trace span (nil disables tracing).
func (a *Accelerator) QueryAtTraced(txnID int64, snap *Snapshot, sel *sqlparse.SelectStmt, sp *obs.Span) (rel *relalg.Relation, err error) {
	atomic.AddInt64(&a.queriesRun, 1)
	defer func() {
		if err != nil {
			atomic.AddInt64(&a.queryErrors, 1)
		}
	}()
	sel, methods := a.planStatement(sel)
	if rel, handled, err := a.tryVectorized(snap, sel, methods, sp); handled {
		if err != nil {
			return nil, err
		}
		atomic.AddInt64(&a.rowsReturned, int64(len(rel.Rows)))
		return rel, nil
	}
	from, err := a.BuildFromRelationTraced(txnID, snap, sel, nil, methods, sp)
	if err != nil {
		return nil, err
	}
	rel, err = relalg.ExecuteSelect(from, sel, relalg.Options{Parallelism: a.slices})
	if err != nil {
		return nil, err
	}
	atomic.AddInt64(&a.rowsReturned, int64(len(rel.Rows)))
	return rel, nil
}

// tryVectorized runs a statement through the vectorized batch engine
// (internal/vexec): single plain tables take the scan path, two plain tables
// the hash-join path. handled=false falls back to the row path without side
// effects: the statement is out of engine scope, the engine is disabled, or a
// table is unknown (the row path raises the proper error). When the engine
// only covers scan+filter (or join without aggregation), the surviving rows
// are materialized late and the remaining operators run row-at-a-time with
// the WHERE clause stripped — the vector filters already applied it exactly.
func (a *Accelerator) tryVectorized(snap *Snapshot, sel *sqlparse.SelectStmt, methods []relalg.JoinMethod, sp *obs.Span) (*relalg.Relation, bool, error) {
	if !a.VectorizedEnabled() {
		return nil, false, nil
	}
	switch {
	case len(sel.From) == 1 && sel.From[0].Subquery == nil:
		return a.tryVectorizedScan(snap, sel, sp)
	case len(sel.From) == 2 && sel.From[0].Subquery == nil && sel.From[1].Subquery == nil:
		return a.tryVectorizedJoin(snap, sel, methods, sp)
	default:
		return nil, false, nil
	}
}

func (a *Accelerator) tryVectorizedScan(snap *Snapshot, sel *sqlparse.SelectStmt, sp *obs.Span) (*relalg.Relation, bool, error) {
	t, err := a.Table(sel.From[0].Table)
	if err != nil {
		return nil, false, nil
	}
	plan, ok := vexec.PlanQuery(sel, t.Schema())
	if !ok {
		// In-scope shape (single table, engine on) that the engine declined:
		// the fallback-rate metric feeds on this.
		atomic.AddInt64(&a.vexecFallbacks, 1)
		return nil, false, nil
	}
	sc := sp.Child("scan")
	sc.Label(obs.LabelTable, types.NormalizeName(sel.From[0].Name()))
	sc.Label(obs.LabelShard, a.name)
	sc.Label(obs.LabelMode, "vectorized:"+plan.Mode())
	rel, stats, err := plan.Run(t, a.slices, snap.Visible)
	sc.Add(obs.KeyRows, int64(stats.RowsMaterialized))
	sc.Add(obs.KeyVersions, int64(stats.VersionsConsidered))
	sc.Add(obs.KeyBlocksPruned, int64(stats.BlocksPruned))
	sc.Add(obs.KeyBatches, int64(stats.Batches))
	sc.Finish()
	atomic.AddInt64(&a.rowsScanned, int64(stats.VersionsConsidered))
	atomic.AddInt64(&a.blocksPruned, int64(stats.BlocksPruned))
	if err != nil {
		return nil, true, err
	}
	atomic.AddInt64(&a.vectorizedQueries, 1)
	if plan.Aggregated() {
		return rel, true, nil
	}
	rest := *sel
	rest.Where = nil
	out, err := relalg.ExecuteSelect(rel, &rest, relalg.Options{Parallelism: a.slices})
	if err != nil {
		return nil, true, err
	}
	return out, true, nil
}

// tryVectorizedJoin runs a two-table statement as a vectorized hash join:
// build over the second FROM item, probe over the first, both scanning column
// batches under the statement snapshot. With integrated aggregation the
// result is final; otherwise the joined relation (WHERE fully applied)
// continues through the row operators with WHERE stripped, exactly like the
// single-table scan path.
func (a *Accelerator) tryVectorizedJoin(snap *Snapshot, sel *sqlparse.SelectStmt, methods []relalg.JoinMethod, sp *obs.Span) (*relalg.Relation, bool, error) {
	plan, lt, rt, ok := a.planVectorizedJoin(sel, methods)
	if !ok {
		return nil, false, nil
	}
	rel, err := a.runJoinPlan(plan, lt, rt, snap, sel, sp)
	if err != nil {
		return nil, true, err
	}
	if plan.Aggregated() {
		return rel, true, nil
	}
	rest := *sel
	rest.Where = nil
	out, err := relalg.ExecuteSelect(rel, &rest, relalg.Options{Parallelism: a.slices})
	if err != nil {
		return nil, true, err
	}
	return out, true, nil
}

// planVectorizedJoin resolves both FROM tables and plans the batch hash join,
// counting a fallback when vexec declines the statement.
func (a *Accelerator) planVectorizedJoin(sel *sqlparse.SelectStmt, methods []relalg.JoinMethod) (*vexec.JoinPlan, *colstore.Table, *colstore.Table, bool) {
	lt, err := a.Table(sel.From[0].Table)
	if err != nil {
		return nil, nil, nil, false
	}
	rt, err := a.Table(sel.From[1].Table)
	if err != nil {
		return nil, nil, nil, false
	}
	method := relalg.MethodAuto
	if len(methods) > 0 {
		method = methods[0]
	}
	plan, ok := vexec.PlanJoin(sel, lt.Schema(), rt.Schema(), method)
	if !ok {
		atomic.AddInt64(&a.vexecFallbacks, 1)
		return nil, nil, nil, false
	}
	return plan, lt, rt, true
}

// runJoinPlan executes a planned batch hash join under the statement snapshot,
// emitting the join span with one scan child per side and accounting the scan
// and vectorization counters.
func (a *Accelerator) runJoinPlan(plan *vexec.JoinPlan, lt, rt *colstore.Table, snap *Snapshot, sel *sqlparse.SelectStmt, sp *obs.Span) (*relalg.Relation, error) {
	jc := sp.Child("join")
	jc.Label(obs.LabelShard, a.name)
	jc.Label(obs.LabelMode, "vectorized:"+plan.Mode())
	rel, js, err := plan.Run(lt, rt, a.slices, snap.Visible)
	for _, side := range []struct {
		item  sqlparse.FromItem
		stats colstore.ScanStats
	}{{sel.From[1], js.Build}, {sel.From[0], js.Probe}} {
		sc := a.startScanSpan(jc, side.item.Name())
		sc.Add(obs.KeyRows, int64(side.stats.RowsMaterialized))
		sc.Add(obs.KeyVersions, int64(side.stats.VersionsConsidered))
		sc.Add(obs.KeyBlocksPruned, int64(side.stats.BlocksPruned))
		sc.Add(obs.KeyBatches, int64(side.stats.Batches))
		sc.Finish()
	}
	jc.Finish()
	total := js.Total()
	atomic.AddInt64(&a.rowsScanned, int64(total.VersionsConsidered))
	atomic.AddInt64(&a.blocksPruned, int64(total.BlocksPruned))
	if err != nil {
		return nil, err
	}
	atomic.AddInt64(&a.vectorizedQueries, 1)
	atomic.AddInt64(&a.vectorizedJoins, 1)
	return rel, nil
}

// PlannerCatalog exposes this accelerator's tables and statistics to the
// cost-based planner.
func (a *Accelerator) PlannerCatalog() planner.Catalog {
	return func(table string) (planner.TableInfo, bool) {
		t, err := a.Table(table)
		if err != nil {
			return planner.TableInfo{}, false
		}
		return planner.TableInfo{
			Name:    t.Name(),
			Schema:  t.Schema(),
			Stats:   t.Statistics(),
			DistKey: t.DistKey(),
			Shards:  1,
			Members: []string{a.name},
		}, true
	}
}

// planStatement runs the cost-based planner over a multi-table statement and
// returns the (possibly rewritten) statement plus per-join method choices.
// Single-table statements skip planning: there is no order or method to pick.
func (a *Accelerator) planStatement(sel *sqlparse.SelectStmt) (*sqlparse.SelectStmt, []relalg.JoinMethod) {
	if len(sel.From) < 2 {
		return sel, nil
	}
	pl := planner.PlanSelect(sel, a.PlannerCatalog())
	if pl == nil {
		return sel, nil
	}
	return pl.Sel, pl.Methods
}

// Explain plans a SELECT against this accelerator without executing it.
func (a *Accelerator) Explain(sel *sqlparse.SelectStmt) (*planner.Plan, error) {
	pl := planner.PlanSelect(sel, a.PlannerCatalog())
	if pl != nil {
		a.annotateVectorized(pl, sel)
	}
	return pl, nil
}

// annotateVectorized records on the plan whether (and how far) the vectorized
// batch engine would execute the statement, for EXPLAIN.
func (a *Accelerator) annotateVectorized(pl *planner.Plan, sel *sqlparse.SelectStmt) {
	// Column encodings are physical storage state, reported whether or not
	// the batch engine runs the statement.
	for i, scan := range pl.Scans {
		if scan.Item.Subquery != nil {
			continue
		}
		if t, err := a.Table(scan.Item.Table); err == nil {
			pl.Scans[i].Encoding = EncodingSummary(t)
		}
	}
	if !a.VectorizedEnabled() {
		return
	}
	pl.Vectorized = true
	pl.VectorizedMode = vexec.ModeScan // deep joins and subqueries still scan in batches
	// Annotate from the planner-rewritten statement: execution plans joins
	// over pl.Sel with pl.Methods, not the original FROM order.
	if pl.Sel != nil {
		sel = pl.Sel
	}
	switch {
	case len(sel.From) == 1 && sel.From[0].Subquery == nil:
		t, err := a.Table(sel.From[0].Table)
		if err != nil {
			return
		}
		if p, ok := vexec.PlanQuery(sel, t.Schema()); ok {
			pl.VectorizedMode = p.Mode()
		}
	case len(sel.From) == 2 && sel.From[0].Subquery == nil && sel.From[1].Subquery == nil:
		lt, lerr := a.Table(sel.From[0].Table)
		rt, rerr := a.Table(sel.From[1].Table)
		if lerr != nil || rerr != nil {
			return
		}
		method := relalg.MethodAuto
		if len(pl.Methods) > 0 {
			method = pl.Methods[0]
		}
		if p, ok := vexec.PlanJoin(sel, lt.Schema(), rt.Schema(), method); ok {
			pl.VectorizedMode = p.Mode()
			if len(pl.Steps) > 0 {
				pl.Steps[0].Vectorized = true
			}
		}
	}
}

// EncodingSummary renders a table's dictionary-encoded columns for EXPLAIN
// scan lines ("dict(cat:3,grp:5)" — name:cardinality per encoded column);
// empty when every column is plain.
func EncodingSummary(t *colstore.Table) string {
	var parts []string
	for _, e := range t.ColumnEncodings() {
		if e.Dict {
			parts = append(parts, fmt.Sprintf("%s:%d", strings.ToLower(e.Name), e.DictSize))
		}
	}
	if len(parts) == 0 {
		return ""
	}
	return "dict(" + strings.Join(parts, ",") + ")"
}

// BuildFromRelation materialises every FROM item of sel under the single
// statement-level snapshot and folds them with the planned join methods, so a
// multi-table join cannot observe a concurrent commit between its scans.
// Subqueries recurse through Query and snapshot on their own, as they always
// have. overrides, keyed by normalized FROM item name, substitutes
// caller-provided relations for table scans — the shard router uses it to
// hand every member the full content of a broadcast table instead of the
// member's own partition.
func (a *Accelerator) BuildFromRelation(txnID int64, snap *Snapshot, sel *sqlparse.SelectStmt, overrides map[string]*relalg.Relation, methods []relalg.JoinMethod) (*relalg.Relation, error) {
	return a.BuildFromRelationTraced(txnID, snap, sel, overrides, methods, nil)
}

// BuildFromRelationTraced is BuildFromRelation with a trace span: one "scan"
// child per table scanned (labelled with the FROM item and this accelerator's
// name), subqueries nesting recursively. sp may be nil.
func (a *Accelerator) BuildFromRelationTraced(txnID int64, snap *Snapshot, sel *sqlparse.SelectStmt, overrides map[string]*relalg.Relation, methods []relalg.JoinMethod, sp *obs.Span) (*relalg.Relation, error) {
	if len(sel.From) == 0 {
		return relalg.JoinAll(nil, nil, a.slices)
	}
	// Two plain tables with no substituted relations: produce the joined FROM
	// relation straight from column batches with the batch hash join, folding
	// sel's WHERE in. The caller re-executes the full statement (WHERE
	// included) over the union of the per-shard results, so pre-filtering here
	// only reduces the rows that travel to the coordinator.
	if a.VectorizedEnabled() && len(overrides) == 0 &&
		len(sel.From) == 2 && sel.From[0].Subquery == nil && sel.From[1].Subquery == nil {
		reduced := &sqlparse.SelectStmt{
			Items: []sqlparse.SelectItem{{Star: true}},
			From:  sel.From,
			Where: sel.Where,
			Limit: -1,
		}
		if plan, lt, rt, ok := a.planVectorizedJoin(reduced, methods); ok {
			return a.runJoinPlan(plan, lt, rt, snap, reduced, sp)
		}
	}
	rels := make([]*relalg.Relation, len(sel.From))
	for i, item := range sel.From {
		if rel, ok := overrides[types.NormalizeName(item.Name())]; ok {
			rels[i] = rel
			continue
		}
		if item.Subquery != nil {
			ssp := sp.Child("subquery")
			sub, err := a.QueryTraced(txnID, item.Subquery, ssp)
			ssp.Finish()
			if err != nil {
				return nil, err
			}
			rels[i] = relalg.Requalify(sub, item.Name())
			continue
		}
		t, err := a.Table(item.Table)
		if err != nil {
			return nil, err
		}
		sc := a.startScanSpan(sp, item.Name())
		rows := a.scanTable(t, snap, sel, item, sc)
		sc.Add(obs.KeyRows, int64(len(rows)))
		sc.Finish()
		rels[i] = relalg.FromTable(item.Name(), t.Schema(), rows)
	}
	return relalg.JoinAllPlanned(rels, sel.From, methods, a.slices)
}

// startScanSpan opens a "scan" child carrying the FROM item and shard labels
// EXPLAIN ANALYZE matches plan operators against.
func (a *Accelerator) startScanSpan(sp *obs.Span, itemName string) *obs.Span {
	sc := sp.Child("scan")
	sc.Label(obs.LabelTable, types.NormalizeName(itemName))
	sc.Label(obs.LabelShard, a.name)
	return sc
}

// ScanVisible materialises the rows of a table visible under the given
// snapshot (obtain one per statement from Registry.Snapshot), pushing the
// simple WHERE conjuncts of sel that reference the given FROM item into the
// columnar scan (zone-map pruning). The scan and pruning counters are
// accounted on this accelerator, which is what keeps per-shard statistics
// accurate when a shard router gathers base rows from many accelerators. sel
// may be nil to scan without pushdown.
func (a *Accelerator) ScanVisible(snap *Snapshot, table string, sel *sqlparse.SelectStmt, item sqlparse.FromItem) ([]types.Row, error) {
	return a.ScanVisibleTraced(snap, table, sel, item, nil)
}

// ScanVisibleTraced is ScanVisible with a trace span: the scan appears as one
// "scan" child of sp, labelled with the FROM item and this accelerator's name
// and carrying rows/batches/blocks-pruned attributes. sp may be nil.
func (a *Accelerator) ScanVisibleTraced(snap *Snapshot, table string, sel *sqlparse.SelectStmt, item sqlparse.FromItem, sp *obs.Span) ([]types.Row, error) {
	t, err := a.Table(table)
	if err != nil {
		atomic.AddInt64(&a.queryErrors, 1)
		return nil, err
	}
	sc := a.startScanSpan(sp, item.Name())
	rows := a.scanTable(t, snap, sel, item, sc)
	sc.Add(obs.KeyRows, int64(len(rows)))
	sc.Finish()
	return rows, nil
}

func (a *Accelerator) scanTable(t *colstore.Table, snap *Snapshot, sel *sqlparse.SelectStmt, item sqlparse.FromItem, sp *obs.Span) []types.Row {
	var preds []colstore.SimplePredicate
	if sel != nil {
		preds = a.pushdownPredicates(sel, item, t)
	}
	var rows []types.Row
	var stats colstore.ScanStats
	if a.VectorizedEnabled() {
		// Batch scan: the same pushdown predicates evaluate vector-at-a-time
		// and only surviving rows materialize, into exactly-sized buffers.
		// Joins, the shard gather path and the analytics seam all read through
		// here, so they scan in batches too.
		rows, stats = t.ScanMaterialize(a.slices, snap.Visible, preds)
	} else {
		rows, stats = t.ParallelScan(a.slices, snap.Visible, preds)
	}
	sp.Add(obs.KeyVersions, int64(stats.VersionsConsidered))
	sp.Add(obs.KeyBlocksPruned, int64(stats.BlocksPruned))
	sp.Add(obs.KeyBatches, int64(stats.Batches))
	atomic.AddInt64(&a.rowsScanned, int64(stats.VersionsConsidered))
	atomic.AddInt64(&a.blocksPruned, int64(stats.BlocksPruned))
	return rows
}

// pushdownPredicates extracts the WHERE conjuncts that can drive zone-map
// block skipping for the given FROM item: "col <op> literal" comparisons,
// BETWEEN ranges (two bound predicates), and IN lists (collapsed to their
// min/max range). The full WHERE clause is re-applied after the joins, so a
// pushed predicate may be a superset filter without changing results.
func (a *Accelerator) pushdownPredicates(sel *sqlparse.SelectStmt, item sqlparse.FromItem, t *colstore.Table) []colstore.SimplePredicate {
	if sel.Where == nil {
		return nil
	}
	schema := t.Schema()
	var preds []colstore.SimplePredicate

	// resolve returns the column index for a reference belonging to this FROM
	// item: qualified with the item's name, or unqualified when the column
	// name cannot also come from another FROM item.
	resolve := func(ref *sqlparse.ColumnRef) int {
		colIdx := schema.IndexOf(ref.Name)
		if colIdx < 0 {
			return -1
		}
		if ref.Table != "" {
			if !strings.EqualFold(ref.Table, item.Name()) {
				return -1
			}
			return colIdx
		}
		for _, other := range sel.From {
			if other.Name() == item.Name() {
				continue
			}
			if other.Subquery != nil {
				return -1 // opaque item: cannot prove the name is unique
			}
			ot, err := a.Table(other.Table)
			if err != nil || ot.Schema().IndexOf(ref.Name) >= 0 {
				return -1
			}
		}
		return colIdx
	}

	var visit func(e sqlparse.Expr)
	visit = func(e sqlparse.Expr) {
		switch n := e.(type) {
		case *sqlparse.BinaryExpr:
			if n.Op == sqlparse.OpAnd {
				visit(n.Left)
				visit(n.Right)
				return
			}
			ref, lit, op, ok := vexec.SimpleComparison(n)
			if !ok {
				return
			}
			if colIdx := resolve(ref); colIdx >= 0 {
				preds = append(preds, colstore.NewSimplePredicate(colIdx, op, lit))
			}
		case *sqlparse.BetweenExpr:
			if n.Negate {
				return
			}
			ref, ok := n.Operand.(*sqlparse.ColumnRef)
			if !ok {
				return
			}
			lo, okLo := n.Low.(*sqlparse.Literal)
			hi, okHi := n.High.(*sqlparse.Literal)
			if !okLo || !okHi || lo.Val.IsNull() || hi.Val.IsNull() {
				return
			}
			if colIdx := resolve(ref); colIdx >= 0 {
				preds = append(preds,
					colstore.NewSimplePredicate(colIdx, colstore.CmpGe, lo.Val),
					colstore.NewSimplePredicate(colIdx, colstore.CmpLe, hi.Val))
			}
		case *sqlparse.InExpr:
			if n.Negate || len(n.List) == 0 {
				return
			}
			ref, ok := n.Operand.(*sqlparse.ColumnRef)
			if !ok {
				return
			}
			var min, max types.Value
			for _, e := range n.List {
				lit, ok := e.(*sqlparse.Literal)
				if !ok {
					return
				}
				if lit.Val.IsNull() {
					continue // IN (NULL, ...) never matches on NULL
				}
				if min.IsNull() {
					min, max = lit.Val, lit.Val
					continue
				}
				if c, err := types.Compare(lit.Val, min); err != nil {
					return
				} else if c < 0 {
					min = lit.Val
				}
				if c, err := types.Compare(lit.Val, max); err != nil {
					return
				} else if c > 0 {
					max = lit.Val
				}
			}
			if min.IsNull() {
				return
			}
			if colIdx := resolve(ref); colIdx >= 0 {
				preds = append(preds,
					colstore.NewSimplePredicate(colIdx, colstore.CmpGe, min),
					colstore.NewSimplePredicate(colIdx, colstore.CmpLe, max))
			}
		}
	}
	visit(sel.Where)
	return preds
}

// MaterializeQuery executes a SELECT and inserts its result into the target
// accelerator table under the same DB2 transaction. It implements the
// accelerator side of INSERT INTO <aot> SELECT ..., the core operation of
// multi-stage transformations running entirely inside the accelerator.
func (a *Accelerator) MaterializeQuery(txnID int64, target string, columns []string, sel *sqlparse.SelectStmt) (int, error) {
	rel, err := a.Query(txnID, sel)
	if err != nil {
		return 0, err
	}
	t, err := a.Table(target)
	if err != nil {
		return 0, err
	}
	rows, err := mapRowsToSchema(columns, rel.Rows, t.Schema())
	if err != nil {
		return 0, err
	}
	return a.Insert(txnID, target, rows)
}

func mapRowsToSchema(columns []string, rows []types.Row, schema types.Schema) ([]types.Row, error) {
	if len(columns) == 0 {
		return rows, nil
	}
	positions := make([]int, len(columns))
	for i, c := range columns {
		idx := schema.IndexOf(c)
		if idx < 0 {
			return nil, fmt.Errorf("accel: INSERT references unknown column %s", c)
		}
		positions[i] = idx
	}
	out := make([]types.Row, len(rows))
	for ri, src := range rows {
		if len(src) != len(positions) {
			return nil, fmt.Errorf("accel: SELECT produced %d columns for %d target columns", len(src), len(positions))
		}
		row := make(types.Row, schema.Len())
		for i := range row {
			row[i] = types.Null()
		}
		for i, v := range src {
			row[positions[i]] = v
		}
		out[ri] = row
	}
	return out, nil
}
