// Package accel implements the analytics accelerator: a columnar,
// multi-versioned, sliced (MPP-style) query engine that DB2 delegates work to.
// It models the Netezza-based backend of the IBM DB2 Analytics Accelerator at
// the level of behaviour the paper relies on: snapshot-isolated queries,
// awareness of the originating DB2 transaction (so a transaction sees its own
// uncommitted changes in accelerator-only tables), parallel scan slices and
// zone-map pruning.
package accel

import (
	"fmt"
	"sync"
)

// TxnState is the accelerator-side state of a DB2 transaction.
type TxnState int

const (
	// TxnActive marks a transaction with in-flight changes.
	TxnActive TxnState = iota
	// TxnPrepared marks a transaction that has passed the prepare phase of the
	// commit handshake with DB2.
	TxnPrepared
	// TxnCommitted marks a committed transaction.
	TxnCommitted
	// TxnAborted marks a rolled-back transaction; its row versions are never
	// visible to anyone.
	TxnAborted
)

// Registry tracks the accelerator-side status of DB2 transactions. The DB2
// transaction id is the shared handle: DB2 ships it with every delegated
// statement, which is how the accelerator knows which uncommitted changes
// belong to the requesting transaction (paper, Section 2).
type Registry struct {
	mu        sync.RWMutex
	states    map[int64]TxnState
	commitSeq map[int64]int64
	nextSeq   int64
	journal   RegistryJournal
}

// NewRegistry creates an empty transaction registry.
func NewRegistry() *Registry {
	return &Registry{states: make(map[int64]TxnState), commitSeq: make(map[int64]int64), nextSeq: 1}
}

// Ensure registers the DB2 transaction as active if it is not yet known.
func (r *Registry) Ensure(txnID int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.states[txnID]; !ok {
		r.states[txnID] = TxnActive
	}
}

// State returns the accelerator-side state of the transaction.
func (r *Registry) State(txnID int64) TxnState {
	r.mu.RLock()
	defer r.mu.RUnlock()
	st, ok := r.states[txnID]
	if !ok {
		return TxnAborted
	}
	return st
}

// Prepare transitions an active transaction to prepared (phase one of the
// commit handshake). Preparing an unknown transaction is allowed and registers
// it; preparing an aborted transaction fails.
func (r *Registry) Prepare(txnID int64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	switch r.states[txnID] {
	case TxnAborted:
		return fmt.Errorf("accel: transaction %d is aborted and cannot be prepared", txnID)
	case TxnCommitted:
		return fmt.Errorf("accel: transaction %d is already committed", txnID)
	default:
		r.states[txnID] = TxnPrepared
		return nil
	}
}

// Commit makes the transaction's changes visible to snapshots taken from now
// on by assigning it a commit sequence number.
func (r *Registry) Commit(txnID int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	seq := r.commitLocked(txnID)
	if seq > 0 && r.journal != nil {
		r.journal.LogCommit(txnID, seq)
	}
}

// commitLocked performs the state transition and returns the assigned commit
// sequence (0 when the transaction was already committed). Caller holds r.mu.
func (r *Registry) commitLocked(txnID int64) int64 {
	if r.states[txnID] == TxnCommitted {
		return 0
	}
	r.states[txnID] = TxnCommitted
	seq := r.nextSeq
	r.commitSeq[txnID] = seq
	r.nextSeq++
	return seq
}

// Abort discards the transaction: its row versions stay in storage but are
// never visible.
func (r *Registry) Abort(txnID int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	already := r.states[txnID] == TxnAborted
	r.states[txnID] = TxnAborted
	delete(r.commitSeq, txnID)
	if !already && r.journal != nil {
		r.journal.LogAbort(txnID)
	}
}

// seqOf returns the commit sequence of txnID (0 when not committed).
func (r *Registry) seqOf(txnID int64) int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.commitSeq[txnID]
}

// currentSeq returns the highest commit sequence issued so far.
func (r *Registry) currentSeq() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.nextSeq - 1
}

// Snapshot captures a point-in-time view for one statement of a DB2
// transaction: row versions of transactions committed up to the snapshot
// sequence are visible, plus every version created by the transaction itself
// (committed or not), minus versions the transaction itself deleted.
//
// The committed-transaction map is copied once at snapshot creation so that
// visibility checks during parallel scans are lock-free (the scan slices would
// otherwise serialise on a shared registry lock for every row version).
type Snapshot struct {
	own       int64
	maxSeq    int64
	committed map[int64]int64 // txn id -> commit sequence at snapshot time
}

// Snapshot creates a snapshot for the DB2 transaction own (0 = anonymous
// read-only snapshot with no own changes).
func (r *Registry) Snapshot(own int64) *Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	committed := make(map[int64]int64, len(r.commitSeq))
	for id, seq := range r.commitSeq {
		committed[id] = seq
	}
	return &Snapshot{own: own, maxSeq: r.nextSeq - 1, committed: committed}
}

func (s *Snapshot) committedBefore(txnID int64) bool {
	if txnID == 0 {
		return false
	}
	seq, ok := s.committed[txnID]
	return ok && seq > 0 && seq <= s.maxSeq
}

// Visible implements colstore.Visibility for this snapshot.
func (s *Snapshot) Visible(createdTxn, deletedTxn int64) bool {
	createdVisible := createdTxn == s.own || s.committedBefore(createdTxn)
	if !createdVisible {
		return false
	}
	if deletedTxn == 0 {
		return true
	}
	if deletedTxn == s.own || s.committedBefore(deletedTxn) {
		return false
	}
	return true
}
