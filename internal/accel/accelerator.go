package accel

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"idaax/internal/colstore"
	"idaax/internal/expr"
	"idaax/internal/obs"
	"idaax/internal/sqlparse"
	"idaax/internal/stats"
	"idaax/internal/types"
)

// Accelerator is one attached accelerator instance ("IDAA server" plus its
// Netezza backend in the paper's architecture).
type Accelerator struct {
	name   string
	slices int

	mu      sync.RWMutex
	tables  map[string]*colstore.Table
	journal MemberJournal

	Registry *Registry

	// internalTxn issues transaction ids for work that originates on the
	// accelerator itself (replication applies, loader ingestion) rather than
	// from a DB2 transaction. They are negative so they can never collide with
	// DB2 transaction ids.
	internalTxn int64

	// deleters records transactions that set delete markers on this
	// accelerator, so AbortTxn pays the physical undo sweep only for
	// transactions that actually deleted something.
	deleteMu sync.Mutex
	deleters map[int64]bool

	// vectorizedOff disables the vectorized batch engine (A/B switch; the
	// engine is on by default). Atomic, like the router's planning switch.
	vectorizedOff int64

	queriesRun        int64
	queryErrors       int64
	rowsScanned       int64
	blocksPruned      int64
	rowsIngested      int64
	rowsReturned      int64
	dmlStatements     int64
	vectorizedQueries int64
	vectorizedJoins   int64
	vexecFallbacks    int64
}

// Stats is a snapshot of accelerator activity counters.
type Stats struct {
	QueriesRun int64
	// QueryErrors counts statements that failed on this accelerator (scan or
	// execution errors); the ops watchdog's error-streak rule watches its
	// growth.
	QueryErrors   int64
	RowsScanned   int64
	BlocksPruned  int64
	RowsIngested  int64
	RowsReturned  int64
	DMLStatements int64
	// VectorizedQueries counts statements the vectorized batch engine executed
	// end to end (scan+filter, with or without vectorized aggregation).
	VectorizedQueries int64
	// VectorizedJoins counts the subset of VectorizedQueries that ran a batch
	// hash join (two-table statements executed build/probe over column
	// batches).
	VectorizedJoins int64
	// VexecFallbacks counts in-scope statements (single or two plain tables,
	// engine on) the vectorized engine declined, falling back to the row
	// path — the numerator of the fallback-rate metric.
	VexecFallbacks int64
	Tables         int
	Slices         int
}

// New creates an accelerator with the given number of worker slices
// (the software stand-in for S-blades / snippet processors).
func New(name string, slices int) *Accelerator {
	if slices < 1 {
		slices = runtime.NumCPU()
	}
	return &Accelerator{
		name:     types.NormalizeName(name),
		slices:   slices,
		tables:   make(map[string]*colstore.Table),
		Registry: NewRegistry(),
		deleters: make(map[int64]bool),
	}
}

// Name returns the accelerator's name.
func (a *Accelerator) Name() string { return a.name }

// Slices returns the configured degree of scan parallelism.
func (a *Accelerator) Slices() int { return a.slices }

// Stats returns activity counters.
func (a *Accelerator) Stats() Stats {
	a.mu.RLock()
	tables := len(a.tables)
	a.mu.RUnlock()
	return Stats{
		QueriesRun:        atomic.LoadInt64(&a.queriesRun),
		QueryErrors:       atomic.LoadInt64(&a.queryErrors),
		RowsScanned:       atomic.LoadInt64(&a.rowsScanned),
		BlocksPruned:      atomic.LoadInt64(&a.blocksPruned),
		RowsIngested:      atomic.LoadInt64(&a.rowsIngested),
		RowsReturned:      atomic.LoadInt64(&a.rowsReturned),
		DMLStatements:     atomic.LoadInt64(&a.dmlStatements),
		VectorizedQueries: atomic.LoadInt64(&a.vectorizedQueries),
		VectorizedJoins:   atomic.LoadInt64(&a.vectorizedJoins),
		VexecFallbacks:    atomic.LoadInt64(&a.vexecFallbacks),
		Tables:            tables,
		Slices:            a.slices,
	}
}

// SetVectorizedExecution enables or disables the vectorized batch engine
// (enabled by default). With it off, every statement takes the row-at-a-time
// path: ParallelScan materialises rows and the relational operators tree-walk
// them — the A/B baseline bench E13 measures against.
func (a *Accelerator) SetVectorizedExecution(enabled bool) {
	v := int64(1)
	if enabled {
		v = 0
	}
	atomic.StoreInt64(&a.vectorizedOff, v)
}

// VectorizedEnabled reports whether the vectorized batch engine is active.
func (a *Accelerator) VectorizedEnabled() bool { return atomic.LoadInt64(&a.vectorizedOff) == 0 }

// NoteQuery adds one executed statement to the QueriesRun counter. The shard
// router calls it for every member a scatter-gather statement gathers base
// rows from (via ScanVisible, which bypasses Query), so QueriesRun means
// "statements that did work on this shard" under every routing plan.
func (a *Accelerator) NoteQuery() { atomic.AddInt64(&a.queriesRun, 1) }

// NextInternalTxn returns a fresh internal (negative) transaction id and
// registers it as active. Replication and the loader use it for their applies.
func (a *Accelerator) NextInternalTxn() int64 {
	id := atomic.AddInt64(&a.internalTxn, 1)
	txn := -id
	a.Registry.Ensure(txn)
	return txn
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

// CreateTable creates a columnar table on the accelerator. It backs both
// accelerator-only tables and the shadow copies of accelerated DB2 tables.
func (a *Accelerator) CreateTable(name string, schema types.Schema, distKey string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	name = types.NormalizeName(name)
	if _, ok := a.tables[name]; ok {
		return fmt.Errorf("accel: table %s already exists on accelerator %s", name, a.name)
	}
	if key := types.NormalizeName(distKey); key != "" && schema.IndexOf(key) < 0 {
		return fmt.Errorf("accel: distribution key %s is not a column of %s", key, name)
	}
	t := colstore.NewTable(name, schema, distKey)
	if a.journal != nil {
		a.journal.LogCreateTable(name, t.Schema(), t.DistKey())
		t.SetJournal(a.journal)
	}
	a.tables[name] = t
	return nil
}

// DropTable removes a table from the accelerator.
func (a *Accelerator) DropTable(name string) error {
	a.mu.Lock()
	defer a.mu.Unlock()
	name = types.NormalizeName(name)
	if _, ok := a.tables[name]; !ok {
		return fmt.Errorf("accel: table %s does not exist on accelerator %s", name, a.name)
	}
	delete(a.tables, name)
	if a.journal != nil {
		a.journal.LogDropTable(name)
	}
	return nil
}

// HasTable reports whether the table exists on this accelerator.
func (a *Accelerator) HasTable(name string) bool {
	a.mu.RLock()
	defer a.mu.RUnlock()
	_, ok := a.tables[types.NormalizeName(name)]
	return ok
}

// Table returns the columnar table.
func (a *Accelerator) Table(name string) (*colstore.Table, error) {
	a.mu.RLock()
	defer a.mu.RUnlock()
	t, ok := a.tables[types.NormalizeName(name)]
	if !ok {
		return nil, fmt.Errorf("accel: table %s does not exist on accelerator %s", types.NormalizeName(name), a.name)
	}
	return t, nil
}

// TableNames returns all table names on the accelerator, sorted.
func (a *Accelerator) TableNames() []string {
	a.mu.RLock()
	defer a.mu.RUnlock()
	out := make([]string, 0, len(a.tables))
	for name := range a.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Resources reports the accelerator's storage footprint in per-table,
// per-column detail for the ops plane's resource accounting.
func (a *Accelerator) Resources() obs.StoreResources {
	a.mu.RLock()
	tables := make([]*colstore.Table, 0, len(a.tables))
	for _, t := range a.tables {
		tables = append(tables, t)
	}
	a.mu.RUnlock()
	sort.Slice(tables, func(i, j int) bool { return tables[i].Name() < tables[j].Name() })
	res := obs.StoreResources{Member: a.name}
	for _, t := range tables {
		res.AddTable(t.Resources())
	}
	return res
}

// ---------------------------------------------------------------------------
// Statistics (the planner's input)
// ---------------------------------------------------------------------------

// Analyze rebuilds the planner statistics of a table exactly from the
// committed rows, including equi-depth histograms, and returns the number of
// rows analyzed. It implements ANALYZE TABLE / SYSPROC.ACCEL_ANALYZE for a
// single accelerator.
func (a *Accelerator) Analyze(table string) (int, error) {
	t, err := a.Table(table)
	if err != nil {
		return 0, err
	}
	snap := a.Registry.Snapshot(0)
	return t.Analyze(snap.Visible), nil
}

// TableStatistics returns the current statistics snapshot of a table.
func (a *Accelerator) TableStatistics(table string) (stats.Snapshot, error) {
	t, err := a.Table(table)
	if err != nil {
		return stats.Snapshot{}, err
	}
	return t.Statistics(), nil
}

// ---------------------------------------------------------------------------
// Transaction coordination (called by the federation layer)
// ---------------------------------------------------------------------------

// Prepare is phase one of the commit handshake for a DB2 transaction.
func (a *Accelerator) Prepare(txnID int64) error { return a.Registry.Prepare(txnID) }

// CommitTxn makes a DB2 transaction's accelerator changes durable/visible.
func (a *Accelerator) CommitTxn(txnID int64) {
	a.Registry.Commit(txnID)
	a.deleteMu.Lock()
	delete(a.deleters, txnID)
	a.deleteMu.Unlock()
}

// noteDeleter records that txnID set delete markers (see deleters).
func (a *Accelerator) noteDeleter(txnID int64) {
	a.deleteMu.Lock()
	a.deleters[txnID] = true
	a.deleteMu.Unlock()
}

// AbortTxn discards a DB2 transaction's accelerator changes. Row versions the
// transaction created become permanently invisible through the registry;
// deletion markers it set are physically undone so the victim rows stay
// deletable by later transactions (and movable by the shard rebalancer). The
// undo sweep runs only for transactions that actually deleted something.
func (a *Accelerator) AbortTxn(txnID int64) {
	a.Registry.Abort(txnID)
	a.deleteMu.Lock()
	deleted := a.deleters[txnID]
	delete(a.deleters, txnID)
	a.deleteMu.Unlock()
	if !deleted {
		return
	}
	a.mu.RLock()
	tables := make([]*colstore.Table, 0, len(a.tables))
	for _, t := range a.tables {
		tables = append(tables, t)
	}
	a.mu.RUnlock()
	for _, t := range tables {
		t.UndoDeletesBy(txnID)
	}
}

// ---------------------------------------------------------------------------
// DML (always executed in the context of a DB2 transaction id)
// ---------------------------------------------------------------------------

// Insert appends rows to a table under the DB2 transaction txnID.
func (a *Accelerator) Insert(txnID int64, table string, rows []types.Row) (int, error) {
	t, err := a.Table(table)
	if err != nil {
		return 0, err
	}
	a.Registry.Ensure(txnID)
	n, err := t.Insert(txnID, rows)
	atomic.AddInt64(&a.rowsIngested, int64(n))
	atomic.AddInt64(&a.dmlStatements, 1)
	return n, err
}

// InsertReplicated appends rows mirroring DB2 rows under an internal,
// immediately committed transaction (the replication apply path). Source ids
// that already have a live shadow row are skipped, which makes re-applying a
// CDC batch after a crash (the replicator's applied position is only durable
// as of the last checkpoint) converge instead of duplicating rows.
func (a *Accelerator) InsertReplicated(table string, rows []types.Row, srcIDs []int64) (int, error) {
	t, err := a.Table(table)
	if err != nil {
		return 0, err
	}
	if len(srcIDs) == len(rows) {
		keptRows := rows[:0:0]
		keptIDs := srcIDs[:0:0]
		for i, src := range srcIDs {
			if src >= 0 && t.HasSource(src) {
				continue
			}
			keptRows = append(keptRows, rows[i])
			keptIDs = append(keptIDs, src)
		}
		if len(keptRows) == 0 {
			return 0, nil
		}
		rows, srcIDs = keptRows, keptIDs
	}
	txnID := a.NextInternalTxn()
	n, err := t.InsertWithSource(txnID, rows, srcIDs)
	if err != nil {
		a.Registry.Abort(txnID)
		return n, err
	}
	a.Registry.Commit(txnID)
	atomic.AddInt64(&a.rowsIngested, int64(n))
	return n, nil
}

// ApplyReplicatedDelete removes the shadow row mirroring a DB2 row id.
func (a *Accelerator) ApplyReplicatedDelete(table string, srcID int64) (bool, error) {
	t, err := a.Table(table)
	if err != nil {
		return false, err
	}
	txnID := a.NextInternalTxn()
	ok := t.DeleteBySource(txnID, srcID)
	a.Registry.Commit(txnID)
	return ok, nil
}

// TruncateReplicated removes all committed rows of a table under an internal,
// immediately committed transaction (the replication full-load/truncate path).
func (a *Accelerator) TruncateReplicated(table string) (int, error) {
	t, err := a.Table(table)
	if err != nil {
		return 0, err
	}
	txnID := a.NextInternalTxn()
	snap := a.Registry.Snapshot(txnID)
	n := t.TruncateVisible(txnID, snap.Visible)
	a.Registry.Commit(txnID)
	return n, nil
}

// ExportRows streams every committed-visible row of a table to fn, together
// with the DB2 source row id mirrored by the row (-1 for native accelerator
// rows). It is the bulk read half of the rebalancer's and re-load tooling's
// data path. Iteration stops at the first error, which is returned.
func (a *Accelerator) ExportRows(table string, fn func(row types.Row, srcID int64) error) error {
	t, err := a.Table(table)
	if err != nil {
		return err
	}
	snap := a.Registry.Snapshot(0)
	created, deleted, srcIDs := t.VersionMeta()
	for i := range created {
		if !snap.Visible(created[i], deleted[i]) {
			continue
		}
		if err := fn(t.ReadRow(i), srcIDs[i]); err != nil {
			return err
		}
	}
	return nil
}

// ImportRows bulk-appends rows under an internal, immediately committed
// transaction — the write half of the bulk data path. srcIDs may be nil (no
// row mirrors a DB2 row) or align with rows, with -1 marking native rows.
func (a *Accelerator) ImportRows(table string, rows []types.Row, srcIDs []int64) (int, error) {
	t, err := a.Table(table)
	if err != nil {
		return 0, err
	}
	txnID := a.NextInternalTxn()
	var n int
	if srcIDs == nil {
		n, err = t.Insert(txnID, rows)
	} else {
		n, err = t.InsertWithSource(txnID, rows, srcIDs)
	}
	if err != nil {
		a.Registry.Abort(txnID)
		return n, err
	}
	a.Registry.Commit(txnID)
	atomic.AddInt64(&a.rowsIngested, int64(n))
	return n, nil
}

// HasReplicatedSource reports whether a live shadow row mirrors the DB2 row id.
func (a *Accelerator) HasReplicatedSource(table string, srcID int64) bool {
	t, err := a.Table(table)
	if err != nil {
		return false
	}
	return t.HasSource(srcID)
}

// ApplyReplicatedUpdate replaces the shadow row mirroring a DB2 row id.
func (a *Accelerator) ApplyReplicatedUpdate(table string, srcID int64, row types.Row) error {
	t, err := a.Table(table)
	if err != nil {
		return err
	}
	txnID := a.NextInternalTxn()
	a.noteDeleter(txnID)
	if err := t.UpdateBySource(txnID, srcID, row); err != nil {
		// AbortTxn (not a bare registry abort) so the delete marker the
		// failed update already set is physically undone.
		a.AbortTxn(txnID)
		return err
	}
	a.CommitTxn(txnID)
	return nil
}

// Update modifies rows matching where under the DB2 transaction txnID using
// delete-and-reinsert versioning. It returns the number of rows updated.
func (a *Accelerator) Update(txnID int64, table string, assignments []sqlparse.Assignment, where sqlparse.Expr) (int, error) {
	t, err := a.Table(table)
	if err != nil {
		return 0, err
	}
	a.Registry.Ensure(txnID)
	atomic.AddInt64(&a.dmlStatements, 1)
	snap := a.Registry.Snapshot(txnID)
	schema := t.Schema()
	env := expr.NewEnv(qualifiedColumns(table, schema))

	type change struct {
		idx    int
		newRow types.Row
	}
	var changes []change
	for _, idx := range t.VisibleIndices(snap.Visible) {
		row := t.ReadRow(idx)
		ok, err := env.EvalBool(where, row)
		if err != nil {
			return 0, err
		}
		if !ok {
			continue
		}
		updated := row.Clone()
		for _, as := range assignments {
			ci := schema.IndexOf(as.Column)
			if ci < 0 {
				return 0, fmt.Errorf("accel: UPDATE references unknown column %s", as.Column)
			}
			v, err := env.Eval(as.Value, row)
			if err != nil {
				return 0, err
			}
			updated[ci] = v
		}
		changes = append(changes, change{idx: idx, newRow: updated})
	}
	if len(changes) > 0 {
		a.noteDeleter(txnID)
	}
	for _, ch := range changes {
		if !t.MarkDeleted(ch.idx, txnID) {
			continue
		}
		if _, err := t.Insert(txnID, []types.Row{ch.newRow}); err != nil {
			return 0, err
		}
	}
	return len(changes), nil
}

// Delete removes rows matching where under the DB2 transaction txnID.
func (a *Accelerator) Delete(txnID int64, table string, where sqlparse.Expr) (int, error) {
	t, err := a.Table(table)
	if err != nil {
		return 0, err
	}
	a.Registry.Ensure(txnID)
	atomic.AddInt64(&a.dmlStatements, 1)
	a.noteDeleter(txnID)
	snap := a.Registry.Snapshot(txnID)
	schema := t.Schema()
	env := expr.NewEnv(qualifiedColumns(table, schema))
	count := 0
	for _, idx := range t.VisibleIndices(snap.Visible) {
		row := t.ReadRow(idx)
		ok := true
		if where != nil {
			ok, err = env.EvalBool(where, row)
			if err != nil {
				return 0, err
			}
		}
		if !ok {
			continue
		}
		if t.MarkDeleted(idx, txnID) {
			count++
		}
	}
	return count, nil
}

// Truncate removes all rows visible to the transaction.
func (a *Accelerator) Truncate(txnID int64, table string) (int, error) {
	t, err := a.Table(table)
	if err != nil {
		return 0, err
	}
	a.Registry.Ensure(txnID)
	atomic.AddInt64(&a.dmlStatements, 1)
	a.noteDeleter(txnID)
	snap := a.Registry.Snapshot(txnID)
	return t.TruncateVisible(txnID, snap.Visible), nil
}

// RowCount returns the number of rows visible to the DB2 transaction (0 for
// an anonymous snapshot of committed data).
func (a *Accelerator) RowCount(txnID int64, table string) (int, error) {
	t, err := a.Table(table)
	if err != nil {
		return 0, err
	}
	snap := a.Registry.Snapshot(txnID)
	return t.VisibleRowCount(snap.Visible), nil
}

func qualifiedColumns(qualifier string, schema types.Schema) []expr.InputColumn {
	cols := make([]expr.InputColumn, len(schema.Columns))
	for i, c := range schema.Columns {
		cols[i] = expr.InputColumn{Qualifier: types.NormalizeName(qualifier), Name: c.Name, Kind: c.Kind}
	}
	return cols
}
