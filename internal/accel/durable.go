package accel

import (
	"sort"
	"sync/atomic"

	"idaax/internal/colstore"
	"idaax/internal/types"
)

// Durability hooks for the accelerator. The registry journals every commit
// and abort, DDL journals create/drop, and every table journals its mutations
// through narrow callbacks (implemented by the federation coordinator on top
// of the durable store); recovery rebuilds members from the manifest image
// plus idempotent WAL replay.

// MemberJournal is the per-member durability sink: table mutations (via the
// embedded colstore.Journal), DDL, and registry transitions.
type MemberJournal interface {
	colstore.Journal
	RegistryJournal
	LogCreateTable(name string, schema types.Schema, distKey string)
	LogDropTable(name string)
}

// SetJournal attaches the member journal to the accelerator, its registry and
// every table (nil detaches everywhere). Attach only when the member is fully
// recovered: replayed mutations must not be re-journaled.
func (a *Accelerator) SetJournal(j MemberJournal) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.journal = j
	var tj colstore.Journal
	var rj RegistryJournal
	if j != nil {
		tj, rj = j, j
	}
	for _, t := range a.tables {
		t.SetJournal(tj)
	}
	a.Registry.SetJournal(rj)
}

// AdoptTable installs a recovered table (replacing any same-name table) and
// attaches the current journal to it.
func (a *Accelerator) AdoptTable(t *colstore.Table) {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.tables[t.Name()] = t
	if a.journal != nil {
		t.SetJournal(a.journal)
	}
}

// DropTableQuiet removes a table without journaling (WAL replay of a drop).
func (a *Accelerator) DropTableQuiet(name string) {
	a.mu.Lock()
	defer a.mu.Unlock()
	delete(a.tables, types.NormalizeName(name))
}

// InternalTxnCount returns the internal-transaction counter for checkpointing.
func (a *Accelerator) InternalTxnCount() int64 { return atomic.LoadInt64(&a.internalTxn) }

// RestoreInternalTxn raises the internal-transaction counter to at least n so
// recovered members never reuse an internal id observed before the crash.
func (a *Accelerator) RestoreInternalTxn(n int64) {
	for {
		cur := atomic.LoadInt64(&a.internalTxn)
		if cur >= n || atomic.CompareAndSwapInt64(&a.internalTxn, cur, n) {
			return
		}
	}
}

// SweepAbortedTxn physically clears delete markers left by a transaction that
// recovery resolved as aborted, across all tables, without journaling (the
// sweep is re-derived deterministically from the same WAL on a repeated
// crash). The registry abort itself is applied separately.
func (a *Accelerator) SweepAbortedTxn(txnID int64) {
	a.mu.RLock()
	tables := make([]*colstore.Table, 0, len(a.tables))
	for _, t := range a.tables {
		tables = append(tables, t)
	}
	a.mu.RUnlock()
	sort.Slice(tables, func(i, j int) bool { return tables[i].Name() < tables[j].Name() })
	for _, t := range tables {
		t.ClearMarksBy(txnID)
	}
}

// RegistryJournal receives registry state transitions. Calls happen under the
// registry lock so the journal order equals the commit order; implementations
// must not call back into the registry.
type RegistryJournal interface {
	LogCommit(txnID, seq int64)
	LogAbort(txnID int64)
}

// SetJournal attaches a journal; nil detaches it.
func (r *Registry) SetJournal(j RegistryJournal) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.journal = j
}

// CommitQuiet commits txnID without journaling and returns its commit
// sequence. The rebalancer uses it to commit one batch hand-over across
// several member registries and journal all of them as a single atomic
// multi-commit record.
func (r *Registry) CommitQuiet(txnID int64) int64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.commitLocked(txnID)
}

// Restore replaces the registry content with a checkpoint image: the
// committed transactions with their sequences and the next sequence number.
func (r *Registry) Restore(committed map[int64]int64, nextSeq int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.states = make(map[int64]TxnState, len(committed))
	r.commitSeq = make(map[int64]int64, len(committed))
	for id, seq := range committed {
		r.states[id] = TxnCommitted
		r.commitSeq[id] = seq
		if seq >= nextSeq {
			nextSeq = seq + 1
		}
	}
	if nextSeq < 1 {
		nextSeq = 1
	}
	r.nextSeq = nextSeq
}

// ApplyCommit replays a journaled commit with its original sequence number.
// Idempotent: re-applying after a checkpoint that already contains the commit
// changes nothing.
func (r *Registry) ApplyCommit(txnID, seq int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.states[txnID] = TxnCommitted
	r.commitSeq[txnID] = seq
	if seq >= r.nextSeq {
		r.nextSeq = seq + 1
	}
}

// ApplyAbort replays a journaled abort.
func (r *Registry) ApplyAbort(txnID int64) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.states[txnID] = TxnAborted
	delete(r.commitSeq, txnID)
}

// UnsettledTxns returns the transactions that are neither committed nor
// aborted — after replay these are the in-doubt transactions recovery must
// resolve against the DB2-side commit evidence.
func (r *Registry) UnsettledTxns() []int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []int64
	for id, st := range r.states {
		if st == TxnActive || st == TxnPrepared {
			out = append(out, id)
		}
	}
	return out
}

// Committed returns a copy of the committed-transaction map and the next
// commit sequence, for checkpointing.
func (r *Registry) Committed() (map[int64]int64, int64) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[int64]int64, len(r.commitSeq))
	for id, seq := range r.commitSeq {
		out[id] = seq
	}
	return out, r.nextSeq
}
