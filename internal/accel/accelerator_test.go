package accel

import (
	"fmt"
	"sync"
	"testing"

	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

func testSchema() types.Schema {
	return types.NewSchema(
		types.Column{Name: "ID", Kind: types.KindInt},
		types.Column{Name: "V", Kind: types.KindFloat},
		types.Column{Name: "TAG", Kind: types.KindString},
	)
}

func newAccel(t *testing.T) *Accelerator {
	t.Helper()
	a := New("TEST1", 4)
	if err := a.CreateTable("T", testSchema(), "ID"); err != nil {
		t.Fatal(err)
	}
	return a
}

func insertRows(t *testing.T, a *Accelerator, txn int64, n int) {
	t.Helper()
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		rows[i] = types.Row{types.NewInt(int64(i)), types.NewFloat(float64(i)), types.NewString(fmt.Sprintf("tag%d", i%3))}
	}
	if _, err := a.Insert(txn, "T", rows); err != nil {
		t.Fatal(err)
	}
}

func selectStmt(t *testing.T, sql string) *sqlparse.SelectStmt {
	t.Helper()
	st, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatal(err)
	}
	return st.(*sqlparse.SelectStmt)
}

func TestDDLAndStats(t *testing.T) {
	a := newAccel(t)
	if !a.HasTable("t") {
		t.Fatal("table should exist (case-insensitive)")
	}
	if err := a.CreateTable("T", testSchema(), ""); err == nil {
		t.Fatal("duplicate create should fail")
	}
	if err := a.DropTable("missing"); err == nil {
		t.Fatal("dropping missing table should fail")
	}
	if got := a.TableNames(); len(got) != 1 || got[0] != "T" {
		t.Fatalf("table names: %v", got)
	}
	if a.Stats().Slices != 4 {
		t.Fatal("slice count lost")
	}
}

func TestQuerySnapshotIsolation(t *testing.T) {
	a := newAccel(t)
	insertRows(t, a, 100, 10)
	a.CommitTxn(100)

	// Uncommitted txn 200 adds rows: only visible to itself.
	insertRows(t, a, 200, 5)
	q := selectStmt(t, "SELECT COUNT(*) FROM t")

	relOwn, err := a.Query(200, q)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := relOwn.Rows[0][0].AsInt(); n != 15 {
		t.Fatalf("own txn sees %d rows, want 15", n)
	}
	relOther, err := a.Query(0, q)
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := relOther.Rows[0][0].AsInt(); n != 10 {
		t.Fatalf("anonymous snapshot sees %d rows, want 10", n)
	}

	// After abort the rows stay invisible to everyone.
	a.AbortTxn(200)
	relAfter, _ := a.Query(0, q)
	if n, _ := relAfter.Rows[0][0].AsInt(); n != 10 {
		t.Fatalf("after abort %d rows, want 10", n)
	}

	// A snapshot taken before a commit does not see that commit (repeatable
	// reads within the statement); a later snapshot does.
	insertRows(t, a, 300, 3)
	a.CommitTxn(300)
	relNew, _ := a.Query(0, q)
	if n, _ := relNew.Rows[0][0].AsInt(); n != 13 {
		t.Fatalf("new snapshot sees %d, want 13", n)
	}
}

func TestUpdateDeleteTruncate(t *testing.T) {
	a := newAccel(t)
	insertRows(t, a, 1, 10)
	a.CommitTxn(1)

	upd, err := sqlparse.Parse("UPDATE t SET v = v + 100 WHERE id < 3")
	if err != nil {
		t.Fatal(err)
	}
	u := upd.(*sqlparse.UpdateStmt)
	n, err := a.Update(2, "T", u.Assignments, u.Where)
	if err != nil || n != 3 {
		t.Fatalf("update: %d, %v", n, err)
	}
	a.CommitTxn(2)
	rel, _ := a.Query(0, selectStmt(t, "SELECT SUM(v) FROM t WHERE id < 3"))
	if s, _ := rel.Rows[0][0].AsFloat(); s != 303 {
		t.Fatalf("sum after update = %v", s)
	}

	del, _ := sqlparse.Parse("DELETE FROM t WHERE id >= 8")
	n, err = a.Delete(3, "T", del.(*sqlparse.DeleteStmt).Where)
	if err != nil || n != 2 {
		t.Fatalf("delete: %d, %v", n, err)
	}
	a.CommitTxn(3)
	if n, _ := a.RowCount(0, "T"); n != 8 {
		t.Fatalf("row count after delete = %d", n)
	}

	cnt, err := a.Truncate(4, "T")
	if err != nil || cnt != 8 {
		t.Fatalf("truncate: %d, %v", cnt, err)
	}
	a.CommitTxn(4)
	if n, _ := a.RowCount(0, "T"); n != 0 {
		t.Fatalf("row count after truncate = %d", n)
	}
}

func TestQueryPushdownAndJoins(t *testing.T) {
	a := newAccel(t)
	insertRows(t, a, 1, 100)
	a.CommitTxn(1)
	if err := a.CreateTable("D", types.NewSchema(
		types.Column{Name: "TAG", Kind: types.KindString},
		types.Column{Name: "WEIGHT", Kind: types.KindFloat},
	), ""); err != nil {
		t.Fatal(err)
	}
	_, _ = a.Insert(2, "D", []types.Row{
		{types.NewString("tag0"), types.NewFloat(1)},
		{types.NewString("tag1"), types.NewFloat(2)},
	})
	a.CommitTxn(2)

	rel, err := a.Query(0, selectStmt(t, "SELECT COUNT(*) FROM t WHERE v >= 50 AND v < 60"))
	if err != nil {
		t.Fatal(err)
	}
	if n, _ := rel.Rows[0][0].AsInt(); n != 10 {
		t.Fatalf("pushdown filter count = %d", n)
	}

	rel, err = a.Query(0, selectStmt(t,
		"SELECT d.tag, COUNT(*) AS n, SUM(t.v * d.weight) AS w FROM t INNER JOIN d ON t.tag = d.tag GROUP BY d.tag ORDER BY d.tag"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 2 {
		t.Fatalf("join groups = %d", len(rel.Rows))
	}

	rel, err = a.Query(0, selectStmt(t, "SELECT x.tag, x.n FROM (SELECT tag, COUNT(*) AS n FROM t GROUP BY tag) AS x WHERE x.n > 30 ORDER BY x.tag"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 3 {
		t.Fatalf("subquery rows = %d", len(rel.Rows))
	}
}

func TestMaterializeQuery(t *testing.T) {
	a := newAccel(t)
	insertRows(t, a, 1, 20)
	a.CommitTxn(1)
	if err := a.CreateTable("OUT", types.NewSchema(
		types.Column{Name: "ID", Kind: types.KindInt},
		types.Column{Name: "DOUBLED", Kind: types.KindFloat},
	), ""); err != nil {
		t.Fatal(err)
	}
	n, err := a.MaterializeQuery(5, "OUT", nil, selectStmt(t, "SELECT id, v * 2 FROM t WHERE id < 5"))
	if err != nil || n != 5 {
		t.Fatalf("materialize: %d, %v", n, err)
	}
	// Own transaction sees it before commit; nobody else does.
	if cnt, _ := a.RowCount(5, "OUT"); cnt != 5 {
		t.Fatalf("own count = %d", cnt)
	}
	if cnt, _ := a.RowCount(0, "OUT"); cnt != 0 {
		t.Fatalf("foreign count = %d", cnt)
	}
	a.CommitTxn(5)
	if cnt, _ := a.RowCount(0, "OUT"); cnt != 5 {
		t.Fatalf("committed count = %d", cnt)
	}
}

func TestReplicatedApplyPaths(t *testing.T) {
	a := newAccel(t)
	rows := []types.Row{
		{types.NewInt(1), types.NewFloat(1), types.NewString("a")},
		{types.NewInt(2), types.NewFloat(2), types.NewString("b")},
	}
	if _, err := a.InsertReplicated("T", rows, []int64{10, 11}); err != nil {
		t.Fatal(err)
	}
	if n, _ := a.RowCount(0, "T"); n != 2 {
		t.Fatalf("replicated rows = %d", n)
	}
	if err := a.ApplyReplicatedUpdate("T", 10, types.Row{types.NewInt(1), types.NewFloat(99), types.NewString("a")}); err != nil {
		t.Fatal(err)
	}
	if ok, _ := a.ApplyReplicatedDelete("T", 11); !ok {
		t.Fatal("replicated delete failed")
	}
	rel, _ := a.Query(0, selectStmt(t, "SELECT v FROM t"))
	if len(rel.Rows) != 1 {
		t.Fatalf("rows after apply = %d", len(rel.Rows))
	}
	if f, _ := rel.Rows[0][0].AsFloat(); f != 99 {
		t.Fatalf("updated value = %v", f)
	}
}

func TestPrepareCommitStateMachine(t *testing.T) {
	r := NewRegistry()
	r.Ensure(7)
	if err := r.Prepare(7); err != nil {
		t.Fatal(err)
	}
	r.Commit(7)
	if err := r.Prepare(7); err == nil {
		t.Fatal("preparing a committed txn should fail")
	}
	r.Abort(8)
	if err := r.Prepare(8); err == nil {
		t.Fatal("preparing an aborted txn should fail")
	}
	if r.State(7) != TxnCommitted || r.State(8) != TxnAborted {
		t.Fatal("states wrong")
	}
	if r.State(999) != TxnAborted {
		t.Fatal("unknown txn should read as aborted")
	}
}

func TestConcurrentInsertsAndQueries(t *testing.T) {
	a := newAccel(t)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			txn := int64(1000 + w)
			rows := make([]types.Row, 50)
			for i := range rows {
				rows[i] = types.Row{types.NewInt(int64(w*100 + i)), types.NewFloat(float64(i)), types.NewString("c")}
			}
			if _, err := a.Insert(txn, "T", rows); err != nil {
				t.Error(err)
				return
			}
			a.CommitTxn(txn)
			if _, err := a.Query(0, selectStmt(t, "SELECT COUNT(*) FROM t")); err != nil {
				t.Error(err)
			}
		}(w)
	}
	wg.Wait()
	if n, _ := a.RowCount(0, "T"); n != 400 {
		t.Fatalf("final count = %d", n)
	}
}

// TestAbortUndoesDeleteMarkers is the regression test for rolled-back
// deletes: before the fix, an aborted transaction's delete markers stayed on
// the row versions forever — reads were correct (aborted deleters are
// invisible) but no later transaction could ever delete those rows again.
func TestAbortUndoesDeleteMarkers(t *testing.T) {
	a := newAccel(t)
	insertRows(t, a, 1, 10)
	a.CommitTxn(1)

	n, err := a.Delete(2, "T", nil)
	if err != nil || n != 10 {
		t.Fatalf("delete marked %d rows, %v", n, err)
	}
	a.AbortTxn(2)

	if got, _ := a.RowCount(0, "T"); got != 10 {
		t.Fatalf("rows visible after aborted delete: %d, want 10", got)
	}
	// The rows must be deletable again by a later transaction.
	n, err = a.Delete(3, "T", nil)
	if err != nil || n != 10 {
		t.Fatalf("re-delete after abort marked %d rows, %v (delete markers not undone)", n, err)
	}
	a.CommitTxn(3)
	if got, _ := a.RowCount(0, "T"); got != 0 {
		t.Fatalf("rows visible after committed re-delete: %d, want 0", got)
	}
}

// TestBulkExportImport covers the Backend bulk data path on one accelerator.
func TestBulkExportImport(t *testing.T) {
	a := newAccel(t)
	rows := []types.Row{
		{types.NewInt(1), types.NewFloat(1), types.NewString("a")},
		{types.NewInt(2), types.NewFloat(2), types.NewString("b")},
		{types.NewInt(3), types.NewFloat(3), types.NewString("c")},
	}
	n, err := a.ImportRows("T", rows, []int64{10, -1, 30})
	if err != nil || n != 3 {
		t.Fatalf("ImportRows = %d, %v", n, err)
	}
	if !a.HasReplicatedSource("T", 10) || a.HasReplicatedSource("T", -1) {
		t.Fatal("source-id index wrong after mixed import")
	}
	var got []int64
	if err := a.ExportRows("T", func(row types.Row, srcID int64) error {
		got = append(got, srcID)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 10 || got[1] != -1 || got[2] != 30 {
		t.Fatalf("exported source ids %v", got)
	}
}
