package accel

import (
	"idaax/internal/obs"
	"idaax/internal/relalg"
	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

// ShardPartition is one shard's slice of a table, handed to the function a
// caller passes to Backend.CallShardLocal. It is the analytics seam of the
// backend surface: a procedure reads the shard's committed-visible rows,
// computes a partial result (sufficient statistics, a locally trained model,
// scored rows) and either returns the partial for merging at the coordinator
// or writes derived rows back to the same shard through WriteLocal — base
// rows are never merged into one coordinator-side relation. Multi-round
// trainers (logistic regression's gradient loop, linear regression's metric
// pass) return the extracted per-shard feature matrix as their "partial" and
// iterate over the retained partitions: in this in-process reproduction that
// is the moral equivalent of shard-resident training state, and it guarantees
// every round sees the same snapshot of the rows — a per-round rescan could
// not. A networked deployment of this seam would pin that state on the shard
// across rounds instead of returning it (see ROADMAP follow-ups).
type ShardPartition struct {
	// Member is the name of the accelerator holding this partition.
	Member string
	// Ordinal is the shard ordinal (0 for a single accelerator).
	Ordinal int
	// Shards is the number of partitions participating in the call.
	Shards int
	// Rows are the table rows visible on this shard under the call's fenced
	// snapshot set.
	Rows *relalg.Relation
	// WriteLocal appends rows to a previously created output table on this
	// same shard, under an internal, immediately committed transaction and
	// without re-partitioning — the write stays where the compute ran. The
	// output table must exist on every member (create it through the same
	// backend first).
	WriteLocal func(table string, rows []types.Row) (int, error)
}

// ShardLocalFunc is the per-shard body of a CallShardLocal invocation. The
// returned partial (nil allowed) is collected in shard order for merging.
type ShardLocalFunc func(p *ShardPartition) (any, error)

// MultiShard is implemented by backends that partition tables over more than
// one member (shard.Router). Analytics procedures use it to decide whether a
// CALL should scatter shard-local or read through the ordinary gather path.
type MultiShard interface {
	// ShardCount is the number of member accelerators.
	ShardCount() int
	// ShardLocalAnalytics reports whether shard-local procedure execution is
	// enabled (it can be turned off to force the gather path for A/B
	// measurement, like SetCostBasedPlanning for queries).
	ShardLocalAnalytics() bool
}

// CallShardLocal implements the Backend analytics seam for a single
// accelerator: the whole table is one partition and fn runs once against it.
// proc labels the call for accounting; a single accelerator ignores it.
func (a *Accelerator) CallShardLocal(txnID int64, table, proc string, fn ShardLocalFunc) ([]any, error) {
	return a.CallShardLocalTraced(txnID, table, proc, nil, fn)
}

// CallShardLocalTraced is CallShardLocal with a trace span: the partition's
// scan and the partial computation nest under sp. sp may be nil.
func (a *Accelerator) CallShardLocalTraced(txnID int64, table, proc string, sp *obs.Span, fn ShardLocalFunc) ([]any, error) {
	t, err := a.Table(table)
	if err != nil {
		return nil, err
	}
	snap := a.Registry.Snapshot(txnID)
	a.NoteQuery()
	psp := sp.Child("partition")
	psp.Label(obs.LabelShard, a.name)
	psp.Label(obs.LabelTable, t.Name())
	rows, err := a.ScanVisibleTraced(snap, table, nil, sqlparse.FromItem{Table: t.Name()}, psp)
	if err != nil {
		psp.Finish()
		return nil, err
	}
	part := &ShardPartition{
		Member: a.name,
		Shards: 1,
		Rows:   relalg.FromTable(t.Name(), t.Schema(), rows),
		WriteLocal: func(out string, rows []types.Row) (int, error) {
			return a.ImportRows(out, rows, nil)
		},
	}
	partial, err := fn(part)
	psp.Finish()
	if err != nil {
		return nil, err
	}
	return []any{partial}, nil
}

// CallShardLocalStream implements the streaming analytics seam for a single
// accelerator: the one partition computes and its partial merges immediately.
func (a *Accelerator) CallShardLocalStream(txnID int64, table, proc string, sp *obs.Span, fn ShardLocalFunc, merge func(ordinal int, partial any) error) error {
	partials, err := a.CallShardLocalTraced(txnID, table, proc, sp, fn)
	if err != nil {
		return err
	}
	return merge(0, partials[0])
}
