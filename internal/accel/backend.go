package accel

import (
	"idaax/internal/obs"
	"idaax/internal/planner"
	"idaax/internal/relalg"
	"idaax/internal/sqlparse"
	"idaax/internal/stats"
	"idaax/internal/types"
)

// Backend is the surface the rest of the system (federation routing, the AOT
// manager, replication, the procedure framework) programs against when it
// talks to "an accelerator". It is implemented by a single *Accelerator and by
// shard.Router, which spreads a table over a fleet of accelerators — callers
// cannot tell the difference, which is what makes the accelerator set a clean
// boundary to scale behind.
type Backend interface {
	// Name returns the backend's pairing name (an accelerator name or the name
	// of a shard group).
	Name() string
	// Slices returns the total scan parallelism of the backend.
	Slices() int
	// Stats returns activity counters, aggregated over all shards for a
	// sharded backend.
	Stats() Stats
	// Resources reports the backend's storage footprint (per-table/per-column
	// bytes, block and zone-map counts) for the ops plane's resource
	// accounting; a sharded backend aggregates over its members (per-member
	// detail stays on shard.Router.FleetResources).
	Resources() obs.StoreResources

	// DDL.
	CreateTable(name string, schema types.Schema, distKey string) error
	DropTable(name string) error
	HasTable(name string) bool
	TableNames() []string

	// Transaction coordination for DB2 transactions (the commit handshake).
	Prepare(txnID int64) error
	CommitTxn(txnID int64)
	AbortTxn(txnID int64)

	// Statistics: ANALYZE TABLE rebuilds exact statistics (returning the rows
	// analyzed), TableStatistics snapshots the current ones (merged across
	// shards for a sharded backend), and Explain plans a SELECT without
	// running it (nil plan for statements with nothing to plan).
	Analyze(table string) (int, error)
	TableStatistics(table string) (stats.Snapshot, error)
	Explain(sel *sqlparse.SelectStmt) (*planner.Plan, error)

	// SetVectorizedExecution toggles the vectorized batch engine (on by
	// default; a sharded backend fans the setting to every member, including
	// ones added later). VectorizedEnabled reports the current state. The
	// switch exists for A/B measurement, like the router's cost-based-planning
	// toggle; both engines return identical results.
	SetVectorizedExecution(enabled bool)
	VectorizedEnabled() bool

	// Query and DML under a DB2 transaction id. QueryTraced is Query with a
	// trace span: the backend attaches its execution tree (plan, per-shard
	// scans, gather/merge) as children of sp, which crosses this seam so a
	// statement's trace nests identically whether the backend is one
	// accelerator or a sharded fleet. Query is QueryTraced with tracing off
	// (a nil span); both return identical results.
	Query(txnID int64, sel *sqlparse.SelectStmt) (*relalg.Relation, error)
	QueryTraced(txnID int64, sel *sqlparse.SelectStmt, sp *obs.Span) (*relalg.Relation, error)
	Insert(txnID int64, table string, rows []types.Row) (int, error)
	Update(txnID int64, table string, assignments []sqlparse.Assignment, where sqlparse.Expr) (int, error)
	Delete(txnID int64, table string, where sqlparse.Expr) (int, error)
	Truncate(txnID int64, table string) (int, error)
	RowCount(txnID int64, table string) (int, error)

	// Replication applies (internal, immediately committed transactions).
	InsertReplicated(table string, rows []types.Row, srcIDs []int64) (int, error)
	ApplyReplicatedDelete(table string, srcID int64) (bool, error)
	ApplyReplicatedUpdate(table string, srcID int64, row types.Row) error
	TruncateReplicated(table string) (int, error)

	// Bulk row movement, the data path of re-load tooling and the shard
	// rebalancer. ExportRows streams every committed-visible row (srcID -1 for
	// rows that mirror no DB2 row; a sharded backend streams shard by shard in
	// shard order). ImportRows appends rows under an internal, immediately
	// committed transaction (a sharded backend partitions them by the table's
	// live distribution map first); srcIDs may be nil or align with rows.
	ExportRows(table string, fn func(row types.Row, srcID int64) error) error
	ImportRows(table string, rows []types.Row, srcIDs []int64) (int, error)

	// CallShardLocal is the analytics seam: it runs fn once per shard holding
	// rows of table — concurrently on a sharded backend, under one fenced
	// snapshot set and the table's migration fence, so every visible row is
	// presented to exactly one invocation even while a rebalance is pending —
	// and returns the partial results in shard order. proc labels the call for
	// the per-procedure counters of a sharded backend ("" is allowed).
	CallShardLocal(txnID int64, table, proc string, fn ShardLocalFunc) ([]any, error)
	// CallShardLocalTraced is CallShardLocal with a trace span: each shard's
	// scan and partial computation nests under sp. CallShardLocal is the
	// untraced (nil span) form.
	CallShardLocalTraced(txnID int64, table, proc string, sp *obs.Span, fn ShardLocalFunc) ([]any, error)
	// CallShardLocalStream is the incremental form of CallShardLocalTraced:
	// partials are not collected into one slice; instead merge runs at the
	// coordinator once per shard, in shard-ordinal order, as soon as that
	// ordinal's partial (and every lower ordinal's) has completed. merge is
	// never invoked concurrently, and a partial is released to the collector
	// right after its merge returns, so the coordinator buffers only partials
	// that finished out of order — not one result set per shard. Ordinal
	// order keeps floating-point merges deterministic across runs. sp may be
	// nil; a merge error aborts the call (remaining shards still drain).
	CallShardLocalStream(txnID int64, table, proc string, sp *obs.Span, fn ShardLocalFunc, merge func(ordinal int, partial any) error) error
}

var _ Backend = (*Accelerator)(nil)
