// Package durable implements the persistence layer under the accelerator
// fleet and the DB2 row engine: a typed WAL record taxonomy, per-column
// segment files written at checkpoint, a manifest tying the checkpoint to a
// WAL position, and the Store orchestrating group commit, checkpointing and
// crash recovery.
//
// The package deliberately does not import internal/accel or internal/db2 —
// those engines journal through narrow callback interfaces and drive replay
// themselves, which keeps the dependency graph acyclic.
package durable

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"idaax/internal/types"
)

// Op enumerates the WAL record types.
type Op uint8

const (
	// OpAccCreate records an accelerator CREATE TABLE (Scope member).
	OpAccCreate Op = 1
	// OpAccDrop records an accelerator DROP TABLE.
	OpAccDrop Op = 2
	// OpAccInsert records a batch append into a colstore table: Base is the
	// row index before the append, Rows/SrcIDs the appended batch, Txn the
	// creating transaction, Seq the table's operation sequence number.
	OpAccInsert Op = 3
	// OpAccMarks records delete marks set on the row indexes Idxs by Txn.
	OpAccMarks Op = 4
	// OpAccUnmarks records delete marks removed from Idxs for Txn.
	OpAccUnmarks Op = 5
	// OpAccCommit records a transaction commit in a member's registry with
	// its visibility sequence.
	OpAccCommit Op = 6
	// OpAccAbort records a transaction abort in a member's registry.
	OpAccAbort Op = 7
	// OpMultiCommit records several registry commits that must become
	// durable atomically (the rebalancer's cross-member batch hand-over).
	OpMultiCommit Op = 8
	// OpDB2Commit records a DB2 transaction commit together with the redo
	// images of every row-store mutation the transaction performed.
	OpDB2Commit Op = 9
	// OpCatalog records a full catalog snapshot (Blob); catalog DDL is rare
	// and last-writer-wins replay keeps the protocol trivially idempotent.
	OpCatalog Op = 10
	// OpChange records one CDC change-log append (Seq, Table, ChangeOp,
	// Base=row id, Rows[0]=image, Txn=capturing transaction).
	OpChange Op = 11
	// OpChangeDiscard records a change-log prune up to Seq for Table.
	OpChangeDiscard Op = 12
	// OpReplState records the replicator's durable applied position for
	// Table (Seq=applied change sequence). Its presence also marks the
	// table's initial full load as complete.
	OpReplState Op = 13
)

// RowOpKind enumerates the DB2 row-store redo operations inside OpDB2Commit.
type RowOpKind uint8

const (
	// RowOpInsert places Row at row id ID.
	RowOpInsert RowOpKind = 1
	// RowOpUpdate overwrites row id ID with Row.
	RowOpUpdate RowOpKind = 2
	// RowOpDelete tombstones row id ID.
	RowOpDelete RowOpKind = 3
	// RowOpTruncate tombstones every row id in IDs.
	RowOpTruncate RowOpKind = 4
)

// RowOp is one redo image of a DB2 row-store mutation.
type RowOp struct {
	Kind  RowOpKind
	Table string
	ID    int64
	Row   types.Row
	IDs   []int64
}

// CommitEntry is one member commit inside an OpMultiCommit record.
type CommitEntry struct {
	Scope string
	Txn   int64
	Seq   int64
}

// Record is the single WAL record shape; Op selects which fields carry
// meaning. A union struct beats an interface hierarchy here: the codec stays
// one function pair, and replay switches on Op exactly once.
type Record struct {
	Op      Op
	Scope   string // accelerator member name; "" addresses the DB2 side
	Table   string
	Txn     int64
	Seq     int64
	Base    int64
	Idxs    []int64
	Rows    []types.Row
	SrcIDs  []int64
	Cols    []types.Column
	DistKey string
	Blob    []byte
	RowOps  []RowOp
	Commits []CommitEntry
	Change  int64 // db2 ChangeOp ordinal for OpChange
	At      int64 // capture time (µs since epoch) for OpChange
}

// ErrCorrupt wraps every decode failure so callers can distinguish damaged
// input from I/O errors.
var ErrCorrupt = errors.New("durable: corrupt record")

// ---------------------------------------------------------------------------
// Encoding
// ---------------------------------------------------------------------------

func appendUvarint(b []byte, v uint64) []byte { return binary.AppendUvarint(b, v) }
func appendVarint(b []byte, v int64) []byte   { return binary.AppendVarint(b, v) }

func appendString(b []byte, s string) []byte {
	b = appendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendBytes(b []byte, p []byte) []byte {
	b = appendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendInt64s(b []byte, vs []int64) []byte {
	b = appendUvarint(b, uint64(len(vs)))
	for _, v := range vs {
		b = appendVarint(b, v)
	}
	return b
}

func appendValue(b []byte, v types.Value) []byte {
	b = append(b, byte(v.Kind))
	switch v.Kind {
	case types.KindInt, types.KindTimestamp:
		b = appendVarint(b, v.Int)
	case types.KindFloat:
		var buf [8]byte
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v.Float))
		b = append(b, buf[:]...)
	case types.KindString:
		b = appendString(b, v.Str)
	case types.KindBool:
		if v.Bool {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

func appendRow(b []byte, r types.Row) []byte {
	b = appendUvarint(b, uint64(len(r)))
	for _, v := range r {
		b = appendValue(b, v)
	}
	return b
}

func appendRows(b []byte, rows []types.Row) []byte {
	b = appendUvarint(b, uint64(len(rows)))
	for _, r := range rows {
		b = appendRow(b, r)
	}
	return b
}

// Encode serialises the record to a WAL payload.
func (r *Record) Encode() []byte {
	b := make([]byte, 0, 64)
	b = append(b, byte(r.Op))
	b = appendString(b, r.Scope)
	b = appendString(b, r.Table)
	b = appendVarint(b, r.Txn)
	b = appendVarint(b, r.Seq)
	b = appendVarint(b, r.Base)
	b = appendInt64s(b, r.Idxs)
	b = appendRows(b, r.Rows)
	b = appendInt64s(b, r.SrcIDs)
	b = appendUvarint(b, uint64(len(r.Cols)))
	for _, c := range r.Cols {
		b = appendString(b, c.Name)
		b = append(b, byte(c.Kind))
		if c.NotNull {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	b = appendString(b, r.DistKey)
	b = appendBytes(b, r.Blob)
	b = appendUvarint(b, uint64(len(r.RowOps)))
	for _, op := range r.RowOps {
		b = append(b, byte(op.Kind))
		b = appendString(b, op.Table)
		b = appendVarint(b, op.ID)
		b = appendRow(b, op.Row)
		b = appendInt64s(b, op.IDs)
	}
	b = appendUvarint(b, uint64(len(r.Commits)))
	for _, c := range r.Commits {
		b = appendString(b, c.Scope)
		b = appendVarint(b, c.Txn)
		b = appendVarint(b, c.Seq)
	}
	b = appendVarint(b, r.Change)
	b = appendVarint(b, r.At)
	return b
}

// ---------------------------------------------------------------------------
// Decoding — every read is bounds-checked and every count is capped against
// the bytes that remain, so corrupt or adversarial input errors out instead
// of panicking or allocating unbounded memory (the fuzz targets hold the
// package to exactly that contract).
// ---------------------------------------------------------------------------

type decoder struct {
	b   []byte
	off int
}

func (d *decoder) remaining() int { return len(d.b) - d.off }

func (d *decoder) byte() (byte, error) {
	if d.remaining() < 1 {
		return 0, ErrCorrupt
	}
	v := d.b[d.off]
	d.off++
	return v, nil
}

func (d *decoder) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b[d.off:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	d.off += n
	return v, nil
}

func (d *decoder) varint() (int64, error) {
	v, n := binary.Varint(d.b[d.off:])
	if n <= 0 {
		return 0, ErrCorrupt
	}
	d.off += n
	return v, nil
}

// count reads a collection length and validates it against the remaining
// bytes assuming each element costs at least minBytes.
func (d *decoder) count(minBytes int) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if minBytes < 1 {
		minBytes = 1
	}
	if v > uint64(d.remaining()/minBytes) {
		return 0, ErrCorrupt
	}
	return int(v), nil
}

func (d *decoder) string() (string, error) {
	n, err := d.count(1)
	if err != nil {
		return "", err
	}
	if d.remaining() < n {
		return "", ErrCorrupt
	}
	s := string(d.b[d.off : d.off+n])
	d.off += n
	return s, nil
}

func (d *decoder) bytes() ([]byte, error) {
	n, err := d.count(1)
	if err != nil {
		return nil, err
	}
	if d.remaining() < n {
		return nil, ErrCorrupt
	}
	p := append([]byte(nil), d.b[d.off:d.off+n]...)
	d.off += n
	return p, nil
}

func (d *decoder) int64s() ([]int64, error) {
	n, err := d.count(1)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]int64, n)
	for i := range out {
		v, err := d.varint()
		if err != nil {
			return nil, err
		}
		out[i] = v
	}
	return out, nil
}

func (d *decoder) value() (types.Value, error) {
	k, err := d.byte()
	if err != nil {
		return types.Value{}, err
	}
	kind := types.Kind(k)
	switch kind {
	case types.KindNull:
		return types.Null(), nil
	case types.KindInt, types.KindTimestamp:
		v, err := d.varint()
		if err != nil {
			return types.Value{}, err
		}
		return types.Value{Kind: kind, Int: v}, nil
	case types.KindFloat:
		if d.remaining() < 8 {
			return types.Value{}, ErrCorrupt
		}
		bits := binary.LittleEndian.Uint64(d.b[d.off : d.off+8])
		d.off += 8
		return types.NewFloat(math.Float64frombits(bits)), nil
	case types.KindString:
		s, err := d.string()
		if err != nil {
			return types.Value{}, err
		}
		return types.NewString(s), nil
	case types.KindBool:
		b, err := d.byte()
		if err != nil {
			return types.Value{}, err
		}
		return types.NewBool(b != 0), nil
	default:
		return types.Value{}, ErrCorrupt
	}
}

func (d *decoder) row() (types.Row, error) {
	n, err := d.count(1)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	r := make(types.Row, n)
	for i := range r {
		v, err := d.value()
		if err != nil {
			return nil, err
		}
		r[i] = v
	}
	return r, nil
}

func (d *decoder) rows() ([]types.Row, error) {
	n, err := d.count(1)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]types.Row, n)
	for i := range out {
		r, err := d.row()
		if err != nil {
			return nil, err
		}
		out[i] = r
	}
	return out, nil
}

// DecodeRecord parses a WAL payload. Any structural damage yields an error
// wrapping ErrCorrupt; it never panics.
func DecodeRecord(payload []byte) (*Record, error) {
	d := &decoder{b: payload}
	r := &Record{}
	op, err := d.byte()
	if err != nil {
		return nil, err
	}
	r.Op = Op(op)
	if r.Op == 0 || r.Op > OpReplState {
		return nil, fmt.Errorf("%w: unknown op %d", ErrCorrupt, op)
	}
	if r.Scope, err = d.string(); err != nil {
		return nil, err
	}
	if r.Table, err = d.string(); err != nil {
		return nil, err
	}
	if r.Txn, err = d.varint(); err != nil {
		return nil, err
	}
	if r.Seq, err = d.varint(); err != nil {
		return nil, err
	}
	if r.Base, err = d.varint(); err != nil {
		return nil, err
	}
	if r.Idxs, err = d.int64s(); err != nil {
		return nil, err
	}
	if r.Rows, err = d.rows(); err != nil {
		return nil, err
	}
	if r.SrcIDs, err = d.int64s(); err != nil {
		return nil, err
	}
	ncols, err := d.count(3)
	if err != nil {
		return nil, err
	}
	if ncols > 0 {
		r.Cols = make([]types.Column, ncols)
		for i := range r.Cols {
			if r.Cols[i].Name, err = d.string(); err != nil {
				return nil, err
			}
			k, err := d.byte()
			if err != nil {
				return nil, err
			}
			r.Cols[i].Kind = types.Kind(k)
			nn, err := d.byte()
			if err != nil {
				return nil, err
			}
			r.Cols[i].NotNull = nn != 0
		}
	}
	if r.DistKey, err = d.string(); err != nil {
		return nil, err
	}
	if r.Blob, err = d.bytes(); err != nil {
		return nil, err
	}
	nops, err := d.count(5)
	if err != nil {
		return nil, err
	}
	if nops > 0 {
		r.RowOps = make([]RowOp, nops)
		for i := range r.RowOps {
			k, err := d.byte()
			if err != nil {
				return nil, err
			}
			r.RowOps[i].Kind = RowOpKind(k)
			if r.RowOps[i].Kind < RowOpInsert || r.RowOps[i].Kind > RowOpTruncate {
				return nil, fmt.Errorf("%w: unknown row op %d", ErrCorrupt, k)
			}
			if r.RowOps[i].Table, err = d.string(); err != nil {
				return nil, err
			}
			if r.RowOps[i].ID, err = d.varint(); err != nil {
				return nil, err
			}
			if r.RowOps[i].Row, err = d.row(); err != nil {
				return nil, err
			}
			if r.RowOps[i].IDs, err = d.int64s(); err != nil {
				return nil, err
			}
		}
	}
	ncommits, err := d.count(3)
	if err != nil {
		return nil, err
	}
	if ncommits > 0 {
		r.Commits = make([]CommitEntry, ncommits)
		for i := range r.Commits {
			if r.Commits[i].Scope, err = d.string(); err != nil {
				return nil, err
			}
			if r.Commits[i].Txn, err = d.varint(); err != nil {
				return nil, err
			}
			if r.Commits[i].Seq, err = d.varint(); err != nil {
				return nil, err
			}
		}
	}
	if r.Change, err = d.varint(); err != nil {
		return nil, err
	}
	if r.At, err = d.varint(); err != nil {
		return nil, err
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, d.remaining())
	}
	return r, nil
}
