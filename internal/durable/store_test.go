package durable

import (
	"reflect"
	"testing"
	"time"

	"idaax/internal/colstore"
	"idaax/internal/rowstore"
	"idaax/internal/testutil/crashfs"
	"idaax/internal/types"
	"idaax/internal/wal"
)

func openStore(t *testing.T, fs *crashfs.FS) *Store {
	t.Helper()
	s, err := Open(fs, "data", Options{Policy: wal.SyncAlways, GroupInterval: time.Millisecond})
	if err != nil {
		t.Fatalf("open store: %v", err)
	}
	return s
}

func captureFrom(colTbl *colstore.Table, rowTbl *rowstore.Table) func() (*CheckpointData, error) {
	return func() (*CheckpointData, error) {
		data := &CheckpointData{
			Scopes:        map[string][]*colstore.TableSnapshot{"m0": {colTbl.Snapshot()}},
			RowTables:     map[string]*rowstore.TableSnapshot{"orders": rowTbl.Snapshot()},
			Catalog:       []byte(`{"v":1}`),
			ChangeNextSeq: 17,
			ReplStates:    map[string]int64{"sales": 16},
			Registries:    map[string]RegistrySnap{"m0": {Committed: map[int64]int64{1: 1, 2: 2}, NextSeq: 3}},
			NextTxn:       9,
			NextInternal:  map[string]int64{"m0": -5},
			RecentCommits: []int64{1, 2},
		}
		return data, nil
	}
}

func TestCheckpointLoadRoundTrip(t *testing.T) {
	fs := crashfs.New()
	s := openStore(t, fs)
	colTbl := buildColTable(t, 120)
	rowTbl := rowstore.NewTable(testSchema())
	for _, r := range testRows(30) {
		rowTbl.Insert(r)
	}

	if err := s.Checkpoint(captureFrom(colTbl, rowTbl)); err != nil {
		t.Fatalf("checkpoint: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	fs.Crash()

	s2 := openStore(t, fs)
	ls, err := s2.Load(4)
	if err != nil {
		t.Fatalf("load: %v", err)
	}
	if ls == nil {
		t.Fatal("load returned nil state despite checkpoint")
	}
	m := ls.Manifest
	if m.Gen != 1 || m.ChangeNextSeq != 17 || m.NextTxn != 9 ||
		m.ReplStates["sales"] != 16 || m.NextInternal["m0"] != -5 ||
		string(m.Catalog) != `{"v":1}` {
		t.Fatalf("manifest fields drifted: %+v", m)
	}
	if reg := m.Registries["m0"]; reg.NextSeq != 3 || reg.Committed[2] != 2 {
		t.Fatalf("registry snapshot drifted: %+v", reg)
	}

	want := colTbl.Snapshot()
	got := ls.Scopes["m0"][0]
	if !reflect.DeepEqual(got, want) {
		t.Fatal("columnar snapshot drifted through checkpoint")
	}
	if !reflect.DeepEqual(ls.RowTables["orders"], rowTbl.Snapshot()) {
		t.Fatal("row snapshot drifted through checkpoint")
	}
	s2.Close()
}

func TestReplayAfterCheckpointSkipsOldRecords(t *testing.T) {
	fs := crashfs.New()
	s := openStore(t, fs)
	s.Log(&Record{Op: OpAccCommit, Scope: "m0", Txn: 1, Seq: 1})
	if err := s.Barrier(); err != nil {
		t.Fatal(err)
	}
	colTbl := buildColTable(t, 10)
	rowTbl := rowstore.NewTable(testSchema())
	if err := s.Checkpoint(captureFrom(colTbl, rowTbl)); err != nil {
		t.Fatal(err)
	}
	if err := s.LogDurable(&Record{Op: OpAccCommit, Scope: "m0", Txn: 2, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	s.Close()
	fs.Crash()

	s2 := openStore(t, fs)
	var seen []int64
	if err := s2.Replay(func(r *Record) error {
		seen = append(seen, r.Txn)
		return nil
	}); err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(seen) != 1 || seen[0] != 2 {
		t.Fatalf("replayed txns %v, want [2] (pre-checkpoint record must be pruned from replay)", seen)
	}
	s2.Close()
}

func TestCrashDuringCheckpointKeepsOldManifest(t *testing.T) {
	for n := int64(1); ; n++ {
		fs := crashfs.New()
		s := openStore(t, fs)
		colTbl := buildColTable(t, 40)
		rowTbl := rowstore.NewTable(testSchema())
		if err := s.Checkpoint(captureFrom(colTbl, rowTbl)); err != nil {
			t.Fatal(err)
		}
		// Grow the table, then crash at the nth fs op of the second checkpoint.
		colTbl.Insert(5, testRows(10))
		fs.Arm(n, crashfs.Fail)
		err := s.Checkpoint(captureFrom(colTbl, rowTbl))
		fired := fs.Fired()
		fs.Crash()
		fs.Disarm()

		s2 := openStore(t, fs)
		ls, lerr := s2.Load(2)
		if lerr != nil {
			t.Fatalf("crash at op %d: load after crash: %v", n, lerr)
		}
		if ls == nil {
			t.Fatalf("crash at op %d: checkpoint lost entirely", n)
		}
		got := len(ls.Scopes["m0"][0].Created)
		if err != nil {
			if got != 40 {
				t.Fatalf("crash at op %d: interrupted checkpoint visible: %d rows, want 40", n, got)
			}
		} else if got != 40 && got != 50 {
			t.Fatalf("crash at op %d: %d rows, want 40 or 50", n, got)
		}
		s2.Close()
		if !fired {
			// The whole second checkpoint ran without reaching op n: done.
			return
		}
	}
}

func TestAutoCheckpointTrigger(t *testing.T) {
	fs := crashfs.New()
	s, err := Open(fs, "data", Options{Policy: wal.SyncNever, CheckpointWALBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	fired := make(chan struct{}, 1)
	s.SetOnFull(func() { fired <- struct{}{} })
	for i := 0; i < 64; i++ {
		s.Log(&Record{Op: OpAccCommit, Scope: "m0", Txn: int64(i), Seq: int64(i)})
	}
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("auto-checkpoint trigger never fired")
	}
	s.Close()
}

func TestLoadRejectsTamperedSegment(t *testing.T) {
	fs := crashfs.New()
	s := openStore(t, fs)
	colTbl := buildColTable(t, 30)
	rowTbl := rowstore.NewTable(testSchema())
	if err := s.Checkpoint(captureFrom(colTbl, rowTbl)); err != nil {
		t.Fatal(err)
	}
	s.Close()

	name := "data/seg/1/m0/SALES/col-0.seg"
	data, err := fs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x40
	h, _ := fs.Create(name)
	h.Write(data)
	h.Sync()
	h.Close()
	fs.SyncDir("data")

	s2 := openStore(t, fs)
	if _, err := s2.Load(2); err == nil {
		t.Fatal("load accepted a tampered column segment")
	}
	s2.Close()
}

func TestFreshStoreLoadsNil(t *testing.T) {
	fs := crashfs.New()
	s := openStore(t, fs)
	ls, err := s.Load(2)
	if err != nil || ls != nil {
		t.Fatalf("fresh store Load = %v, %v; want nil, nil", ls, err)
	}
	if err := s.Replay(func(*Record) error { t.Fatal("replay on fresh store"); return nil }); err != nil {
		t.Fatal(err)
	}
	s.Close()
}

var _ = types.NewInt // keep types import if helpers move
