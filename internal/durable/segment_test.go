package durable

import (
	"reflect"
	"testing"

	"idaax/internal/colstore"
	"idaax/internal/rowstore"
	"idaax/internal/types"
)

func testSchema() types.Schema {
	return types.Schema{Columns: []types.Column{
		{Name: "ID", Kind: types.KindInt, NotNull: true},
		{Name: "PRICE", Kind: types.KindFloat},
		{Name: "REGION", Kind: types.KindString},
		{Name: "ACTIVE", Kind: types.KindBool},
		{Name: "TS", Kind: types.KindTimestamp},
	}}
}

func testRows(n int) []types.Row {
	rows := make([]types.Row, n)
	for i := range rows {
		rows[i] = types.Row{
			types.NewInt(int64(i)),
			types.NewFloat(float64(i) * 1.5),
			types.NewString([]string{"emea", "apac", "amer"}[i%3]),
			types.NewBool(i%2 == 0),
			types.NewTimestampMicros(int64(1717000000000000 + i)),
		}
		if i%7 == 3 {
			rows[i][1] = types.Null()
			rows[i][2] = types.Null()
		}
	}
	return rows
}

func buildColTable(t *testing.T, n int) *colstore.Table {
	t.Helper()
	tbl := colstore.NewTable("sales", testSchema(), "region")
	if _, err := tbl.Insert(1, testRows(n)); err != nil {
		t.Fatalf("insert: %v", err)
	}
	for i := 0; i < n; i += 9 {
		tbl.MarkDeleted(i, 2)
	}
	return tbl
}

func TestColumnarSegmentRoundTrip(t *testing.T) {
	tbl := buildColTable(t, 200)
	snap := tbl.Snapshot()

	meta, err := DecodeTableMeta(EncodeTableMeta(snap))
	if err != nil {
		t.Fatalf("meta round trip: %v", err)
	}
	if meta.Name != snap.Name || meta.DistKey != snap.DistKey || meta.OpSeq != snap.OpSeq {
		t.Fatalf("meta fields drifted: %+v vs %+v", meta, snap)
	}
	if !reflect.DeepEqual(meta.Created, snap.Created) ||
		!reflect.DeepEqual(meta.Deleted, snap.Deleted) ||
		!reflect.DeepEqual(meta.SrcIDs, snap.SrcIDs) {
		t.Fatal("version vectors drifted through meta segment")
	}
	meta.Cols = make([]colstore.ColumnData, len(snap.Cols))
	for i, cd := range snap.Cols {
		got, err := DecodeColumnSegment(EncodeColumnSegment(cd))
		if err != nil {
			t.Fatalf("column %d round trip: %v", i, err)
		}
		if got.Kind != cd.Kind || !reflect.DeepEqual(got.Nulls, cd.Nulls) {
			t.Fatalf("column %d meta drifted", i)
		}
		if len(got.Ints) != len(cd.Ints) || len(got.Floats) != len(cd.Floats) || len(got.Strs) != len(cd.Strs) {
			t.Fatalf("column %d payload length drifted", i)
		}
		meta.Cols[i] = got
	}

	restored := colstore.RestoreTable(meta)
	if restored.OpSeq() != tbl.OpSeq() {
		t.Fatalf("opSeq %d, want %d", restored.OpSeq(), tbl.OpSeq())
	}
	want := tbl.Snapshot()
	got := restored.Snapshot()
	got.OpSeq, want.OpSeq = 0, 0
	if !reflect.DeepEqual(got, want) {
		t.Fatal("restored table snapshot differs from original")
	}
}

func TestSegmentRejectsDamage(t *testing.T) {
	snap := buildColTable(t, 50).Snapshot()
	data := EncodeColumnSegment(snap.Cols[0])
	if _, err := DecodeColumnSegment(data[:5]); err == nil {
		t.Fatal("truncated segment accepted")
	}
	for _, i := range []int{0, 4, 5, len(data) / 2, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[i] ^= 0xff
		if _, err := DecodeColumnSegment(bad); err == nil {
			t.Fatalf("bit flip at %d accepted", i)
		}
	}
	if _, err := DecodeTableMeta(data); err == nil {
		t.Fatal("column segment accepted as table meta")
	}
}

func TestRowSegmentRoundTrip(t *testing.T) {
	tbl := rowstore.NewTable(testSchema())
	for _, r := range testRows(60) {
		if _, err := tbl.Insert(r); err != nil {
			t.Fatalf("insert: %v", err)
		}
	}
	if err := tbl.CreateIndex("region"); err != nil {
		t.Fatalf("index: %v", err)
	}
	for i := 0; i < 60; i += 11 {
		tbl.Delete(rowstore.RowID(i))
	}
	snap := tbl.Snapshot()
	got, err := DecodeRowSegment(EncodeRowSegment(snap))
	if err != nil {
		t.Fatalf("row segment round trip: %v", err)
	}
	if !reflect.DeepEqual(got, snap) {
		t.Fatal("row snapshot drifted through segment")
	}
	restored := rowstore.RestoreTable(got)
	if restored.Live() != tbl.Live() {
		t.Fatalf("live %d, want %d", restored.Live(), tbl.Live())
	}
	if !reflect.DeepEqual(restored.IndexColumns(), []string{"REGION"}) {
		t.Fatalf("indexes %v, want [REGION]", restored.IndexColumns())
	}
}

// FuzzSegmentHeader holds all three segment parsers to the no-panic,
// clean-error contract on arbitrary input.
func FuzzSegmentHeader(f *testing.F) {
	snap := colstore.NewTable("t", testSchema(), "").Snapshot()
	f.Add(EncodeTableMeta(snap))
	big := buildTestColSnapshot()
	f.Add(EncodeTableMeta(big))
	for _, cd := range big.Cols {
		f.Add(EncodeColumnSegment(cd))
	}
	rt := rowstore.NewTable(testSchema())
	for _, r := range testRows(5) {
		rt.Insert(r)
	}
	f.Add(EncodeRowSegment(rt.Snapshot()))
	f.Add([]byte("IDXC"))
	f.Add([]byte{'I', 'D', 'X', 'M', 1, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		if cd, err := DecodeColumnSegment(data); err == nil {
			if len(cd.Nulls) != len(cd.Ints)+len(cd.Floats)+len(cd.Strs) {
				t.Fatal("accepted column segment with inconsistent payload")
			}
		}
		if m, err := DecodeTableMeta(data); err == nil {
			if len(m.Created) != len(m.Deleted) || len(m.Created) != len(m.SrcIDs) {
				t.Fatal("accepted meta segment with inconsistent vectors")
			}
		}
		if rs, err := DecodeRowSegment(data); err == nil {
			if len(rs.Rows) != len(rs.Deleted) {
				t.Fatal("accepted row segment with inconsistent vectors")
			}
		}
	})
}

func buildTestColSnapshot() *colstore.TableSnapshot {
	tbl := colstore.NewTable("sales", testSchema(), "region")
	tbl.Insert(1, testRows(20))
	tbl.MarkDeleted(3, 2)
	return tbl.Snapshot()
}
