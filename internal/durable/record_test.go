package durable

import (
	"errors"
	"reflect"
	"testing"

	"idaax/internal/types"
)

func sampleRecords() []*Record {
	return []*Record{
		{Op: OpAccCreate, Scope: "m0", Table: "sales", DistKey: "region",
			Cols: []types.Column{{Name: "id", Kind: types.KindInt, NotNull: true}, {Name: "region", Kind: types.KindString}}},
		{Op: OpAccInsert, Scope: "m1", Table: "sales", Txn: 7, Seq: 42, Base: 100,
			Rows: []types.Row{
				{types.NewInt(1), types.NewString("emea")},
				{types.NewInt(2), types.Null()},
				{types.NewFloat(3.25), types.NewBool(true)},
				{types.NewTimestampMicros(1717000000000000), types.NewString("")},
			},
			SrcIDs: []int64{10, 11, -1, 12}},
		{Op: OpAccMarks, Scope: "m0", Table: "sales", Txn: 7, Seq: 43, Idxs: []int64{0, 5, 9}},
		{Op: OpAccUnmarks, Scope: "m0", Table: "sales", Txn: 7, Seq: 44, Idxs: []int64{5}},
		{Op: OpAccCommit, Scope: "m0", Txn: 7, Seq: 3},
		{Op: OpAccAbort, Scope: "m2", Txn: 9},
		{Op: OpMultiCommit, Commits: []CommitEntry{{Scope: "m0", Txn: -3, Seq: 4}, {Scope: "m1", Txn: -4, Seq: 9}}},
		{Op: OpDB2Commit, Txn: 12, RowOps: []RowOp{
			{Kind: RowOpInsert, Table: "t", ID: 0, Row: types.Row{types.NewInt(5)}},
			{Kind: RowOpUpdate, Table: "t", ID: 0, Row: types.Row{types.NewInt(6)}},
			{Kind: RowOpDelete, Table: "t", ID: 0},
			{Kind: RowOpTruncate, Table: "u", IDs: []int64{0, 1, 2}},
		}},
		{Op: OpCatalog, Blob: []byte(`{"tables":{}}`)},
		{Op: OpChange, Table: "t", Txn: 12, Seq: 99, Base: 3, Change: 1, At: 1717000000000001,
			Rows: []types.Row{{types.NewInt(5)}}},
		{Op: OpChangeDiscard, Table: "t", Seq: 90},
		{Op: OpReplState, Scope: "m0", Table: "t", Seq: 99},
	}
}

func TestRecordRoundTrip(t *testing.T) {
	for i, rec := range sampleRecords() {
		got, err := DecodeRecord(rec.Encode())
		if err != nil {
			t.Fatalf("record %d (op %d): decode: %v", i, rec.Op, err)
		}
		if !reflect.DeepEqual(got, rec) {
			t.Fatalf("record %d (op %d) round trip:\n got %+v\nwant %+v", i, rec.Op, got, rec)
		}
	}
}

func TestDecodeRejectsDamage(t *testing.T) {
	base := sampleRecords()[1].Encode()
	if _, err := DecodeRecord(nil); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("empty payload: %v", err)
	}
	for cut := 1; cut < len(base); cut++ {
		if _, err := DecodeRecord(base[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes accepted", cut)
		}
	}
	bad := append([]byte(nil), base...)
	bad[0] = 200 // unknown op
	if _, err := DecodeRecord(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("unknown op: %v", err)
	}
	trailing := append(append([]byte(nil), base...), 0xAA)
	if _, err := DecodeRecord(trailing); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("trailing bytes: %v", err)
	}
}

// FuzzRecordDecode holds DecodeRecord to its contract: arbitrary input never
// panics, and every accepted payload re-encodes to something that decodes to
// the same record (no silent field drops).
func FuzzRecordDecode(f *testing.F) {
	for _, rec := range sampleRecords() {
		f.Add(rec.Encode())
	}
	f.Add([]byte{})
	f.Add([]byte{3})
	f.Add([]byte{9, 0, 0, 0, 0, 0, 0, 255})
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, err := DecodeRecord(data)
		if err != nil {
			if rec != nil {
				t.Fatal("non-nil record returned with error")
			}
			return
		}
		again, err := DecodeRecord(rec.Encode())
		if err != nil {
			t.Fatalf("re-decode of accepted record failed: %v", err)
		}
		if !reflect.DeepEqual(rec, again) {
			t.Fatalf("re-encode drifted:\n first %+v\nsecond %+v", rec, again)
		}
	})
}
