package durable

import (
	"fmt"
	"path"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"idaax/internal/colstore"
	"idaax/internal/rowstore"
	"idaax/internal/vfs"
	"idaax/internal/wal"
)

// Store is the durability engine shared by one System: a single WAL carrying
// records for the DB2 front end and every accelerator member (so cross-member
// batch commits are one atomic record), plus checkpoints written as
// per-column segment files under a generation directory and published by an
// atomically replaced manifest.
//
// Directory layout under the store root:
//
//	MANIFEST                          checkpoint commit point
//	wal/wal-<seq>.log                 append-only redo log
//	seg/<gen>/<member>/<table>/       columnar table: meta.seg, col-<i>.seg
//	seg/<gen>/@db2/<table>.rows       DB2 heap table image
type Store struct {
	fs  vfs.FS
	dir string
	log *wal.Log

	ckptMu sync.Mutex // serializes checkpoints

	mu       sync.Mutex
	manifest *Manifest
	replayTo uint64 // newest wal file that predates this process
	closed   bool

	// Auto-checkpoint: when the WAL grows past thresholdBytes since the last
	// checkpoint, onFull fires once (re-armed by the next checkpoint).
	thresholdBytes int64
	bytesAtCkpt    int64
	fullSignaled   atomic.Bool
	onFull         func()

	checkpoints    atomic.Int64
	lastCkptMicros atomic.Int64
}

// Options configures a Store.
type Options struct {
	Policy        wal.Policy
	GroupInterval time.Duration
	// CheckpointWALBytes arms the auto-checkpoint trigger; 0 disables it.
	CheckpointWALBytes int64
}

// DB2Scope is the directory name holding DB2 heap segments (member names
// cannot collide with it: "@" is not an identifier character).
const DB2Scope = "@db2"

func walDir(dir string) string           { return path.Join(dir, "wal") }
func genDir(dir string, g uint64) string { return path.Join(dir, "seg", fmt.Sprintf("%d", g)) }

// Open loads the manifest (if any) and opens a fresh WAL file strictly after
// every existing one — recovery never appends to a possibly-torn file. The
// caller replays with Replay before logging new records.
func Open(fs vfs.FS, dir string, opts Options) (*Store, error) {
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	m, err := ReadManifest(fs, dir)
	if err != nil {
		return nil, err
	}
	seqs, err := wal.Files(fs, walDir(dir))
	if err != nil {
		return nil, err
	}
	var newest uint64
	if len(seqs) > 0 {
		newest = seqs[len(seqs)-1]
	}
	start := newest + 1
	if m != nil && m.WALSeq > start {
		start = m.WALSeq
	}
	if start == 0 {
		start = 1
	}
	log, err := wal.Open(fs, walDir(dir), start, opts.Policy, opts.GroupInterval)
	if err != nil {
		return nil, err
	}
	return &Store{
		fs:             fs,
		dir:            dir,
		log:            log,
		manifest:       m,
		replayTo:       newest,
		thresholdBytes: opts.CheckpointWALBytes,
	}, nil
}

// Manifest returns the checkpoint loaded at Open (nil for a fresh store).
func (s *Store) Manifest() *Manifest {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.manifest
}

// SetOnFull installs the auto-checkpoint trigger callback. It is invoked at
// most once per checkpoint cycle, from a fresh goroutine.
func (s *Store) SetOnFull(fn func()) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.onFull = fn
}

// Replay feeds every decoded record that postdates the manifest to fn, in log
// order. It reads only the wal files that existed before Open created the
// current one, so a torn crash tail is correctly recognised as the end of the
// log.
func (s *Store) Replay(fn func(*Record) error) error {
	s.mu.Lock()
	m, to := s.manifest, s.replayTo
	s.mu.Unlock()
	var from uint64 = 1
	if m != nil {
		from = m.WALSeq
	}
	if to == 0 {
		return nil
	}
	return wal.ReplayRange(s.fs, walDir(s.dir), from, to, func(seq uint64, payload []byte) error {
		rec, err := DecodeRecord(payload)
		if err != nil {
			return fmt.Errorf("wal file %d: %w", seq, err)
		}
		return fn(rec)
	})
}

// Log appends rec without waiting for durability. Write failures poison the
// log and surface at the next Barrier — exactly the guarantee commit needs,
// since no commit is acknowledged before its barrier.
func (s *Store) Log(rec *Record) {
	_ = s.log.Append(rec.Encode(), false)
	s.maybeSignalFull()
}

// LogDurable appends rec and waits for it to reach stable storage per the
// sync policy.
func (s *Store) LogDurable(rec *Record) error {
	err := s.log.Append(rec.Encode(), true)
	s.maybeSignalFull()
	return err
}

// Barrier makes every previously appended record durable (group-shared
// fsync) and reports any latched write failure.
func (s *Store) Barrier() error { return s.log.Sync() }

// CommitBarrier is the barrier commit acknowledgement waits on: a hard fsync
// under the always policy, an error check under grouped/never (whose loss
// window is bounded by the policy, not the commit).
func (s *Store) CommitBarrier() error { return s.log.CommitBarrier() }

func (s *Store) maybeSignalFull() {
	if s.thresholdBytes <= 0 {
		return
	}
	grown := s.log.Stats().Bytes-atomic.LoadInt64(&s.bytesAtCkpt) >= s.thresholdBytes
	if grown && s.fullSignaled.CompareAndSwap(false, true) {
		s.mu.Lock()
		fn := s.onFull
		s.mu.Unlock()
		if fn != nil {
			go fn()
		}
	}
}

// WALStats exposes the underlying log counters.
func (s *Store) WALStats() wal.Stats { return s.log.Stats() }

// Checkpoints returns how many checkpoints this store has completed.
func (s *Store) Checkpoints() int64 { return s.checkpoints.Load() }

// LastCheckpointMicros returns the duration of the last checkpoint.
func (s *Store) LastCheckpointMicros() int64 { return s.lastCkptMicros.Load() }

// CheckpointData is everything a checkpoint captures. The capture callback
// builds it after the WAL has been rotated, so any mutation journaled to the
// old log is already reflected here (per-table op sequence numbers make the
// cut exact) and replay of the new log on top is idempotent.
type CheckpointData struct {
	// Scopes maps accelerator member name to its columnar table snapshots.
	Scopes map[string][]*colstore.TableSnapshot
	// RowTables maps DB2 heap table name to its snapshot.
	RowTables map[string]*rowstore.TableSnapshot

	Catalog       []byte
	Changes       []ChangeSnap
	ChangeNextSeq int64
	ReplStates    map[string]int64
	Registries    map[string]RegistrySnap
	NextTxn       int64
	NextInternal  map[string]int64
	RecentCommits []int64
}

// Checkpoint rotates the WAL, captures state via the callback, writes a new
// segment generation, atomically publishes the manifest, then prunes old WAL
// files and generations. A crash at any point leaves either the old or the
// new checkpoint fully in force. Concurrent calls serialize.
func (s *Store) Checkpoint(capture func() (*CheckpointData, error)) error {
	s.ckptMu.Lock()
	defer s.ckptMu.Unlock()
	start := time.Now()

	newSeq, err := s.log.Rotate()
	if err != nil {
		return err
	}
	data, err := capture()
	if err != nil {
		return err
	}

	s.mu.Lock()
	var gen uint64 = 1
	if s.manifest != nil {
		gen = s.manifest.Gen + 1
	}
	s.mu.Unlock()

	m := &Manifest{
		Gen:           gen,
		WALSeq:        newSeq,
		Catalog:       data.Catalog,
		Tables:        make(map[string][]TableRef),
		Changes:       data.Changes,
		ChangeNextSeq: data.ChangeNextSeq,
		ReplStates:    data.ReplStates,
		Registries:    data.Registries,
		NextTxn:       data.NextTxn,
		NextInternal:  data.NextInternal,
		RecentCommits: data.RecentCommits,
	}

	root := genDir(s.dir, gen)
	var scopes []string
	for scope := range data.Scopes {
		scopes = append(scopes, scope)
	}
	sort.Strings(scopes)
	for _, scope := range scopes {
		snaps := data.Scopes[scope]
		sort.Slice(snaps, func(i, j int) bool { return snaps[i].Name < snaps[j].Name })
		for _, snap := range snaps {
			tdir := path.Join(root, scope, snap.Name)
			if err := s.writeSegFile(path.Join(tdir, "meta.seg"), EncodeTableMeta(snap)); err != nil {
				return err
			}
			for i, cd := range snap.Cols {
				name := path.Join(tdir, fmt.Sprintf("col-%d.seg", i))
				if err := s.writeSegFile(name, EncodeColumnSegment(cd)); err != nil {
					return err
				}
			}
			if err := s.fs.SyncDir(tdir); err != nil {
				return err
			}
			m.Tables[scope] = append(m.Tables[scope], TableRef{Name: snap.Name, Cols: len(snap.Cols)})
		}
		if err := s.fs.SyncDir(path.Join(root, scope)); err != nil {
			return err
		}
	}
	var rowNames []string
	for name := range data.RowTables {
		rowNames = append(rowNames, name)
	}
	sort.Strings(rowNames)
	for _, name := range rowNames {
		p := path.Join(root, DB2Scope, name+".rows")
		if err := s.writeSegFile(p, EncodeRowSegment(data.RowTables[name])); err != nil {
			return err
		}
		m.RowTables = append(m.RowTables, name)
	}
	if len(rowNames) > 0 {
		if err := s.fs.SyncDir(path.Join(root, DB2Scope)); err != nil {
			return err
		}
	}
	for _, d := range []string{root, path.Join(s.dir, "seg")} {
		if err := s.fs.SyncDir(d); err != nil {
			return err
		}
	}

	// Commit point: everything below is garbage collection.
	if err := WriteManifest(s.fs, s.dir, m); err != nil {
		return err
	}

	s.mu.Lock()
	s.manifest = m
	s.mu.Unlock()
	atomic.StoreInt64(&s.bytesAtCkpt, s.log.Stats().Bytes)
	s.fullSignaled.Store(false)
	s.checkpoints.Add(1)
	s.lastCkptMicros.Store(time.Since(start).Microseconds())

	_ = wal.Prune(s.fs, walDir(s.dir), newSeq)
	if names, err := s.fs.ReadDir(path.Join(s.dir, "seg")); err == nil {
		for _, name := range names {
			if name != fmt.Sprintf("%d", gen) {
				_ = s.fs.RemoveAll(path.Join(s.dir, "seg", name))
			}
		}
	}
	return nil
}

func (s *Store) writeSegFile(p string, data []byte) error {
	f, err := s.fs.Create(p)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadedState is the decoded checkpoint image: everything in the manifest
// plus the table snapshots read back from the segment generation.
type LoadedState struct {
	Manifest  *Manifest
	Scopes    map[string][]*colstore.TableSnapshot
	RowTables map[string]*rowstore.TableSnapshot
}

// Load reads the manifest's segment generation back into table snapshots,
// reading up to parallelism tables concurrently. A nil manifest (fresh
// store) yields a nil state.
func (s *Store) Load(parallelism int) (*LoadedState, error) {
	m := s.Manifest()
	if m == nil {
		return nil, nil
	}
	if parallelism < 1 {
		parallelism = 1
	}
	ls := &LoadedState{
		Manifest:  m,
		Scopes:    make(map[string][]*colstore.TableSnapshot),
		RowTables: make(map[string]*rowstore.TableSnapshot),
	}
	root := genDir(s.dir, m.Gen)

	type job struct {
		scope string
		ref   TableRef
		idx   int
		row   string
	}
	var jobs []job
	for scope, refs := range m.Tables {
		ls.Scopes[scope] = make([]*colstore.TableSnapshot, len(refs))
		for i, ref := range refs {
			jobs = append(jobs, job{scope: scope, ref: ref, idx: i})
		}
	}
	for _, name := range m.RowTables {
		jobs = append(jobs, job{row: name})
	}

	var (
		wg       sync.WaitGroup
		errMu    sync.Mutex
		firstErr error
		rowMu    sync.Mutex
	)
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	sem := make(chan struct{}, parallelism)
	for _, j := range jobs {
		wg.Add(1)
		sem <- struct{}{}
		go func(j job) {
			defer func() { <-sem; wg.Done() }()
			if j.row != "" {
				data, err := s.fs.ReadFile(path.Join(root, DB2Scope, j.row+".rows"))
				if err != nil {
					setErr(fmt.Errorf("load %s/%s: %w", DB2Scope, j.row, err))
					return
				}
				snap, err := DecodeRowSegment(data)
				if err != nil {
					setErr(fmt.Errorf("load %s/%s: %w", DB2Scope, j.row, err))
					return
				}
				rowMu.Lock()
				ls.RowTables[j.row] = snap
				rowMu.Unlock()
				return
			}
			snap, err := s.loadColumnarTable(root, j.scope, j.ref)
			if err != nil {
				setErr(fmt.Errorf("load %s/%s: %w", j.scope, j.ref.Name, err))
				return
			}
			ls.Scopes[j.scope][j.idx] = snap
		}(j)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return ls, nil
}

func (s *Store) loadColumnarTable(root, scope string, ref TableRef) (*colstore.TableSnapshot, error) {
	tdir := path.Join(root, scope, ref.Name)
	data, err := s.fs.ReadFile(path.Join(tdir, "meta.seg"))
	if err != nil {
		return nil, err
	}
	snap, err := DecodeTableMeta(data)
	if err != nil {
		return nil, err
	}
	if len(snap.Schema.Columns) != ref.Cols {
		return nil, fmt.Errorf("%w: schema has %d columns, manifest says %d",
			ErrCorrupt, len(snap.Schema.Columns), ref.Cols)
	}
	n := len(snap.Created)
	snap.Cols = make([]colstore.ColumnData, ref.Cols)
	for i := 0; i < ref.Cols; i++ {
		data, err := s.fs.ReadFile(path.Join(tdir, fmt.Sprintf("col-%d.seg", i)))
		if err != nil {
			return nil, err
		}
		cd, err := DecodeColumnSegment(data)
		if err != nil {
			return nil, err
		}
		if len(cd.Nulls) != n {
			return nil, fmt.Errorf("%w: column %d has %d values, meta says %d",
				ErrCorrupt, i, len(cd.Nulls), n)
		}
		snap.Cols[i] = cd
	}
	return snap, nil
}

// Close flushes and closes the WAL. The owning System checkpoints before
// calling Close; the store itself only guarantees log durability.
func (s *Store) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	return s.log.Close()
}
