package durable

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"

	"idaax/internal/colstore"
	"idaax/internal/rowstore"
	"idaax/internal/types"
)

// Segment files are written once at checkpoint and read once at recovery:
//
//	meta.seg   IDXM — per-version bookkeeping of one columnar table
//	col-N.seg  IDXC — one column's payload vector
//	rows.seg   IDXR — one DB2 heap table (rows + tombstones + index defs)
//
// Every file is [4-byte magic][1-byte version][body][4-byte CRC32 of
// everything before it]. Zone maps, bySrc indexes and planner statistics are
// not stored; they are rebuilt on load.

const (
	segVersion = 1
	// segVersionDict marks a column segment whose string payload is stored
	// dictionary-encoded: the distinct strings once (in code order) followed
	// by one uvarint code per row. Plain payloads keep writing version 1, so
	// every pre-dictionary segment on disk still decodes unchanged.
	segVersionDict = 2
)

var (
	magicMeta = [4]byte{'I', 'D', 'X', 'M'}
	magicCol  = [4]byte{'I', 'D', 'X', 'C'}
	magicRows = [4]byte{'I', 'D', 'X', 'R'}
)

func sealSegment(b []byte) []byte {
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(b))
	return append(b, crc[:]...)
}

// openSegment validates magic, version and CRC and returns the body.
func openSegment(data []byte, magic [4]byte) ([]byte, error) {
	body, _, err := openSegmentVer(data, magic, segVersion)
	return body, err
}

// openSegmentVer is openSegment for formats with more than one live version:
// it accepts versions 1..maxVer and reports which one the segment carries.
func openSegmentVer(data []byte, magic [4]byte, maxVer byte) ([]byte, byte, error) {
	if len(data) < 9 {
		return nil, 0, fmt.Errorf("%w: segment of %d bytes", ErrCorrupt, len(data))
	}
	if data[0] != magic[0] || data[1] != magic[1] || data[2] != magic[2] || data[3] != magic[3] {
		return nil, 0, fmt.Errorf("%w: bad segment magic %q", ErrCorrupt, string(data[:4]))
	}
	if data[4] == 0 || data[4] > maxVer {
		return nil, 0, fmt.Errorf("%w: unsupported segment version %d", ErrCorrupt, data[4])
	}
	body := data[:len(data)-4]
	want := binary.LittleEndian.Uint32(data[len(data)-4:])
	if crc32.ChecksumIEEE(body) != want {
		return nil, 0, fmt.Errorf("%w: segment checksum mismatch", ErrCorrupt)
	}
	return body[5:], data[4], nil
}

func appendSchema(b []byte, s types.Schema) []byte {
	b = appendUvarint(b, uint64(len(s.Columns)))
	for _, c := range s.Columns {
		b = appendString(b, c.Name)
		b = append(b, byte(c.Kind))
		if c.NotNull {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	return b
}

func (d *decoder) schema() (types.Schema, error) {
	n, err := d.count(3)
	if err != nil {
		return types.Schema{}, err
	}
	cols := make([]types.Column, n)
	for i := range cols {
		if cols[i].Name, err = d.string(); err != nil {
			return types.Schema{}, err
		}
		k, err := d.byte()
		if err != nil {
			return types.Schema{}, err
		}
		cols[i].Kind = types.Kind(k)
		nn, err := d.byte()
		if err != nil {
			return types.Schema{}, err
		}
		cols[i].NotNull = nn != 0
	}
	return types.Schema{Columns: cols}, nil
}

// ---------------------------------------------------------------------------
// Columnar table meta
// ---------------------------------------------------------------------------

// EncodeTableMeta serialises a columnar table's version bookkeeping.
func EncodeTableMeta(snap *colstore.TableSnapshot) []byte {
	b := append([]byte(nil), magicMeta[:]...)
	b = append(b, segVersion)
	b = appendString(b, snap.Name)
	b = appendString(b, snap.DistKey)
	b = appendSchema(b, snap.Schema)
	b = appendVarint(b, snap.OpSeq)
	b = appendInt64s(b, snap.Created)
	b = appendInt64s(b, snap.Deleted)
	b = appendInt64s(b, snap.SrcIDs)
	return sealSegment(b)
}

// DecodeTableMeta parses a meta.seg file into a snapshot missing its column
// payloads (filled in by DecodeColumnSegment per column).
func DecodeTableMeta(data []byte) (*colstore.TableSnapshot, error) {
	body, err := openSegment(data, magicMeta)
	if err != nil {
		return nil, err
	}
	d := &decoder{b: body}
	snap := &colstore.TableSnapshot{}
	if snap.Name, err = d.string(); err != nil {
		return nil, err
	}
	if snap.DistKey, err = d.string(); err != nil {
		return nil, err
	}
	if snap.Schema, err = d.schema(); err != nil {
		return nil, err
	}
	if snap.OpSeq, err = d.varint(); err != nil {
		return nil, err
	}
	if snap.Created, err = d.int64s(); err != nil {
		return nil, err
	}
	if snap.Deleted, err = d.int64s(); err != nil {
		return nil, err
	}
	if snap.SrcIDs, err = d.int64s(); err != nil {
		return nil, err
	}
	if len(snap.Deleted) != len(snap.Created) || len(snap.SrcIDs) != len(snap.Created) {
		return nil, fmt.Errorf("%w: version vectors disagree (%d/%d/%d)",
			ErrCorrupt, len(snap.Created), len(snap.Deleted), len(snap.SrcIDs))
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in table meta", ErrCorrupt, d.remaining())
	}
	return snap, nil
}

// ---------------------------------------------------------------------------
// Column segments
// ---------------------------------------------------------------------------

// EncodeColumnSegment serialises one column's payload vector. A dictionary-
// encoded string column (Dict/Codes populated) writes a version-2 segment
// that stores each distinct string once plus one small code per row; every
// other payload keeps the version-1 format.
func EncodeColumnSegment(cd colstore.ColumnData) []byte {
	n := len(cd.Nulls)
	dict := cd.Kind == types.KindString && len(cd.Dict) > 0 && len(cd.Codes) == n
	b := append([]byte(nil), magicCol[:]...)
	if dict {
		b = append(b, segVersionDict)
	} else {
		b = append(b, segVersion)
	}
	b = append(b, byte(cd.Kind))
	b = appendUvarint(b, uint64(n))
	for _, isNull := range cd.Nulls {
		if isNull {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
	}
	switch {
	case dict:
		b = appendUvarint(b, uint64(len(cd.Dict)))
		for _, s := range cd.Dict {
			b = appendString(b, s)
		}
		for _, code := range cd.Codes {
			b = appendUvarint(b, uint64(code))
		}
	case cd.Kind == types.KindInt, cd.Kind == types.KindTimestamp, cd.Kind == types.KindBool:
		for _, v := range cd.Ints {
			b = appendVarint(b, v)
		}
	case cd.Kind == types.KindFloat:
		var buf [8]byte
		for _, v := range cd.Floats {
			binary.LittleEndian.PutUint64(buf[:], math.Float64bits(v))
			b = append(b, buf[:]...)
		}
	default:
		for _, s := range cd.Strs {
			b = appendString(b, s)
		}
	}
	return sealSegment(b)
}

// DecodeColumnSegment parses a col-N.seg file. Corrupt input errors cleanly;
// it never panics (fuzzed).
func DecodeColumnSegment(data []byte) (colstore.ColumnData, error) {
	var cd colstore.ColumnData
	body, ver, err := openSegmentVer(data, magicCol, segVersionDict)
	if err != nil {
		return cd, err
	}
	d := &decoder{b: body}
	k, err := d.byte()
	if err != nil {
		return cd, err
	}
	cd.Kind = types.Kind(k)
	if cd.Kind > types.KindTimestamp {
		return cd, fmt.Errorf("%w: unknown column kind %d", ErrCorrupt, k)
	}
	if ver == segVersionDict && cd.Kind != types.KindString {
		return cd, fmt.Errorf("%w: dictionary segment for non-string kind %d", ErrCorrupt, k)
	}
	n, err := d.count(1)
	if err != nil {
		return cd, err
	}
	cd.Nulls = make([]bool, n)
	for i := range cd.Nulls {
		v, err := d.byte()
		if err != nil {
			return cd, err
		}
		cd.Nulls[i] = v != 0
	}
	if ver == segVersionDict {
		if err := decodeDictPayload(d, &cd, n); err != nil {
			return cd, err
		}
		if d.remaining() != 0 {
			return cd, fmt.Errorf("%w: %d trailing bytes in column segment", ErrCorrupt, d.remaining())
		}
		return cd, nil
	}
	switch cd.Kind {
	case types.KindInt, types.KindTimestamp, types.KindBool:
		cd.Ints = make([]int64, n)
		for i := range cd.Ints {
			if cd.Ints[i], err = d.varint(); err != nil {
				return cd, err
			}
		}
	case types.KindFloat:
		if d.remaining() < 8*n {
			return cd, ErrCorrupt
		}
		cd.Floats = make([]float64, n)
		for i := range cd.Floats {
			cd.Floats[i] = math.Float64frombits(binary.LittleEndian.Uint64(d.b[d.off : d.off+8]))
			d.off += 8
		}
	default:
		cd.Strs = make([]string, n)
		for i := range cd.Strs {
			if cd.Strs[i], err = d.string(); err != nil {
				return cd, err
			}
		}
	}
	if d.remaining() != 0 {
		return cd, fmt.Errorf("%w: %d trailing bytes in column segment", ErrCorrupt, d.remaining())
	}
	return cd, nil
}

// decodeDictPayload parses a version-2 string payload: the dictionary, then
// one code per row. It re-materializes Strs so every ColumnData consumer can
// keep reading raw strings; NULL rows canonicalize to code 0 / "" exactly as
// the live column stores them.
func decodeDictPayload(d *decoder, cd *colstore.ColumnData, n int) error {
	dn, err := d.count(1)
	if err != nil {
		return err
	}
	cd.Dict = make([]string, dn)
	for i := range cd.Dict {
		if cd.Dict[i], err = d.string(); err != nil {
			return err
		}
	}
	cd.Codes = make([]int32, n)
	cd.Strs = make([]string, n)
	for i := 0; i < n; i++ {
		code, err := d.uvarint()
		if err != nil {
			return err
		}
		if cd.Nulls[i] {
			continue
		}
		if code >= uint64(dn) {
			return fmt.Errorf("%w: dictionary code %d out of range (%d entries)", ErrCorrupt, code, dn)
		}
		cd.Codes[i] = int32(code)
		cd.Strs[i] = cd.Dict[code]
	}
	return nil
}

// ---------------------------------------------------------------------------
// DB2 heap segments
// ---------------------------------------------------------------------------

// EncodeRowSegment serialises one DB2 heap table.
func EncodeRowSegment(snap *rowstore.TableSnapshot) []byte {
	b := append([]byte(nil), magicRows[:]...)
	b = append(b, segVersion)
	b = appendSchema(b, snap.Schema)
	b = appendUvarint(b, uint64(len(snap.Rows)))
	for i, row := range snap.Rows {
		if snap.Deleted[i] {
			b = append(b, 1)
		} else {
			b = append(b, 0)
		}
		b = appendRow(b, row)
	}
	b = appendUvarint(b, uint64(len(snap.Indexes)))
	for _, idx := range snap.Indexes {
		b = appendString(b, idx)
	}
	return sealSegment(b)
}

// DecodeRowSegment parses a rows.seg file.
func DecodeRowSegment(data []byte) (*rowstore.TableSnapshot, error) {
	body, err := openSegment(data, magicRows)
	if err != nil {
		return nil, err
	}
	d := &decoder{b: body}
	snap := &rowstore.TableSnapshot{}
	if snap.Schema, err = d.schema(); err != nil {
		return nil, err
	}
	n, err := d.count(2)
	if err != nil {
		return nil, err
	}
	snap.Rows = make([]types.Row, n)
	snap.Deleted = make([]bool, n)
	for i := 0; i < n; i++ {
		del, err := d.byte()
		if err != nil {
			return nil, err
		}
		snap.Deleted[i] = del != 0
		if snap.Rows[i], err = d.row(); err != nil {
			return nil, err
		}
	}
	nidx, err := d.count(1)
	if err != nil {
		return nil, err
	}
	for i := 0; i < nidx; i++ {
		s, err := d.string()
		if err != nil {
			return nil, err
		}
		snap.Indexes = append(snap.Indexes, s)
	}
	if d.remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes in row segment", ErrCorrupt, d.remaining())
	}
	return snap, nil
}
