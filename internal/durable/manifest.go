package durable

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"path"

	"idaax/internal/types"
	"idaax/internal/vfs"
)

// The manifest is the checkpoint's commit point. It names the segment
// generation holding the table images, the WAL sequence replay starts from,
// and every piece of non-table state (catalog, changelog backlog, replication
// cursors, transaction registries) captured at the same instant. It is
// replaced atomically — written to MANIFEST.tmp, fsynced, renamed over
// MANIFEST, directory fsynced — so a crash anywhere during a checkpoint
// leaves the previous manifest (and therefore the previous consistent
// checkpoint) in force.

const manifestName = "MANIFEST"

var magicManifest = [4]byte{'I', 'D', 'X', 'F'}

// TableRef names one columnar table inside a segment generation and the
// number of column files it has.
type TableRef struct {
	Name string `json:"name"`
	Cols int    `json:"cols"`
}

// RegistrySnap is a transaction registry image: the committed transactions
// with their commit sequence numbers, and the next commit sequence.
type RegistrySnap struct {
	Committed map[int64]int64 `json:"committed"`
	NextSeq   int64           `json:"next_seq"`
}

// ChangeSnap is one pending changelog entry (captured because it had not yet
// been applied to the accelerator at checkpoint time).
type ChangeSnap struct {
	Seq   int64     `json:"seq"`
	Table string    `json:"table"`
	Op    int       `json:"op"`
	RowID int64     `json:"row_id"`
	Row   types.Row `json:"row,omitempty"`
	At    int64     `json:"at"`
}

// Manifest ties one checkpoint together. See the package comment above.
type Manifest struct {
	// Gen is the segment generation directory (seg/<gen>) this manifest
	// refers to; generations not named by the live manifest are garbage.
	Gen uint64 `json:"gen"`
	// WALSeq is the first WAL file recovery replays. Records in earlier
	// files are fully reflected in the segments.
	WALSeq uint64 `json:"wal_seq"`
	// Catalog is the full catalog snapshot (JSON), last-writer-wins.
	Catalog []byte `json:"catalog,omitempty"`
	// Tables maps accelerator member name to its columnar tables in seg/<gen>.
	Tables map[string][]TableRef `json:"tables,omitempty"`
	// RowTables lists the DB2 heap tables stored as rows.seg files.
	RowTables []string `json:"row_tables,omitempty"`
	// Changes is the CDC backlog pending at checkpoint; ChangeNextSeq
	// restores the changelog sequence counter.
	Changes       []ChangeSnap `json:"changes,omitempty"`
	ChangeNextSeq int64        `json:"change_next_seq,omitempty"`
	// ReplStates maps replicated table name to the changelog sequence its
	// accelerator copy had applied. Presence marks full load as complete:
	// recovery of a table without an entry redoes the full load.
	ReplStates map[string]int64 `json:"repl_states,omitempty"`
	// Registries maps scope (member name; "" = DB2) to its transaction
	// registry image.
	Registries map[string]RegistrySnap `json:"registries,omitempty"`
	// NextTxn and NextInternal restore transaction id allocators so that
	// recovered systems never reuse an id observed before the crash.
	NextTxn      int64            `json:"next_txn,omitempty"`
	NextInternal map[string]int64 `json:"next_internal,omitempty"`
	// RecentCommits is a bounded ring of the most recently committed
	// transaction ids. In-doubt resolution consults it for commits whose
	// WAL records were pruned by this checkpoint.
	RecentCommits []int64 `json:"recent_commits,omitempty"`
}

// manifestPath is relative to the store root.
func manifestPath() string { return manifestName }

// EncodeManifest frames the manifest as [magic][version][JSON][CRC32].
func EncodeManifest(m *Manifest) ([]byte, error) {
	body, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	b := append([]byte(nil), magicManifest[:]...)
	b = append(b, segVersion)
	b = append(b, body...)
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(b))
	return append(b, crc[:]...), nil
}

// DecodeManifest parses a framed manifest.
func DecodeManifest(data []byte) (*Manifest, error) {
	body, err := openSegment(data, magicManifest)
	if err != nil {
		return nil, err
	}
	m := &Manifest{}
	if err := json.Unmarshal(body, m); err != nil {
		return nil, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
	}
	return m, nil
}

// ReadManifest loads the manifest from dir. A missing manifest (fresh store)
// returns (nil, nil); a present-but-corrupt one is a hard error, because the
// rename protocol guarantees the named file is always complete.
func ReadManifest(fs vfs.FS, dir string) (*Manifest, error) {
	data, err := fs.ReadFile(path.Join(dir, manifestPath()))
	if err != nil {
		return nil, nil
	}
	return DecodeManifest(data)
}

// WriteManifest atomically replaces the manifest in dir.
func WriteManifest(fs vfs.FS, dir string, m *Manifest) error {
	data, err := EncodeManifest(m)
	if err != nil {
		return err
	}
	tmp := path.Join(dir, manifestName+".tmp")
	f, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, path.Join(dir, manifestPath())); err != nil {
		return err
	}
	return fs.SyncDir(dir)
}
