package bench

import (
	"fmt"
	"strings"

	"idaax"
	"idaax/internal/types"
	"idaax/internal/workload"
)

const benchUser = "SYSADM"

// schemaDDL renders a CREATE TABLE column list for a schema.
func schemaDDL(schema types.Schema) string {
	parts := make([]string, len(schema.Columns))
	for i, c := range schema.Columns {
		nn := ""
		if c.NotNull {
			nn = " NOT NULL"
		}
		parts[i] = fmt.Sprintf("%s %s%s", c.Name, c.Kind, nn)
	}
	return strings.Join(parts, ", ")
}

// createTable creates a regular DB2 table (or an AOT when accelerator != "").
func createTable(sys *idaax.System, table string, schema types.Schema, accelerator string) error {
	session := sys.AdminSession()
	ddl := fmt.Sprintf("CREATE TABLE %s (%s)", table, schemaDDL(schema))
	if accelerator != "" {
		ddl += " IN ACCELERATOR " + accelerator
	}
	_, err := session.Exec(ddl)
	return err
}

// fillTable bulk-inserts generated rows.
func fillTable(sys *idaax.System, table string, rows []types.Row) error {
	_, err := sys.Coordinator().BulkInsert(benchUser, table, rows)
	return err
}

// accelerate adds the table to the default accelerator and performs a full
// load (ACCEL_ADD_TABLES + ACCEL_LOAD_TABLES).
func accelerate(sys *idaax.System, table string) error {
	session := sys.AdminSession()
	if _, err := session.Exec(fmt.Sprintf("CALL SYSPROC.ACCEL_ADD_TABLES('IDAA1', '%s')", table)); err != nil {
		return err
	}
	if _, err := session.Exec(fmt.Sprintf("CALL SYSPROC.ACCEL_LOAD_TABLES('IDAA1', '%s')", table)); err != nil {
		return err
	}
	return nil
}

// setupCustomersOrders creates CUSTOMERS and ORDERS in DB2, fills them with
// generated data, and accelerates both with a full load.
func setupCustomersOrders(sys *idaax.System, orderCount int) (customers, orders int, err error) {
	customerCount := orderCount / 10
	if customerCount < 100 {
		customerCount = 100
	}
	if err := createTable(sys, "CUSTOMERS", workload.CustomerSchema(), ""); err != nil {
		return 0, 0, err
	}
	if err := fillTable(sys, "CUSTOMERS", workload.Customers(customerCount, 1)); err != nil {
		return 0, 0, err
	}
	if err := createTable(sys, "ORDERS", workload.OrderSchema(), ""); err != nil {
		return 0, 0, err
	}
	if err := fillTable(sys, "ORDERS", workload.Orders(orderCount, customerCount, 2)); err != nil {
		return 0, 0, err
	}
	if err := accelerate(sys, "CUSTOMERS"); err != nil {
		return 0, 0, err
	}
	if err := accelerate(sys, "ORDERS"); err != nil {
		return 0, 0, err
	}
	return customerCount, orderCount, nil
}

// setupChurn creates the labelled churn table, fills and accelerates it.
func setupChurn(sys *idaax.System, rows int) error {
	if err := createTable(sys, "CHURN", workload.ChurnSchema(), ""); err != nil {
		return err
	}
	if err := fillTable(sys, "CHURN", workload.Churn(rows, 3)); err != nil {
		return err
	}
	return accelerate(sys, "CHURN")
}
