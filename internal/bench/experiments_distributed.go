package bench

import (
	"fmt"
	"time"

	"idaax"
)

// RunE12DistributedAnalytics measures the tentpole of the shard-local
// analytics seam: training and scoring on a hash-distributed table executed
// (a) the pre-seam way — every base row gathered to the coordinator, the
// model computed there — and (b) scattered per shard with partial merging and
// shard-local prediction writes. Both paths produce the same models (the
// differential tests pin that); the experiment reports throughput and, more
// fundamentally, data movement: rows gathered coordinator-side per training
// run, at two data scales on a four-shard fleet.
func RunE12DistributedAnalytics(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E12",
		Title:   "Shard-local train/score (scatter + partial merge) vs coordinator gather",
		Columns: []string{"ROWS", "APPROACH", "TRAIN_MS", "TRAIN_ROWS_PER_SEC", "SCORE_MS", "ROWS_GATHERED", "LOCAL_WRITES", "SPEEDUP"},
	}
	const shards = 4
	slices := scale.Slices
	if slices <= 0 {
		slices = 2
	}
	sizes := []int{scale.ChurnRows, scale.ChurnRows * 4}
	features := "TENURE_MONTHS,MONTHLY_SPEND,SUPPORT_CALLS,LATE_PAYMENTS,DISCOUNT_RATE"

	for si, rows := range sizes {
		for _, distributed := range []bool{false, true} {
			sys, group := newShardedSystem(shards, slices)
			if err := setupShardedChurn(sys, group, rows); err != nil {
				return nil, err
			}
			if err := sys.SetShardLocalAnalytics(group, distributed); err != nil {
				return nil, err
			}
			session := sys.AdminSession()

			before, err := sys.ShardGroupStats(group)
			if err != nil {
				return nil, err
			}
			trainStart := time.Now()
			trainCalls := []string{
				"CALL IDAX.LINEAR_REGRESSION('SHCHURN', 'MONTHLY_SPEND', 'TENURE_MONTHS,SUPPORT_CALLS,LATE_PAYMENTS,DISCOUNT_RATE', 'M_LIN')",
				fmt.Sprintf("CALL IDAX.LOGISTIC_REGRESSION('SHCHURN', 'CHURNED', '%s', 'M_LOG', 60, 0.2)", features),
				fmt.Sprintf("CALL IDAX.NAIVE_BAYES('SHCHURN', 'CHURNED', '%s', 'M_NB')", features),
			}
			for _, call := range trainCalls {
				if _, err := session.Exec(call); err != nil {
					return nil, fmt.Errorf("E12 train (distributed=%v): %w", distributed, err)
				}
			}
			trainElapsed := time.Since(trainStart)

			scoreStart := time.Now()
			if _, err := session.Exec("CALL IDAX.PREDICT('M_LOG', 'SHCHURN', 'CUSTOMER_ID', 'E12_SCORES')"); err != nil {
				return nil, fmt.Errorf("E12 score (distributed=%v): %w", distributed, err)
			}
			scoreElapsed := time.Since(scoreStart)

			after, err := sys.ShardGroupStats(group)
			if err != nil {
				return nil, err
			}
			gathered := after.RowsGathered - before.RowsGathered
			localWrites := after.AnalyticsRowsWrittenLocal - before.AnalyticsRowsWrittenLocal

			approach := "gather to coordinator"
			key := "gather"
			if distributed {
				approach = "shard-local scatter + merge"
				key = "distributed"
			}
			trainRowsPerSec := float64(rows*len(trainCalls)) / trainElapsed.Seconds()
			t.AddRow(itoa(rows), approach, ms(trainElapsed), fmt.Sprintf("%.0f", trainRowsPerSec),
				ms(scoreElapsed), i64(gathered), i64(localWrites), "")

			suffix := fmt.Sprintf("_%s_scale%d", key, si+1)
			t.AddMetric("train_rows_per_sec"+suffix, trainRowsPerSec, true)
			t.AddMetric("rows_gathered"+suffix, float64(gathered), false)
			if distributed {
				t.AddMetric("local_score_writes"+suffix, float64(localWrites), true)
				// Fill the SPEEDUP column of this and the previous (gather) row.
				prev := t.Rows[len(t.Rows)-2]
				cur := t.Rows[len(t.Rows)-1]
				var prevRate float64
				fmt.Sscanf(prev[3], "%f", &prevRate)
				if prevRate > 0 {
					speedup := trainRowsPerSec / prevRate
					prev[7] = "1.0x"
					cur[7] = fmt.Sprintf("%.1fx", speedup)
					t.AddMetric(fmt.Sprintf("train_speedup_scale%d", si+1), speedup, true)
				}
				var prevGathered int64
				fmt.Sscanf(prev[5], "%d", &prevGathered)
				if gathered < prevGathered {
					t.AddNote("%d rows: scatter/merge training+scoring gathered %d rows to the coordinator vs %d on the gather path (%.1f%% of the data movement eliminated); predictions were written shard-local (%d rows).",
						rows, gathered, prevGathered, 100*(1-float64(gathered)/float64(prevGathered)), localWrites)
				}
			}
			sys.Close()
		}
	}
	t.AddNote("Four shards; training runs linear regression (Gram-matrix merge), logistic regression (per-iteration gradient merge) and naive Bayes (class-moment merge); scoring writes predictions on the shard that computed them. Differential tests pin model equality between the two paths.")
	return t, nil
}

// setupShardedChurn creates the labelled churn table hash-distributed over
// the group and fills it through the routed insert path.
func setupShardedChurn(sys *idaax.System, accelerator string, rows int) error {
	session := sys.AdminSession()
	ddl := fmt.Sprintf("CREATE TABLE shchurn (customer_id BIGINT NOT NULL, tenure_months DOUBLE, monthly_spend DOUBLE, support_calls DOUBLE, late_payments DOUBLE, discount_rate DOUBLE, churned BIGINT) IN ACCELERATOR %s DISTRIBUTE BY HASH(customer_id)", accelerator)
	if _, err := session.Exec(ddl); err != nil {
		return err
	}
	const batch = 1000
	for lo := 0; lo < rows; lo += batch {
		hi := lo + batch
		if hi > rows {
			hi = rows
		}
		sql := churnInsertSQL(lo, hi)
		if _, err := session.Exec(sql); err != nil {
			return err
		}
	}
	return nil
}

// churnInsertSQL renders deterministic churn rows [lo, hi).
func churnInsertSQL(lo, hi int) string {
	sb := make([]byte, 0, 64*(hi-lo))
	sb = append(sb, "INSERT INTO shchurn VALUES "...)
	for i := lo; i < hi; i++ {
		if i > lo {
			sb = append(sb, ", "...)
		}
		tenure := float64(1 + i%72)
		spend := 10 + float64(i%290)
		calls := float64(i % 12)
		late := float64(i % 6)
		discount := float64(i%40) / 100
		churned := 0
		if 1.5-0.06*tenure+0.35*calls+0.45*late-3.0*discount-0.004*spend > 0 {
			churned = 1
		}
		sb = append(sb, fmt.Sprintf("(%d, %g, %g, %g, %g, %g, %d)", i, tenure, spend, calls, late, discount, churned)...)
	}
	return string(sb)
}
