package bench

import (
	"fmt"
	"strings"
	"time"

	"idaax"
)

// RunE9ShardedScan measures scan/aggregation throughput as the accelerator
// fleet grows: the same hash-distributed table is loaded into systems with 1,
// 2 and 4 accelerators and the same aggregation query suite runs against
// each. With shards the query fans out, every shard scans only its partition,
// and the coordinator merges partial aggregates — so rows scanned per shard
// drop and throughput rises. A final section demonstrates shard pruning: an
// equality predicate on the distribution key routes the statement to a single
// shard.
func RunE9ShardedScan(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E9",
		Title:   "Sharded scan-aggregation throughput vs shard count (DISTRIBUTE BY HASH)",
		Columns: []string{"SHARDS", "ROWS", "QUERIES", "ELAPSED_MS", "ROWS_PER_SEC", "MAX_ROWS_SCANNED_PER_SHARD", "TWO_PHASE_AGGS", "PRUNED"},
	}
	rows := scale.LoadRows
	queriesPerRound := 8
	slicesPerShard := scale.Slices
	if slicesPerShard <= 0 {
		slicesPerShard = 2
	}

	var baseline time.Duration
	for _, shardCount := range []int{1, 2, 4} {
		sys, accelerator := newShardedSystem(shardCount, slicesPerShard)
		session := sys.AdminSession()
		if err := createShardedOrders(sys, accelerator); err != nil {
			return nil, err
		}
		if err := fillShardedOrders(sys, rows); err != nil {
			return nil, err
		}

		queries := []string{
			"SELECT COUNT(*), SUM(amount), AVG(amount) FROM sharded_orders",
			"SELECT region, COUNT(*), SUM(amount) FROM sharded_orders GROUP BY region",
			"SELECT customer_id, SUM(amount) AS total FROM sharded_orders GROUP BY customer_id HAVING SUM(amount) > 100 ORDER BY total DESC LIMIT 10",
			"SELECT MIN(amount), MAX(amount) FROM sharded_orders WHERE amount > 1",
		}
		start := time.Now()
		ran := 0
		for round := 0; round < queriesPerRound/len(queries)*len(queries); round++ {
			if _, err := session.Query(queries[round%len(queries)]); err != nil {
				return nil, err
			}
			ran++
		}
		elapsed := time.Since(start)
		if shardCount == 1 {
			baseline = elapsed
		}

		// Scan volume and routing decisions come from the per-shard stats API.
		maxScanned := int64(0)
		twoPhase := int64(0)
		pruned := int64(0)
		if shardCount == 1 {
			st, err := sys.AcceleratorStats("")
			if err != nil {
				return nil, err
			}
			maxScanned = st.RowsScanned
		} else {
			st, err := sys.ShardGroupStats(accelerator)
			if err != nil {
				return nil, err
			}
			for _, sh := range st.Shards {
				if sh.RowsScanned > maxScanned {
					maxScanned = sh.RowsScanned
				}
			}
			twoPhase = st.TwoPhaseAggregates
			pruned = st.QueriesPruned
		}

		throughput := float64(rows*ran) / elapsed.Seconds()
		t.AddRow(itoa(shardCount), itoa(rows), itoa(ran), ms(elapsed),
			fmt.Sprintf("%.0f", throughput), i64(maxScanned), i64(twoPhase), i64(pruned))

		// Pruning demonstration on the largest fleet.
		if shardCount == 4 {
			before, err := sys.ShardGroupStats(accelerator)
			if err != nil {
				return nil, err
			}
			if _, err := session.Query("SELECT COUNT(*) FROM sharded_orders WHERE id = 12345"); err != nil {
				return nil, err
			}
			after, err := sys.ShardGroupStats(accelerator)
			if err != nil {
				return nil, err
			}
			shardsTouched := 0
			for i := range after.Shards {
				if after.Shards[i].QueriesRun > before.Shards[i].QueriesRun {
					shardsTouched++
				}
			}
			t.AddNote("shard pruning: equality on the distribution key touched %d of %d shards (QueriesPruned %d -> %d)",
				shardsTouched, shardCount, before.QueriesPruned, after.QueriesPruned)
		}
		sys.Close()
	}
	if baseline > 0 {
		t.AddNote("ELAPSED_MS at 1 shard is the single-accelerator baseline; larger fleets scan %d rows split across shards in parallel and merge partial aggregates at the coordinator.", rows)
	}
	return t, nil
}

// newShardedSystem builds a system with n accelerators; for n == 1 the plain
// single-accelerator configuration is used (the baseline), otherwise the
// implicit SHARDS group spans the fleet. It returns the accelerator name DDL
// should target.
func newShardedSystem(n, slices int) (*idaax.System, string) {
	if n == 1 {
		return idaax.New(idaax.Config{AcceleratorSlices: slices, AnalyticsPublic: true}), "IDAA1"
	}
	accels := make([]idaax.AcceleratorConfig, n)
	for i := range accels {
		accels[i] = idaax.AcceleratorConfig{Name: fmt.Sprintf("IDAA%d", i+1), Slices: slices}
	}
	sys := idaax.New(idaax.Config{Accelerators: accels, AnalyticsPublic: true})
	return sys, "SHARDS"
}

// fillShardedOrders bulk-inserts deterministic order rows through the normal
// INSERT path so the rows flow through the router's partitioner.
func fillShardedOrders(sys *idaax.System, rows int) error {
	session := sys.AdminSession()
	regions := []string{"EU", "US", "APAC", "LATAM"}
	const batch = 2000
	for lo := 0; lo < rows; lo += batch {
		hi := lo + batch
		if hi > rows {
			hi = rows
		}
		var sb strings.Builder
		sb.WriteString("INSERT INTO sharded_orders VALUES ")
		for i := lo; i < hi; i++ {
			if i > lo {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, %g, '%s')", i, i%997, float64(i%400)*0.25, regions[i%len(regions)])
		}
		if _, err := session.Exec(sb.String()); err != nil {
			return err
		}
	}
	return nil
}
