package bench

import (
	"fmt"
	"strings"
	"time"

	"idaax"
	"idaax/internal/colstore"
	"idaax/internal/types"
)

// RunE18JoinDictionary measures the three deep-vectorization paths together:
//
//   - join: the batch hash join vs the row-at-a-time join on a 3-shard
//     co-located layout (both tables DISTRIBUTE BY HASH on the join key), the
//     A/B switch being System.SetVectorizedExecution — the same switch the
//     differential suite in join_test.go uses to pin result equality;
//   - dict: grouped aggregation and an equality predicate over a string
//     column at several cardinalities, with dictionary encoding on (default
//     threshold) vs off (threshold 0). The highest cardinality deliberately
//     overflows the threshold, so its pair documents that a spilled column
//     costs nothing over a never-encoded one;
//   - wire: shard -> coordinator bytes moved by two-phase aggregation, binary
//     frames vs the re-rendered-text estimate, on the accumulator-heavy shape
//     where text ballooning is worst (non-terminating float sums).
func RunE18JoinDictionary(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E18",
		Title:   "Batch hash joins, dictionary encoding and binary shard shipping",
		Columns: []string{"SECTION", "ROWS", "CONFIG", "ELAPSED_MS", "ROWS_PER_SEC", "DETAIL", "RATIO"},
	}
	slices := scale.Slices
	if slices <= 0 {
		slices = 2
	}
	sizes := []int{scale.QueryRows[0], scale.QueryRows[len(scale.QueryRows)-1]}

	if err := runE18Joins(t, scale, sizes, slices); err != nil {
		return nil, err
	}
	if err := runE18Dictionary(t, scale, sizes[len(sizes)-1]); err != nil {
		return nil, err
	}
	if err := runE18Wire(t, sizes[0], slices); err != nil {
		return nil, err
	}
	return t, nil
}

// runE18Joins runs the join A/B at two fact-table scales on a co-located
// 3-shard fleet. Throughput counts fact (probe-side) rows per second.
func runE18Joins(t *Table, scale Scale, sizes []int, slices int) error {
	queries := []struct {
		key string
		sql string
	}{
		{"join_groupby", "SELECT d.code, COUNT(*), SUM(f.v), AVG(f.v) FROM e18_fact f JOIN e18_dim d ON f.gid = d.gid GROUP BY d.code"},
		{"join_select", "SELECT f.id, f.v, d.code FROM e18_fact f JOIN e18_dim d ON f.gid = d.gid WHERE f.v > 200 AND d.w < 37"},
	}
	for si, rows := range sizes {
		sys, accelerator := newShardedSystem(3, slices)
		if err := fillJoinTables(sys, accelerator, rows); err != nil {
			sys.Close()
			return err
		}
		session := sys.AdminSession()
		iters := 60000 / rows
		if iters < 3 {
			iters = 3
		}
		for _, q := range queries {
			var rowRate float64
			for _, vectorized := range []bool{false, true} {
				sys.SetVectorizedExecution(vectorized)
				// Warm-up run, also used to record the result cardinality.
				res, err := session.Query(q.sql)
				if err != nil {
					sys.Close()
					return fmt.Errorf("E18 %s (vectorized=%v): %w", q.key, vectorized, err)
				}
				resultRows := len(res.Rows)
				start := time.Now()
				for i := 0; i < iters; i++ {
					if _, err := session.Query(q.sql); err != nil {
						sys.Close()
						return fmt.Errorf("E18 %s (vectorized=%v): %w", q.key, vectorized, err)
					}
				}
				elapsed := time.Since(start)
				rate := float64(rows*iters) / elapsed.Seconds()

				key := "row"
				if vectorized {
					key = "vec"
				}
				ratio := "1.0x"
				if vectorized && rowRate > 0 {
					ratio = fmt.Sprintf("%.1fx", rate/rowRate)
					t.AddMetric(fmt.Sprintf("%s_speedup_scale%d", q.key, si+1), rate/rowRate, true)
				} else {
					rowRate = rate
				}
				t.AddRow("join", itoa(rows), q.key+"/"+key, ms(elapsed), fmt.Sprintf("%.0f", rate), itoa(resultRows), ratio)
				t.AddMetric(fmt.Sprintf("%s_rows_per_sec_%s_scale%d", q.key, key, si+1), rate, true)
			}
		}
		st, err := sys.ShardGroupStats(accelerator)
		if err != nil {
			sys.Close()
			return err
		}
		t.AddNote("scale %d: colocated_joins=%d, shard-local vectorized joins=%d — the vec rows ran the batch hash join on every shard, the row rows the row-at-a-time join on the same co-located layout.",
			si+1, st.ColocatedJoins, st.Group.VectorizedJoins)
		sys.Close()
	}
	return nil
}

// runE18Dictionary sweeps string-column cardinality with dictionary encoding
// on vs off. The A/B switch is the process-wide append-time threshold, so each
// configuration loads its own system.
func runE18Dictionary(t *Table, scale Scale, rows int) error {
	queries := []struct {
		key string
		sql string
	}{
		{"dict_groupby", "SELECT tag, COUNT(*), SUM(v) FROM e18_dict GROUP BY tag"},
		{"dict_filter", "SELECT COUNT(*) FROM e18_dict WHERE tag = 't-3'"},
	}
	cards := []int{8, 256, 2 * colstore.DefaultDictThreshold}
	iters := 150000 / rows
	if iters < 3 {
		iters = 3
	}
	for _, card := range cards {
		overflowed := card > colstore.DefaultDictThreshold
		rawRates := map[string]float64{}
		for _, threshold := range []int{0, colstore.DefaultDictThreshold} {
			prev := colstore.SetDictThreshold(threshold)
			sys := newSystem(scale)
			sys.SetVectorizedExecution(true)
			err := fillDictTable(sys, rows, card)
			if err == nil {
				session := sys.AdminSession()
				for _, q := range queries {
					if _, err = session.Query(q.sql); err != nil { // warm-up
						break
					}
					start := time.Now()
					for i := 0; i < iters; i++ {
						if _, err = session.Query(q.sql); err != nil {
							break
						}
					}
					if err != nil {
						break
					}
					elapsed := time.Since(start)
					rate := float64(rows*iters) / elapsed.Seconds()

					cfg, ratio := "raw", "1.0x"
					if threshold > 0 {
						cfg = "dict"
						if overflowed {
							cfg = "spilled"
						}
						if base := rawRates[q.key]; base > 0 {
							ratio = fmt.Sprintf("%.1fx", rate/base)
							if !overflowed {
								t.AddMetric(fmt.Sprintf("%s_speedup_card%d", q.key, card), rate/base, true)
							}
						}
						if !overflowed {
							t.AddMetric(fmt.Sprintf("%s_rows_per_sec_card%d", q.key, card), rate, true)
						}
					} else {
						rawRates[q.key] = rate
					}
					t.AddRow("dict", itoa(rows), fmt.Sprintf("%s/card=%d/%s", q.key, card, cfg),
						ms(elapsed), fmt.Sprintf("%.0f", rate), itoa(card), ratio)
				}
			}
			sys.Close()
			colstore.SetDictThreshold(prev)
			if err != nil {
				return fmt.Errorf("E18 dict card=%d threshold=%d: %w", card, threshold, err)
			}
		}
	}
	t.AddNote("dict section: the same queries over the same %d rows, dictionary threshold %d (on) vs 0 (off). card=%d exceeds the threshold, so its column spilled to raw strings — the pair shows a spilled column performs like a never-encoded one.",
		rows, colstore.DefaultDictThreshold, 2*colstore.DefaultDictThreshold)
	return nil
}

// runE18Wire measures shard -> coordinator bytes moved by two-phase grouped
// aggregation: the binary frames actually shipped vs the re-rendered-text
// estimate kept alongside them. The accumulators are non-terminating decimals
// (x = (i+0.1)/3), the shape where text re-encoding balloons to 17-18
// characters per value.
func runE18Wire(t *Table, rows, slices int) error {
	sys, accelerator := newShardedSystem(3, slices)
	defer sys.Close()
	session := sys.AdminSession()
	ddl := fmt.Sprintf("CREATE TABLE e18_wire (k BIGINT NOT NULL, seg VARCHAR(24), x DOUBLE) IN ACCELERATOR %s DISTRIBUTE BY HASH(k)", accelerator)
	if _, err := session.Exec(ddl); err != nil {
		return err
	}
	const batch = 2000
	for lo := 0; lo < rows; lo += batch {
		hi := lo + batch
		if hi > rows {
			hi = rows
		}
		var sb strings.Builder
		sb.WriteString("INSERT INTO e18_wire VALUES ")
		for i := lo; i < hi; i++ {
			if i > lo {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, 'SEGMENT%02d', %.17g)", i, i%24, (float64(i)+0.1)/3)
		}
		if _, err := session.Exec(sb.String()); err != nil {
			return err
		}
	}

	const wireQueries = 10
	start := time.Now()
	for i := 0; i < wireQueries; i++ {
		if _, err := session.Query("SELECT seg, COUNT(*), SUM(x), AVG(x), MIN(x), MAX(x) FROM e18_wire GROUP BY seg"); err != nil {
			return err
		}
	}
	elapsed := time.Since(start)
	st, err := sys.ShardGroupStats(accelerator)
	if err != nil {
		return err
	}
	if st.TwoPhaseFrames == 0 || st.TwoPhaseFrameBytes == 0 || st.TwoPhaseTextBytes == 0 {
		return fmt.Errorf("E18 wire: no two-phase frames recorded (frames=%d frameBytes=%d textBytes=%d)",
			st.TwoPhaseFrames, st.TwoPhaseFrameBytes, st.TwoPhaseTextBytes)
	}
	ratio := float64(st.TwoPhaseTextBytes) / float64(st.TwoPhaseFrameBytes)
	t.AddRow("wire", itoa(rows), "frames", ms(elapsed), "-", i64(st.TwoPhaseFrameBytes)+" B", fmt.Sprintf("%.2fx", ratio))
	t.AddRow("wire", itoa(rows), "text-estimate", "-", "-", i64(st.TwoPhaseTextBytes)+" B", "1.00x")
	t.AddMetric("wire_text_over_frame_ratio", ratio, true)
	t.AddNote("wire section: %d two-phase aggregations shipped %d binary frames (%d B) shard -> coordinator; re-rendering the same partials as text would have moved %d B — frames are the smaller wire format on accumulator-heavy partials.",
		wireQueries, st.TwoPhaseFrames, st.TwoPhaseFrameBytes, st.TwoPhaseTextBytes)
	return nil
}

// fillJoinTables creates and loads the co-located fact/dim pair: both hashed
// on GID so every join in the experiment stays shard-local. The dim CODE
// column holds 24 distinct values, so it is dictionary-encoded at the default
// threshold and the grouped join exercises the dict-code fragment cache.
func fillJoinTables(sys *idaax.System, accelerator string, rows int) error {
	session := sys.AdminSession()
	dims := rows / 50
	if dims < 64 {
		dims = 64
	}
	ddls := []string{
		fmt.Sprintf("CREATE TABLE e18_fact (id BIGINT NOT NULL, gid BIGINT, v DOUBLE) IN ACCELERATOR %s DISTRIBUTE BY HASH(gid)", accelerator),
		fmt.Sprintf("CREATE TABLE e18_dim (gid BIGINT NOT NULL, code VARCHAR(8), w DOUBLE) IN ACCELERATOR %s DISTRIBUTE BY HASH(gid)", accelerator),
	}
	for _, ddl := range ddls {
		if _, err := session.Exec(ddl); err != nil {
			return err
		}
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO e18_dim VALUES ")
	for i := 0; i < dims; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'c-%d', %g)", i, i%24, float64(i%75))
	}
	if _, err := session.Exec(sb.String()); err != nil {
		return err
	}
	const batch = 2000
	for lo := 0; lo < rows; lo += batch {
		hi := lo + batch
		if hi > rows {
			hi = rows
		}
		sb.Reset()
		sb.WriteString("INSERT INTO e18_fact VALUES ")
		for i := lo; i < hi; i++ {
			if i > lo {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, %g)", i, i%dims, float64((i*7)%1000))
		}
		if _, err := session.Exec(sb.String()); err != nil {
			return err
		}
	}
	return nil
}

// fillDictTable creates and bulk-loads the dictionary-sweep table on a plain
// single-accelerator system: TAG takes card distinct values.
func fillDictTable(sys *idaax.System, rows, card int) error {
	session := sys.AdminSession()
	if _, err := session.Exec("CREATE TABLE e18_dict (n BIGINT NOT NULL, tag VARCHAR(12), v DOUBLE) IN ACCELERATOR IDAA1"); err != nil {
		return err
	}
	const batch = 10000
	buf := make([]types.Row, 0, batch)
	for i := 0; i < rows; i++ {
		buf = append(buf, types.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("t-%d", i%card)),
			types.NewFloat(float64((i * 13) % 700)),
		})
		if len(buf) == batch || i == rows-1 {
			if err := fillTable(sys, "E18_DICT", buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	return nil
}
