package bench

import (
	"fmt"
	"strings"
	"time"

	"idaax"
	"idaax/internal/pipeline"
	"idaax/internal/workload"
)

// RunE7Ablation isolates the contribution of each design choice: no offload at
// all, offload without AOTs (the pre-paper product), offload with AOTs, and
// offload with AOTs plus loader-ingested enrichment data.
func RunE7Ablation(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E7",
		Title:   "Ablation of the offload / AOT / loader design choices (pipeline of E1, largest scale)",
		Columns: []string{"CONFIGURATION", "ELAPSED_MS", "ROWS_DB2_TO_ACCEL", "ROWS_ACCEL_TO_DB2", "REPLICATION_ROWS", "OFFLOADED_STMTS", "LOCAL_STMTS"},
	}
	orderCount := scale.PipelineOrders[len(scale.PipelineOrders)-1]

	type config struct {
		name       string
		mode       pipeline.Materialization
		accelerate bool // whether base tables get accelerator copies at all
		enrich     bool // loader-ingested social posts + extra stage
	}
	configs := []config{
		{"A: no offload (everything in DB2)", pipeline.MaterializeDB2, false, false},
		{"B: offload, DB2-materialised stages", pipeline.MaterializeDB2, true, false},
		{"C: offload + accelerator-only stages", pipeline.MaterializeAOT, true, false},
		{"D: offload + AOTs + loader enrichment", pipeline.MaterializeAOT, true, true},
	}

	for _, cfg := range configs {
		sys := newSystem(scale)
		customerCount := orderCount / 10
		if customerCount < 100 {
			customerCount = 100
		}
		if err := createTable(sys, "CUSTOMERS", workload.CustomerSchema(), ""); err != nil {
			return nil, err
		}
		if err := fillTable(sys, "CUSTOMERS", workload.Customers(customerCount, 1)); err != nil {
			return nil, err
		}
		if err := createTable(sys, "ORDERS", workload.OrderSchema(), ""); err != nil {
			return nil, err
		}
		if err := fillTable(sys, "ORDERS", workload.Orders(orderCount, customerCount, 2)); err != nil {
			return nil, err
		}
		if cfg.accelerate {
			if err := accelerate(sys, "CUSTOMERS"); err != nil {
				return nil, err
			}
			if err := accelerate(sys, "ORDERS"); err != nil {
				return nil, err
			}
		}

		session := sys.Coordinator().Session(benchUser)
		if !cfg.accelerate {
			if _, err := session.Exec("SET CURRENT QUERY ACCELERATION = NONE"); err != nil {
				return nil, err
			}
		}
		stages := pipeline.ChurnFeaturePipeline("E7")
		if cfg.enrich {
			if err := createTable(sys, "SOCIAL_POSTS", workload.SocialPostSchema(), "IDAA1"); err != nil {
				return nil, err
			}
			csv := workload.SocialPostsCSV(orderCount/5, customerCount, 17)
			if _, err := sys.Load("SOCIAL_POSTS", strings.NewReader(csv), idaaxLoadOptions()); err != nil {
				return nil, err
			}
			stages = append(stages, pipeline.Stage{
				Name:   "enrich_with_social_sentiment",
				Target: "E7_STG5_ENRICHED",
				Columns: []string{
					"CUSTOMER_ID BIGINT", "TOTAL_AMOUNT DOUBLE", "SPEND_RATIO DOUBLE",
					"POSTS BIGINT", "AVG_SENTIMENT DOUBLE",
				},
				Query: "SELECT f.customer_id, f.total_amount, f.spend_ratio, COUNT(*), AVG(s.sentiment_score) " +
					"FROM E7_STG4_FEATURES f INNER JOIN social_posts s ON f.customer_id = s.customer_id " +
					"GROUP BY f.customer_id, f.total_amount, f.spend_ratio",
			})
		}

		// Configuration A cannot use AOT stages or accelerated reloads: run the
		// plain pipeline against DB2 only (the runner still works because every
		// statement routes to DB2 when acceleration is NONE and no table is
		// accelerated).
		mode := cfg.mode
		runner := pipeline.NewRunner(sys.Coordinator(), session, "IDAA1")
		sys.ResetMetrics()
		start := time.Now()
		var report *pipeline.Report
		var err error
		if cfg.accelerate {
			report, err = runner.Run(stages, mode)
		} else {
			report, err = runnerWithoutReload(runner, stages)
		}
		if err != nil {
			return nil, fmt.Errorf("E7 %s: %w", cfg.name, err)
		}
		metrics := sys.Metrics()
		t.AddRow(cfg.name, ms(time.Since(start)),
			i64(report.RowsMovedToAcc), i64(report.RowsMovedToDB2), i64(report.ReplicationRows),
			i64(metrics.StatementsOffloaded), i64(metrics.StatementsLocal))
	}
	t.AddNote("Configuration A executes every stage on the DB2 row engine; B replicates every intermediate to the accelerator; C keeps intermediates accelerator-only; D additionally joins loader-ingested social posts that never existed in DB2.")
	return t, nil
}

// runnerWithoutReload runs the stages as plain DB2 materialisation without the
// ACCEL_ADD/LOAD round trip (used for the "no accelerator at all" baseline).
func runnerWithoutReload(r *pipeline.Runner, stages []pipeline.Stage) (*pipeline.Report, error) {
	return r.RunLocalOnly(stages)
}

// RunE8Governance verifies that privileges are enforced by DB2 before any
// delegation and measures the cost of the checks.
func RunE8Governance(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E8",
		Title:   "Governance: privilege checks before delegation to the accelerator",
		Columns: []string{"CHECK", "RESULT", "DETAIL"},
	}
	sys := newSystem(scale)
	admin := sys.AdminSession()
	if _, err := admin.Exec("CREATE TABLE gov_aot (id BIGINT, v DOUBLE) IN ACCELERATOR IDAA1"); err != nil {
		return nil, err
	}
	if _, err := admin.Exec("INSERT INTO gov_aot VALUES (1, 1.0), (2, 2.0)"); err != nil {
		return nil, err
	}

	alice := sys.Session("ALICE")
	check := func(name, sql string, wantDenied bool) {
		_, err := alice.Exec(sql)
		denied := err != nil && strings.Contains(err.Error(), "lacks")
		ok := denied == wantDenied
		detail := "allowed"
		if err != nil {
			detail = err.Error()
		}
		t.AddRow(name, passFail(ok), detail)
	}

	check("SELECT on AOT without privilege is rejected", "SELECT * FROM gov_aot", true)
	check("INSERT on AOT without privilege is rejected", "INSERT INTO gov_aot VALUES (3, 3.0)", true)
	check("CALL reading a table the user cannot SELECT is rejected (procedure queries are privilege-checked)",
		"CALL IDAX.SUMMARY('GOV_AOT', 'V')", true)

	if _, err := admin.Exec("GRANT SELECT ON gov_aot TO alice"); err != nil {
		return nil, err
	}
	check("SELECT after GRANT SELECT succeeds", "SELECT COUNT(*) FROM gov_aot", false)
	check("INSERT still rejected after only SELECT was granted", "INSERT INTO gov_aot VALUES (4, 4.0)", true)
	if _, err := admin.Exec("REVOKE SELECT ON gov_aot FROM alice"); err != nil {
		return nil, err
	}
	check("SELECT after REVOKE is rejected again", "SELECT COUNT(*) FROM gov_aot", true)

	// A locked-down system: analytics procedures not public.
	locked := idaax.New(idaax.Config{AnalyticsPublic: false, AcceleratorSlices: scale.Slices})
	ladmin := locked.AdminSession()
	if _, err := ladmin.Exec("CREATE TABLE locked_aot (id BIGINT, v DOUBLE) IN ACCELERATOR IDAA1"); err != nil {
		return nil, err
	}
	if _, err := ladmin.Exec("INSERT INTO locked_aot VALUES (1, 1.0)"); err != nil {
		return nil, err
	}
	if _, err := ladmin.Exec("GRANT SELECT, INSERT ON locked_aot TO bob"); err != nil {
		return nil, err
	}
	bob := locked.Session("BOB")
	_, err := bob.Exec("CALL IDAX.SUMMARY('LOCKED_AOT', 'V')")
	deniedBefore := err != nil
	if _, err := ladmin.Exec("CALL SYSPROC.ACCEL_GRANT_PROCEDURE('IDAX.SUMMARY', 'BOB')"); err != nil {
		return nil, err
	}
	_, err = bob.Exec("CALL IDAX.SUMMARY('LOCKED_AOT', 'V')")
	allowedAfter := err == nil
	t.AddRow("CALL rejected without EXECUTE privilege (non-public registration)", passFail(deniedBefore), "IDAX.SUMMARY before ACCEL_GRANT_PROCEDURE")
	t.AddRow("CALL allowed after ACCEL_GRANT_PROCEDURE", passFail(allowedAfter), "EXECUTE recorded in the DB2 catalog")

	// Overhead of the privilege check on the hot query path.
	if _, err := admin.Exec("GRANT SELECT ON gov_aot TO carol"); err != nil {
		return nil, err
	}
	carol := sys.Session("CAROL")
	n := scale.TxnStatements
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := carol.Query("SELECT COUNT(*) FROM gov_aot"); err != nil {
			return nil, err
		}
	}
	granted := time.Since(start)
	start = time.Now()
	for i := 0; i < n; i++ {
		if _, err := admin.Query("SELECT COUNT(*) FROM gov_aot"); err != nil {
			return nil, err
		}
	}
	implicit := time.Since(start)
	t.AddRow(fmt.Sprintf("privilege-check overhead over %d offloaded queries", n), ms(granted)+" ms (granted user)", ms(implicit)+" ms (implicit admin authority)")
	return t, nil
}

// RunF1Architecture prints the component inventory and traces each data path
// of the architecture figure so the reproduction of Figure 1 is mechanical
// rather than pictorial.
func RunF1Architecture(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "F1",
		Title:   "Architecture components and data paths (textual rendering of Figure 1)",
		Columns: []string{"COMPONENT / PATH", "IMPLEMENTATION", "OBSERVED IN THIS RUN"},
	}
	sys := newSystem(scale)
	admin := sys.AdminSession()

	// Exercise every path once so the "observed" column has real numbers.
	if _, err := admin.Exec("CREATE TABLE f1_db2 (id BIGINT, v DOUBLE)"); err != nil {
		return nil, err
	}
	if _, err := admin.Exec("INSERT INTO f1_db2 VALUES (1, 1.0), (2, 2.0), (3, 3.0)"); err != nil {
		return nil, err
	}
	if err := accelerate(sys, "F1_DB2"); err != nil {
		return nil, err
	}
	if _, err := admin.Exec("CREATE TABLE f1_aot (id BIGINT, v DOUBLE) IN ACCELERATOR IDAA1"); err != nil {
		return nil, err
	}
	if _, err := admin.Exec("INSERT INTO f1_aot SELECT id, v * 10 FROM f1_db2"); err != nil {
		return nil, err
	}
	if _, err := admin.Query("SELECT SUM(v) FROM f1_aot"); err != nil {
		return nil, err
	}
	csv := "ID,V\n10,1.5\n11,2.5\n"
	if _, err := admin.Exec("CREATE TABLE f1_loaded (id BIGINT, v DOUBLE) IN ACCELERATOR IDAA1"); err != nil {
		return nil, err
	}
	if _, err := sys.Load("F1_LOADED", strings.NewReader(csv), idaax.LoadOptions{HasHeader: true, MapByHeader: true}); err != nil {
		return nil, err
	}

	accelStats, err := sys.AcceleratorStats("")
	if err != nil {
		return nil, err
	}
	metrics := sys.Metrics()

	t.AddRow("DB2 for z/OS (host DBMS, owns catalog + privileges)", "internal/db2, internal/catalog, internal/rowstore, internal/txn", fmt.Sprintf("%d tables in catalog", len(sys.Tables())))
	t.AddRow("Accelerator (columnar MPP backend)", "internal/accel, internal/colstore", fmt.Sprintf("%d tables, %d slices, %d queries run", accelStats.Tables, accelStats.Slices, accelStats.QueriesRun))
	t.AddRow("Federation / query offload", "internal/federation", fmt.Sprintf("%d offloaded, %d local statements", metrics.StatementsOffloaded, metrics.StatementsLocal))
	t.AddRow("Path: DB2 table -> accelerator copy (replication / ACCEL_LOAD_TABLES)", "internal/replication", fmt.Sprintf("%d rows copied", metrics.ReplicationRowsCopied))
	t.AddRow("Path: DB2 -> accelerator-only table (INSERT ... SELECT delegation)", "internal/core (AOT manager) + federation routing", fmt.Sprintf("%d rows moved DB2->accelerator", metrics.RowsMovedToAccelerator))
	t.AddRow("Path: external source -> accelerator (IDAA Loader)", "internal/loader", fmt.Sprintf("%d rows ingested on the accelerator", accelStats.RowsIngested))
	t.AddRow("Path: application query -> accelerator (transparent offload)", "federation routing + accel executor", fmt.Sprintf("%d rows returned to client", metrics.RowsReturnedToClient))
	t.AddRow("In-database analytics framework (CALL + governance)", "internal/core (procedure framework) + internal/analytics", fmt.Sprintf("%d registered procedures", len(sys.Procedures())))
	return t, nil
}
