package bench

import (
	"fmt"
	"strings"
	"time"

	"idaax"
	"idaax/internal/pipeline"
	"idaax/internal/workload"
)

// RunE1Pipeline measures the paper's central claim: with accelerator-only
// tables, the intermediate results of a multi-stage transformation pipeline
// never move between DB2 and the accelerator. The baseline materialises every
// stage in DB2 and reloads it into the accelerator before the next stage.
func RunE1Pipeline(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Four-stage feature pipeline (filter -> aggregate -> join -> derive)",
		Columns: []string{
			"ORDERS", "MODE", "ELAPSED_MS", "INTERMEDIATE_ROWS",
			"ROWS_DB2_TO_ACCEL", "ROWS_ACCEL_TO_DB2", "REPLICATION_ROWS", "SPEEDUP",
		},
	}
	for _, orderCount := range scale.PipelineOrders {
		var baselineElapsed time.Duration
		for _, mode := range []pipeline.Materialization{pipeline.MaterializeDB2, pipeline.MaterializeAOT} {
			sys := newSystem(scale)
			if _, _, err := setupCustomersOrders(sys, orderCount); err != nil {
				return nil, err
			}
			session := sys.Coordinator().Session(benchUser)
			runner := pipeline.NewRunner(sys.Coordinator(), session, "IDAA1")
			sys.ResetMetrics()
			report, err := runner.Run(pipeline.ChurnFeaturePipeline("E1"), mode)
			if err != nil {
				return nil, err
			}
			speedup := "1.0x"
			if mode == pipeline.MaterializeDB2 {
				baselineElapsed = report.Elapsed
			} else if report.Elapsed > 0 {
				speedup = ratio(baselineElapsed, report.Elapsed)
			}
			t.AddRow(
				itoa(orderCount),
				mode.String(),
				ms(report.Elapsed),
				itoa(report.TotalRows),
				i64(report.RowsMovedToAcc),
				i64(report.RowsMovedToDB2),
				i64(report.ReplicationRows),
				speedup,
			)
		}
	}
	t.AddNote("ROWS_DB2_TO_ACCEL counts statement-level movement; REPLICATION_ROWS counts the ACCEL_LOAD_TABLES copies the DB2-materialised baseline needs before each accelerated stage.")
	t.AddNote("With accelerator-only tables every intermediate stays on the accelerator: both movement columns drop to zero, which is the paper's Section 2 claim.")
	return t, nil
}

// RunE2QueryAcceleration compares analytical queries on the DB2 row engine
// against the accelerator's sliced columnar engine.
func RunE2QueryAcceleration(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E2",
		Title:   "Analytical queries: DB2 row engine vs accelerator (same SQL, same data)",
		Columns: []string{"ORDERS", "QUERY", "DB2_MS", "ACCEL_MS", "SPEEDUP", "ACCEL_ROWS_RETURNED"},
	}
	queries := []struct {
		name string
		sql  string
	}{
		{"Q1 aggregate", "SELECT product, COUNT(*) AS cnt, SUM(amount) AS total, AVG(amount) AS avg_amount FROM orders GROUP BY product ORDER BY product"},
		{"Q2 join+group", "SELECT c.region, COUNT(*) AS orders, SUM(o.amount) AS revenue FROM orders o INNER JOIN customers c ON o.customer_id = c.customer_id GROUP BY c.region ORDER BY c.region"},
		{"Q3 selective filter", "SELECT COUNT(*) AS cnt, SUM(amount) AS total FROM orders WHERE amount > 400 AND quantity >= 5"},
		{"Q4 top customers", "SELECT customer_id, SUM(amount) AS spend FROM orders GROUP BY customer_id ORDER BY spend DESC LIMIT 10"},
	}
	for _, rows := range scale.QueryRows {
		sys := newSystem(scale)
		if _, _, err := setupCustomersOrders(sys, rows); err != nil {
			return nil, err
		}
		session := sys.AdminSession()
		for _, q := range queries {
			if err := session.SetAcceleration("NONE"); err != nil {
				return nil, err
			}
			startDB2 := time.Now()
			resDB2, err := session.Query(q.sql)
			if err != nil {
				return nil, fmt.Errorf("E2 %s on DB2: %w", q.name, err)
			}
			db2Elapsed := time.Since(startDB2)

			if err := session.SetAcceleration("ENABLE"); err != nil {
				return nil, err
			}
			startAccel := time.Now()
			resAccel, err := session.Query(q.sql)
			if err != nil {
				return nil, fmt.Errorf("E2 %s on accelerator: %w", q.name, err)
			}
			accelElapsed := time.Since(startAccel)
			if len(resDB2.Rows) != len(resAccel.Rows) {
				return nil, fmt.Errorf("E2 %s: result mismatch (%d vs %d rows)", q.name, len(resDB2.Rows), len(resAccel.Rows))
			}
			t.AddRow(itoa(rows), q.name, ms(db2Elapsed), ms(accelElapsed), ratio(db2Elapsed, accelElapsed), itoa(len(resAccel.Rows)))
		}
	}
	t.AddNote("Both sides execute the identical SQL on identical data; results are cross-checked for equal cardinality before timings are reported.")
	return t, nil
}

// RunE3LoadPaths compares the three ingestion paths: SQL inserts through DB2
// followed by replication, the loader into a DB2 table followed by
// replication, and the loader writing directly into an accelerator-only table.
func RunE3LoadPaths(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E3",
		Title:   "Ingesting external data until it is queryable on the accelerator",
		Columns: []string{"PATH", "ROWS", "LOAD_MS", "TO_ACCEL_MS", "TOTAL_MS", "ROWS_THROUGH_DB2"},
	}
	rows := scale.LoadRows
	csvData := workload.SocialPostsCSV(rows, rows/10, 11)

	// Path A: bulk SQL inserts into a DB2 table, then ACCEL_ADD/LOAD.
	{
		sys := newSystem(scale)
		if err := createTable(sys, "POSTS_A", workload.SocialPostSchema(), ""); err != nil {
			return nil, err
		}
		start := time.Now()
		if err := fillTable(sys, "POSTS_A", workload.SocialPosts(rows, rows/10, 11)); err != nil {
			return nil, err
		}
		loadElapsed := time.Since(start)
		startRepl := time.Now()
		if err := accelerate(sys, "POSTS_A"); err != nil {
			return nil, err
		}
		replElapsed := time.Since(startRepl)
		t.AddRow("A: INSERT into DB2 + replication", itoa(rows), ms(loadElapsed), ms(replElapsed), ms(loadElapsed+replElapsed), itoa(rows))
	}

	// Path B: loader (CSV) into a DB2 table, then ACCEL_ADD/LOAD.
	{
		sys := newSystem(scale)
		if err := createTable(sys, "POSTS_B", workload.SocialPostSchema(), ""); err != nil {
			return nil, err
		}
		start := time.Now()
		rep, err := sys.Load("POSTS_B", strings.NewReader(csvData), idaaxLoadOptions())
		if err != nil {
			return nil, err
		}
		loadElapsed := time.Since(start)
		startRepl := time.Now()
		if err := accelerate(sys, "POSTS_B"); err != nil {
			return nil, err
		}
		replElapsed := time.Since(startRepl)
		t.AddRow("B: IDAA Loader into DB2 + replication", itoa(rep.RowsLoaded), ms(loadElapsed), ms(replElapsed), ms(loadElapsed+replElapsed), itoa(rep.RowsLoaded))
	}

	// Path C: loader (CSV) directly into an accelerator-only table.
	{
		sys := newSystem(scale)
		if err := createTable(sys, "POSTS_C", workload.SocialPostSchema(), "IDAA1"); err != nil {
			return nil, err
		}
		start := time.Now()
		rep, err := sys.Load("POSTS_C", strings.NewReader(csvData), idaaxLoadOptions())
		if err != nil {
			return nil, err
		}
		loadElapsed := time.Since(start)
		t.AddRow("C: IDAA Loader into accelerator-only table", itoa(rep.RowsLoaded), ms(loadElapsed), "0.0", ms(loadElapsed), "0")
	}
	t.AddNote("Path C is the paper's loader use case: external (non-System-z) data becomes queryable on the accelerator without ever occupying DB2 storage or the replication pipeline.")
	return t, nil
}

func idaaxLoadOptions() idaax.LoadOptions {
	return idaax.LoadOptions{Format: "csv", HasHeader: true, MapByHeader: true, BatchSize: 5000}
}
