package bench

import (
	"fmt"
	"os"
	"strings"
	"time"

	"idaax"
)

// RunE16Durability measures what durability costs and what recovery buys:
//
//   - Ingest: the same batched INSERT workload into an accelerator-only
//     table with the WAL off (in-memory system), with group-committed fsync
//     and with fsync-per-commit. The acceptance bar is WAL-on ingest within
//     2x of WAL-off.
//   - Recovery: tables of increasing size are checkpointed, topped up with a
//     WAL tail, killed without a clean shutdown and reopened; the reopen time
//     is the recovery time (checkpoint load + WAL replay + catch-up).
//
// Every run verifies counts exactly — a recovery that loses or duplicates
// rows fails the experiment rather than reporting a fast number.
func RunE16Durability(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E16",
		Title:   "Durability: WAL ingest overhead and recovery time",
		Columns: []string{"PHASE", "CONFIG", "ROWS", "ELAPSED_MS", "ROWS_PER_SEC", "RELATIVE"},
	}

	if err := runE16Ingest(t, scale); err != nil {
		return nil, fmt.Errorf("E16 ingest: %w", err)
	}
	if err := runE16Recovery(t, scale); err != nil {
		return nil, fmt.Errorf("E16 recovery: %w", err)
	}
	t.AddNote("ingest is %d rows in 500-row INSERT statements into an accelerator-only table; wal=grouped fsyncs on a 2ms group-commit interval, wal=always fsyncs before every commit returns.", scale.LoadRows)
	t.AddNote("recovery reopens a store that was killed without a clean shutdown: a checkpoint holding ~91%% of the rows plus a WAL tail with the rest; the reopen verifies the exact row count before timing is reported.")
	return t, nil
}

const e16Batch = 500

func e16Insert(sys *idaax.System, table string, from, n int) error {
	s := sys.AdminSession()
	for done := 0; done < n; {
		batch := e16Batch
		if n-done < batch {
			batch = n - done
		}
		var sb strings.Builder
		fmt.Fprintf(&sb, "INSERT INTO %s VALUES ", table)
		for j := 0; j < batch; j++ {
			if j > 0 {
				sb.WriteString(", ")
			}
			k := from + done + j
			fmt.Fprintf(&sb, "(%d, %g)", k, float64(k%9973)*0.5)
		}
		if _, err := s.Exec(sb.String()); err != nil {
			return err
		}
		done += batch
	}
	return nil
}

func e16Count(sys *idaax.System, table string) (int, error) {
	res, err := sys.AdminSession().Query("SELECT COUNT(*) FROM " + table)
	if err != nil {
		return 0, err
	}
	var n int
	fmt.Sscanf(res.Rows[0][0], "%d", &n)
	return n, nil
}

func runE16Ingest(t *Table, scale Scale) error {
	rows := scale.LoadRows
	modes := []struct {
		name    string
		fsync   string
		durable bool
	}{
		{"wal=off", "", false},
		{"wal=grouped", "grouped", true},
		{"wal=always", "always", true},
	}
	var offRate float64
	for _, m := range modes {
		cfg := idaax.Config{AcceleratorSlices: scale.Slices, AnalyticsPublic: true}
		var dir string
		if m.durable {
			var err error
			if dir, err = os.MkdirTemp("", "idaax-e16-*"); err != nil {
				return err
			}
			cfg.DataDir = dir
			cfg.FsyncPolicy = m.fsync
		}
		sys, err := idaax.OpenDurable(cfg)
		if err != nil {
			return err
		}
		if _, err := sys.AdminSession().Exec("CREATE TABLE ing (k BIGINT, v DOUBLE) IN ACCELERATOR IDAA1"); err != nil {
			sys.Close()
			return err
		}
		start := time.Now()
		err = e16Insert(sys, "ing", 0, rows)
		elapsed := time.Since(start)
		if err == nil {
			var n int
			if n, err = e16Count(sys, "ing"); err == nil && n != rows {
				err = fmt.Errorf("ingest wrote %d of %d rows", n, rows)
			}
		}
		closeErr := sys.Close()
		if dir != "" {
			os.RemoveAll(dir)
		}
		if err != nil {
			return err
		}
		if closeErr != nil {
			return closeErr
		}

		rate := float64(rows) / elapsed.Seconds()
		rel := "1.00x"
		if m.name == "wal=off" {
			offRate = rate
		} else if rate > 0 {
			rel = fmt.Sprintf("%.2fx", offRate/rate)
		}
		t.AddRow("ingest", m.name, itoa(rows), ms(elapsed), fmt.Sprintf("%.0f", rate), rel)
		// Gated metrics cover wal=off and wal=grouped only: wal=always ingest
		// is dominated by the runner's raw fsync latency, which says nothing
		// about the code — it is reported in the table but not regression-gated.
		if m.name != "wal=always" {
			t.AddMetric("ingest_rows_per_sec_"+strings.TrimPrefix(m.name, "wal="), rate, true)
		}
		if m.name == "wal=grouped" && rate > 0 {
			t.AddMetric("wal_slowdown_grouped", offRate/rate, false)
		}
	}
	return nil
}

func runE16Recovery(t *Table, scale Scale) error {
	for si, rows := range scale.QueryRows {
		dir, err := os.MkdirTemp("", "idaax-e16-*")
		if err != nil {
			return err
		}
		err = func() error {
			tail := rows / 10
			cfg := idaax.Config{
				AcceleratorSlices: scale.Slices, AnalyticsPublic: true,
				DataDir: dir, FsyncPolicy: "always",
			}
			sys, err := idaax.OpenDurable(cfg)
			if err != nil {
				return err
			}
			if _, err := sys.AdminSession().Exec("CREATE TABLE rec (k BIGINT, v DOUBLE) IN ACCELERATOR IDAA1"); err != nil {
				return err
			}
			if err := e16Insert(sys, "rec", 0, rows); err != nil {
				return err
			}
			if err := sys.Checkpoint(); err != nil {
				return err
			}
			if err := e16Insert(sys, "rec", rows, tail); err != nil {
				return err
			}
			// Kill: no Close, no final checkpoint — recovery must load the
			// checkpoint and replay the WAL tail.

			start := time.Now()
			re, err := idaax.OpenDurable(cfg)
			if err != nil {
				return fmt.Errorf("reopen: %w", err)
			}
			elapsed := time.Since(start)
			defer re.Close()
			n, err := e16Count(re, "rec")
			if err != nil {
				return err
			}
			if n != rows+tail {
				return fmt.Errorf("recovered %d of %d rows", n, rows+tail)
			}
			info := re.Coordinator().RecoveryInfo()
			if !info.Recovered || info.WALRecords == 0 {
				return fmt.Errorf("recovery replayed no WAL records: %+v", info)
			}
			rate := float64(n) / elapsed.Seconds()
			t.AddRow("recovery", "ckpt+wal", itoa(n), ms(elapsed), fmt.Sprintf("%.0f", rate), "-")
			t.AddMetric(fmt.Sprintf("recovery_rows_per_sec_scale%d", si+1), rate, true)
			return nil
		}()
		os.RemoveAll(dir)
		if err != nil {
			return err
		}
	}
	return nil
}
