package bench

import (
	"fmt"
	"io"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"idaax"
)

// opsScrapeInterval is the cadence of each concurrent scraper in E15's
// scraped windows. 5ms per endpoint is hundreds of scrapes per second —
// orders of magnitude above a real Prometheus cadence (seconds) — so the
// measured overhead is a stress ceiling, not a typical cost. The scrapers
// are throttled rather than hammering in a tight loop so that on small CI
// runners the metric reflects instrumentation cost on the query path, not
// raw CPU starvation.
const opsScrapeInterval = 5 * time.Millisecond

// RunE15OpsOverhead measures what being scraped costs on the hot query path:
// the E13/E14 scan-filter and grouped-aggregation workloads executed through
// the full session layer on a system whose operations plane is live (ops
// HTTP server up, health watchdog running), timed in interleaved windows —
// one with the scrapers paused, one with three scrapers polling /metrics,
// /healthz and /events on a tight cadence. Both windows run the identical
// statements on the identical system back to back, so shared-runner noise
// hits both modes and the ratio isolates the cost of concurrent scrapes
// contending with queries for the registry, journal and health tracker.
func RunE15OpsOverhead(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E15",
		Title:   "Operations plane overhead under concurrent scrapes",
		Columns: []string{"ROWS", "QUERY", "MODE", "ELAPSED_MS", "ROWS_PER_SEC", "OVERHEAD"},
	}
	sizes := []int{scale.QueryRows[0], scale.QueryRows[len(scale.QueryRows)-1]}
	queries := []struct {
		key string
		sql string
	}{
		{"scan_filter", "SELECT id, v1, q FROM vx WHERE q >= 4 AND v1 > 650 AND q < 44 AND cat <> 'c-3'"},
		{"groupby", "SELECT grp, COUNT(*), SUM(v1), AVG(v2), MIN(q), MAX(q) FROM vx GROUP BY grp"},
	}

	for si, rows := range sizes {
		iters := 250000 / rows
		if iters < 5 {
			iters = 5
		}

		sys := idaax.New(idaax.Config{
			AcceleratorSlices: scale.Slices,
			AnalyticsPublic:   true,
			WatchdogInterval:  50 * time.Millisecond,
		})
		if err := setupVectorTable(sys, rows); err != nil {
			sys.Close()
			return nil, err
		}
		session := sys.AdminSession()
		srv, err := sys.ServeOps("127.0.0.1:0")
		if err != nil {
			sys.Close()
			return nil, err
		}

		// Scrapers run for the whole experiment but only issue requests while
		// scraping is enabled, so the paused and scraped windows interleave on
		// the same live system.
		var scraping atomic.Bool
		stop := make(chan struct{})
		var wg sync.WaitGroup
		client := &http.Client{Timeout: 5 * time.Second}
		for _, path := range []string{"/metrics", "/healthz", "/events?n=50"} {
			wg.Add(1)
			go func(p string) {
				defer wg.Done()
				ticker := time.NewTicker(opsScrapeInterval)
				defer ticker.Stop()
				for {
					select {
					case <-stop:
						return
					case <-ticker.C:
						if !scraping.Load() {
							continue
						}
						resp, err := client.Get("http://" + srv.Addr() + p)
						if err == nil {
							_, _ = io.Copy(io.Discard, resp.Body)
							resp.Body.Close()
						}
					}
				}
			}(path)
		}

		runExp := func() error {
			for _, q := range queries {
				// Warm up code paths and caches before the timed windows.
				for i := 0; i < 2; i++ {
					if _, err := session.Query(q.sql); err != nil {
						return err
					}
				}

				window := func() (time.Duration, error) {
					// Start every window with a clean heap so a GC cycle
					// triggered by the previous window's garbage cannot land
					// in this one and masquerade as scrape overhead.
					runtime.GC()
					start := time.Now()
					for i := 0; i < iters; i++ {
						if _, err := session.Query(q.sql); err != nil {
							return 0, err
						}
					}
					return time.Since(start), nil
				}

				// Interleave paused and scraped windows and keep the best of
				// each: a noise spike lands on one repetition, not one mode,
				// and best-vs-best discards it.
				var bestIdle, bestOps time.Duration
				for rep := 0; rep < 7; rep++ {
					scraping.Store(false)
					time.Sleep(2 * opsScrapeInterval) // let in-flight scrapes drain
					idle, err := window()
					if err != nil {
						return err
					}
					scraping.Store(true)
					time.Sleep(2 * opsScrapeInterval) // let scrapers spin up
					ops, err := window()
					if err != nil {
						return err
					}
					if bestIdle == 0 || idle < bestIdle {
						bestIdle = idle
					}
					if bestOps == 0 || ops < bestOps {
						bestOps = ops
					}
				}
				scraping.Store(false)

				overhead := float64(bestOps) / float64(bestIdle)
				for _, m := range []struct {
					mode     string
					elapsed  time.Duration
					overhead string
				}{
					{"idle", bestIdle, "1.00x"},
					{"scraped", bestOps, fmt.Sprintf("%.2fx", overhead)},
				} {
					rate := float64(rows*iters) / m.elapsed.Seconds()
					t.AddRow(itoa(rows), q.key, m.mode, ms(m.elapsed), fmt.Sprintf("%.0f", rate), m.overhead)
					t.AddMetric(fmt.Sprintf("%s_rows_per_sec_%s_scale%d", q.key, m.mode, si+1), rate, true)
				}
				t.AddMetric(fmt.Sprintf("%s_overhead_scale%d", q.key, si+1), overhead, false)
			}
			return nil
		}
		err = runExp()
		close(stop)
		wg.Wait()
		sys.Close()
		if err != nil {
			return nil, fmt.Errorf("E15: %w", err)
		}
	}
	t.AddNote("Both modes run the identical SQL through the full session layer (spans, histograms, history, journal) on a system whose ops plane is live: HTTP server up, health watchdog evaluating its rules every 50ms. scraped adds three scrapers polling /metrics, /healthz and /events every 5ms, reading the registry, health tracker, fleet gauges and journal concurrently with the workload.")
	t.AddNote("OVERHEAD is scraped/idle elapsed (best of seven interleaved windows each); the CI baseline gates it at ~5%% so the system can be scraped in production without budgeting for it.")
	return t, nil
}
