package bench

import (
	"fmt"
	"time"

	"idaax"
	"idaax/internal/analytics"
	"idaax/internal/expr"
	"idaax/internal/federation"
	"idaax/internal/relalg"
	"idaax/internal/types"
)

// RunE4Transactions verifies and measures the transactional behaviour of
// accelerator-only tables: own-transaction visibility of uncommitted changes,
// rollback, isolation from concurrent sessions, and the per-statement overhead
// of running AOT DML inside explicit transactions versus auto-commit.
func RunE4Transactions(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E4",
		Title:   "AOT DML under the DB2 transaction context",
		Columns: []string{"CHECK / WORKLOAD", "RESULT", "DETAIL"},
	}
	sys := newSystem(scale)
	admin := sys.AdminSession()
	if _, err := admin.Exec("CREATE TABLE txn_aot (id BIGINT, v DOUBLE) IN ACCELERATOR IDAA1"); err != nil {
		return nil, err
	}

	// Correctness check 1: own uncommitted changes are visible.
	if err := admin.Begin(); err != nil {
		return nil, err
	}
	if _, err := admin.Exec("INSERT INTO txn_aot VALUES (1, 1.0), (2, 2.0)"); err != nil {
		return nil, err
	}
	res, err := admin.Query("SELECT COUNT(*) FROM txn_aot")
	if err != nil {
		return nil, err
	}
	ownSees := res.Rows[0][0] == "2"
	other := sys.AdminSession()
	resOther, err := other.Query("SELECT COUNT(*) FROM txn_aot")
	if err != nil {
		return nil, err
	}
	otherBlind := resOther.Rows[0][0] == "0"
	if err := admin.Rollback(); err != nil {
		return nil, err
	}
	resAfter, err := admin.Query("SELECT COUNT(*) FROM txn_aot")
	if err != nil {
		return nil, err
	}
	rolledBack := resAfter.Rows[0][0] == "0"
	t.AddRow("own transaction sees its uncommitted AOT inserts", passFail(ownSees), "SELECT COUNT(*) inside the inserting transaction")
	t.AddRow("concurrent session does not see uncommitted inserts", passFail(otherBlind), "snapshot isolation on the accelerator")
	t.AddRow("ROLLBACK removes delegated AOT changes", passFail(rolledBack), "MVCC versions of the aborted transaction stay invisible")

	// Correctness check 2: multi-statement transaction commits atomically.
	if err := admin.Begin(); err != nil {
		return nil, err
	}
	if _, err := admin.Exec("INSERT INTO txn_aot VALUES (10, 1.0)"); err != nil {
		return nil, err
	}
	if _, err := admin.Exec("UPDATE txn_aot SET v = v + 1 WHERE id = 10"); err != nil {
		return nil, err
	}
	if _, err := admin.Exec("DELETE FROM txn_aot WHERE id = 10 AND v < 0"); err != nil {
		return nil, err
	}
	if err := admin.Commit(); err != nil {
		return nil, err
	}
	resCommit, err := other.Query("SELECT COUNT(*), MAX(v) FROM txn_aot WHERE id = 10")
	if err != nil {
		return nil, err
	}
	atomic := resCommit.Rows[0][0] == "1" && resCommit.Rows[0][1] == "2"
	t.AddRow("multi-statement transaction commits atomically", passFail(atomic), "insert+update+delete visible to other sessions only after COMMIT")

	// Overhead: auto-commit vs explicit transactions per statement batch.
	n := scale.TxnStatements
	start := time.Now()
	for i := 0; i < n; i++ {
		if _, err := admin.Exec(fmt.Sprintf("INSERT INTO txn_aot VALUES (%d, %d.5)", 1000+i, i)); err != nil {
			return nil, err
		}
	}
	autoElapsed := time.Since(start)

	start = time.Now()
	if err := admin.Begin(); err != nil {
		return nil, err
	}
	for i := 0; i < n; i++ {
		if _, err := admin.Exec(fmt.Sprintf("INSERT INTO txn_aot VALUES (%d, %d.5)", 100000+i, i)); err != nil {
			return nil, err
		}
	}
	if err := admin.Commit(); err != nil {
		return nil, err
	}
	explicitElapsed := time.Since(start)
	t.AddRow(fmt.Sprintf("%d AOT inserts, auto-commit", n), ms(autoElapsed)+" ms", fmt.Sprintf("%.1f µs/stmt (one commit handshake per statement)", float64(autoElapsed.Microseconds())/float64(n)))
	t.AddRow(fmt.Sprintf("%d AOT inserts, one transaction", n), ms(explicitElapsed)+" ms", fmt.Sprintf("%.1f µs/stmt (single commit handshake)", float64(explicitElapsed.Microseconds())/float64(n)))
	return t, nil
}

func passFail(ok bool) string {
	if ok {
		return "PASS"
	}
	return "FAIL"
}

// RunE5Scoring compares client-side scoring (extract the rows to the
// application, score there, write predictions back) against in-database
// scoring through the procedure framework (compute on the accelerator,
// materialise into an AOT).
func RunE5Scoring(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E5",
		Title:   "Churn scoring: client-side extraction vs in-database procedure",
		Columns: []string{"ROWS", "APPROACH", "ELAPSED_MS", "ROWS_TO_CLIENT", "PREDICTIONS_LAND_IN", "SPEEDUP"},
	}
	rows := scale.ChurnRows
	sys := newSystem(scale)
	if err := setupChurn(sys, rows); err != nil {
		return nil, err
	}
	admin := sys.AdminSession()
	features := "TENURE_MONTHS,MONTHLY_SPEND,SUPPORT_CALLS,LATE_PAYMENTS,DISCOUNT_RATE"

	// Train once, in-database, into a model AOT.
	if _, err := admin.Exec(fmt.Sprintf(
		"CALL IDAX.LOGISTIC_REGRESSION('CHURN', 'CHURNED', '%s', 'CHURN_MODEL', 150, 0.2)", features)); err != nil {
		return nil, err
	}

	// Client-side scoring: pull all rows to the client, score locally, write
	// the predictions back into a DB2 table.
	coord := sys.Coordinator()
	sys.ResetMetrics()
	startClient := time.Now()
	session := coord.Session(benchUser)
	resRel, err := session.Query("SELECT * FROM churn")
	if err != nil {
		return nil, err
	}
	// The application materialises the fetched rows before scoring them.
	rel := resultToRelation(resRel)
	modelRes, err := session.Query("SELECT * FROM CHURN_MODEL")
	if err != nil {
		return nil, err
	}
	kind, model, err := analytics.LoadModel(resultToRelation(modelRes))
	if err != nil {
		return nil, err
	}
	scored, schema, err := analytics.ScoreRelation(kind, model, rel, "CUSTOMER_ID")
	if err != nil {
		return nil, err
	}
	if err := createTable(sys, "SCORES_CLIENT", schema, ""); err != nil {
		return nil, err
	}
	if _, err := coord.BulkInsert(benchUser, "SCORES_CLIENT", scored); err != nil {
		return nil, err
	}
	clientElapsed := time.Since(startClient)

	// In-database scoring: one CALL, result lands in an AOT.
	sys.ResetMetrics()
	startInDB := time.Now()
	if _, err := admin.Exec("CALL IDAX.PREDICT('CHURN_MODEL', 'CHURN', 'CUSTOMER_ID', 'SCORES_INDB')"); err != nil {
		return nil, err
	}
	inDBElapsed := time.Since(startInDB)

	t.AddRow(itoa(rows), "client-side (extract, score in app, insert back)", ms(clientElapsed), itoa(len(resRel.Rows)),
		"DB2 table (application writes them back)", "1.0x")
	t.AddRow(itoa(rows), "in-database (CALL IDAX.PREDICT into AOT)", ms(inDBElapsed), "0",
		"accelerator-only table", ratio(clientElapsed, inDBElapsed))
	t.AddNote("Both approaches apply the same logistic model to the same rows; the in-database path never returns row data to the client and keeps predictions on the accelerator for the next pipeline stage.")
	return t, nil
}

// resultToRelation rebuilds a relation from a statement result (simulating an
// application that fetched the rows to its own address space).
func resultToRelation(res *federation.Result) *relalg.Relation {
	rel := &relalg.Relation{}
	for _, c := range res.Columns {
		rel.Cols = append(rel.Cols, expr.InputColumn{Name: c, Kind: types.KindString})
	}
	for _, row := range res.Rows {
		rel.Rows = append(rel.Rows, row.Clone())
	}
	return rel
}

// RunE6Training trains every supported algorithm in-database and reports
// runtime, model size and quality metrics, plus k-means parallel scaling
// across accelerator slice counts.
func RunE6Training(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E6",
		Title:   "In-database model training through the procedure framework",
		Columns: []string{"ALGORITHM", "ROWS", "ELAPSED_MS", "RESULT"},
	}
	rows := scale.ChurnRows
	sys := newSystem(scale)
	if err := setupChurn(sys, rows); err != nil {
		return nil, err
	}
	admin := sys.AdminSession()
	features := "TENURE_MONTHS,MONTHLY_SPEND,SUPPORT_CALLS,LATE_PAYMENTS,DISCOUNT_RATE"

	calls := []struct {
		name string
		sql  string
	}{
		{"linear regression", "CALL IDAX.LINEAR_REGRESSION('CHURN', 'MONTHLY_SPEND', 'TENURE_MONTHS,SUPPORT_CALLS,LATE_PAYMENTS,DISCOUNT_RATE', 'M_LIN')"},
		{"logistic regression", fmt.Sprintf("CALL IDAX.LOGISTIC_REGRESSION('CHURN', 'CHURNED', '%s', 'M_LOG', 150, 0.2)", features)},
		{"k-means (k=4)", fmt.Sprintf("CALL IDAX.KMEANS('CHURN', '%s', 4, 'M_KM', 'KM_ASSIGN', 'CUSTOMER_ID', 25, 7)", features)},
		{"naive bayes", fmt.Sprintf("CALL IDAX.NAIVE_BAYES('CHURN', 'CHURNED', '%s', 'M_NB')", features)},
		{"decision tree", fmt.Sprintf("CALL IDAX.DECISION_TREE('CHURN', 'CHURNED', '%s', 'M_DT', 6)", features)},
	}
	for _, call := range calls {
		start := time.Now()
		res, err := admin.Exec(call.sql)
		if err != nil {
			return nil, fmt.Errorf("E6 %s: %w", call.name, err)
		}
		t.AddRow(call.name, itoa(rows), ms(time.Since(start)), res.Message)
	}

	// Parallel scaling of the most compute-bound algorithm (k-means) across
	// accelerator slice counts.
	for _, slices := range []int{1, 2, 4} {
		sysN := idaax.New(idaax.Config{AcceleratorSlices: slices, AnalyticsPublic: true})
		if err := setupChurn(sysN, rows); err != nil {
			return nil, err
		}
		adminN := sysN.AdminSession()
		start := time.Now()
		if _, err := adminN.Exec(fmt.Sprintf("CALL IDAX.KMEANS('CHURN', '%s', 4, 'M_KM', 'KM_ASSIGN', 'CUSTOMER_ID', 25, 7)", features)); err != nil {
			return nil, err
		}
		t.AddRow(fmt.Sprintf("k-means scaling, %d slice(s)", slices), itoa(rows), ms(time.Since(start)), fmt.Sprintf("accelerator configured with %d worker slices", slices))
	}
	t.AddNote("All models and cluster assignments are materialised as accelerator-only tables and are immediately queryable with SQL (e.g. SELECT * FROM M_LOG WHERE PARAM = 'ACCURACY').")
	return t, nil
}
