package bench

import (
	"fmt"
	"strings"
	"time"

	"idaax"
)

// RunE10ColocatedJoin measures the cost-based planner's co-located join
// placement: a pair of tables hash-distributed on their join key (ORDERS on
// CUSTOMER_ID, CUSTOMERS on ID) is loaded into a 4-shard system at two data
// scales, and each join class runs once with cost-based planning disabled
// (the heuristic gather plan ships every table's base rows to the
// coordinator and joins there) and once enabled (joins execute shard-local;
// only join results or aggregate partials reach the coordinator).
//
// The aggregate join shows the planner's wall-clock win (two-phase partial
// aggregation over shard-local joins); the plain join materialises the same
// join output under both plans, so its gain is in rows moved, which is the
// quantity that matters once shards live on real hardware.
func RunE10ColocatedJoin(scale Scale) (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "Join placement: co-located shard-local joins vs coordinator gather (4 shards)",
		Columns: []string{"ROWS", "QUERY", "GATHER_MS", "PLANNER_MS", "SPEEDUP",
			"MOVED_GATHER", "MOVED_PLANNER"},
	}
	slices := scale.Slices
	if slices <= 0 {
		slices = 2
	}
	const rounds = 4
	classes := []struct{ name, sql string }{
		{"agg-join", "SELECT c.segment, COUNT(*), SUM(o.amount) FROM orders o JOIN customers c ON o.customer_id = c.id GROUP BY c.segment"},
		{"plain-join", "SELECT o.oid, c.name FROM orders o JOIN customers c ON o.customer_id = c.id WHERE o.amount > 4 ORDER BY o.oid LIMIT 20"},
		{"pruned-join", "SELECT COUNT(*), SUM(o.amount) FROM orders o JOIN customers c ON o.customer_id = c.id WHERE o.customer_id IN (1, 2, 3)"},
	}

	// Two data scales; the movement advantage is roughly constant while the
	// wall-clock advantage grows with the data volume.
	for _, rows := range []int{scale.LoadRows, 5 * scale.LoadRows} {
		if rows < 400 {
			rows = 400
		}
		sys, accelerator := newShardedSystem(4, slices)
		if err := seedColocatedPair(sys, accelerator, rows); err != nil {
			return nil, err
		}
		router, err := sys.Coordinator().ShardGroup(accelerator)
		if err != nil {
			return nil, err
		}
		session := sys.AdminSession()

		for _, class := range classes {
			var elapsed [2]time.Duration
			var moved [2]int64
			for cfg, planned := range []bool{false, true} {
				router.SetCostBasedPlanning(planned)
				// Warm once so first-run allocation noise stays out.
				if _, err := session.Query(class.sql); err != nil {
					return nil, err
				}
				before, err := sys.ShardGroupStats(accelerator)
				if err != nil {
					return nil, err
				}
				start := time.Now()
				for i := 0; i < rounds; i++ {
					if _, err := session.Query(class.sql); err != nil {
						return nil, err
					}
				}
				elapsed[cfg] = time.Since(start)
				after, err := sys.ShardGroupStats(accelerator)
				if err != nil {
					return nil, err
				}
				moved[cfg] = (after.RowsGathered - before.RowsGathered) / rounds
			}
			t.AddRow(itoa(rows), class.name, ms(elapsed[0]), ms(elapsed[1]),
				ratio(elapsed[0], elapsed[1]), i64(moved[0]), i64(moved[1]))
		}

		st, err := sys.ShardGroupStats(accelerator)
		if err != nil {
			return nil, err
		}
		t.AddNote("rows=%d: colocated_joins=%d pruned_shard_scans_avoided=%d",
			rows, st.ColocatedJoins, st.ShardScansAvoided)
		sys.Close()
	}
	t.AddNote("ORDERS and CUSTOMERS share their distribution key, so planned joins run shard-local; the gather plan ships all base rows to the coordinator first")
	return t, nil
}

// seedColocatedPair creates and loads the co-distributed ORDERS/CUSTOMERS
// pair through the SQL INSERT path (rows flow through the router's
// partitioner).
func seedColocatedPair(sys *idaax.System, accelerator string, rows int) error {
	session := sys.AdminSession()
	ddl := []string{
		fmt.Sprintf("CREATE TABLE orders (oid BIGINT NOT NULL, customer_id BIGINT, amount DOUBLE) IN ACCELERATOR %s DISTRIBUTE BY HASH(customer_id)", accelerator),
		fmt.Sprintf("CREATE TABLE customers (id BIGINT NOT NULL, name VARCHAR(16), segment VARCHAR(8)) IN ACCELERATOR %s DISTRIBUTE BY HASH(id)", accelerator),
	}
	for _, d := range ddl {
		if _, err := session.Exec(d); err != nil {
			return err
		}
	}
	customers := rows / 20
	if customers < 10 {
		customers = 10
	}
	const batch = 2000
	for lo := 0; lo < rows; lo += batch {
		hi := lo + batch
		if hi > rows {
			hi = rows
		}
		var sb strings.Builder
		sb.WriteString("INSERT INTO orders VALUES ")
		for i := lo; i < hi; i++ {
			if i > lo {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, %g)", i, i%customers, float64(i%23)*0.5)
		}
		if _, err := session.Exec(sb.String()); err != nil {
			return err
		}
	}
	segments := []string{"SMB", "ENT", "GOV"}
	var sb strings.Builder
	sb.WriteString("INSERT INTO customers VALUES ")
	for i := 0; i < customers; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, 'C%05d', '%s')", i, i, segments[i%3])
	}
	if _, err := session.Exec(sb.String()); err != nil {
		return err
	}
	// Exact statistics sharpen the planner's estimates (and exercise the
	// ANALYZE path in every benchmark run).
	if _, err := session.Exec("CALL SYSPROC.ACCEL_ANALYZE('" + accelerator + "', 'orders,customers')"); err != nil {
		return err
	}
	return nil
}
