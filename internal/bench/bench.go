// Package bench implements the experiment harness that regenerates every
// table of the evaluation (DESIGN.md §3, EXPERIMENTS.md). The same experiment
// code is driven from `go test -bench` (bench_test.go) and from the
// cmd/idaabench binary, so the numbers in EXPERIMENTS.md can be reproduced
// either way.
package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"idaax"
)

// Scale controls dataset sizes so experiments can run both as quick smoke
// benchmarks and at full size.
type Scale struct {
	// Name labels the scale in reports.
	Name string
	// PipelineOrders are the ORDERS sizes for the pipeline experiments (E1, E7).
	PipelineOrders []int
	// QueryRows are the ORDERS sizes for the query-acceleration experiment (E2).
	QueryRows []int
	// LoadRows is the row count for the load-path experiment (E3).
	LoadRows int
	// TxnStatements is the number of transactions for E4.
	TxnStatements int
	// ChurnRows is the labelled-row count for E5/E6.
	ChurnRows int
	// Slices is the accelerator parallelism (0 = number of CPUs).
	Slices int
}

// SmallScale finishes in a few seconds; used by unit tests and -short runs.
func SmallScale() Scale {
	return Scale{
		Name:           "small",
		PipelineOrders: []int{5000, 20000},
		QueryRows:      []int{5000, 20000, 60000},
		LoadRows:       20000,
		TxnStatements:  200,
		ChurnRows:      5000,
	}
}

// FullScale is the scale EXPERIMENTS.md reports.
func FullScale() Scale {
	return Scale{
		Name:           "full",
		PipelineOrders: []int{50000, 200000},
		QueryRows:      []int{10000, 100000, 400000},
		LoadRows:       200000,
		TxnStatements:  1000,
		ChurnRows:      50000,
	}
}

// Table is one experiment's result table. Rows and notes are the
// human-readable rendering; Metrics are the machine-readable numbers the CI
// regression harness compares against a checked-in baseline.
type Table struct {
	ID      string     `json:"id"`
	Title   string     `json:"title"`
	Columns []string   `json:"columns"`
	Rows    [][]string `json:"rows"`
	Notes   []string   `json:"notes,omitempty"`
	Metrics []Metric   `json:"metrics,omitempty"`
}

// Metric is one named machine-readable result of an experiment.
type Metric struct {
	Name  string  `json:"name"`
	Value float64 `json:"value"`
	// HigherIsBetter orients the regression check: a higher-is-better metric
	// regresses by dropping, a lower-is-better one by rising.
	HigherIsBetter bool `json:"higher_is_better"`
}

// AddRow appends a row of already-formatted cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// AddNote appends a free-text note printed under the table.
func (t *Table) AddNote(format string, args ...any) {
	t.Notes = append(t.Notes, fmt.Sprintf(format, args...))
}

// AddMetric records a machine-readable result for the JSON report.
func (t *Table) AddMetric(name string, value float64, higherIsBetter bool) {
	t.Metrics = append(t.Metrics, Metric{Name: name, Value: value, HigherIsBetter: higherIsBetter})
}

// Report is the JSON document cmd/idaabench -json writes: every experiment
// that ran, at which scale.
type Report struct {
	Scale       string   `json:"scale"`
	Experiments []*Table `json:"experiments"`
}

// FindExperiment returns the report's table for an experiment id.
func (r *Report) FindExperiment(id string) *Table {
	for _, t := range r.Experiments {
		if strings.EqualFold(t.ID, id) {
			return t
		}
	}
	return nil
}

// CompareMetrics checks a fresh report against a baseline and returns one
// message per regression: a higher-is-better metric that dropped more than
// tolerance (fraction, e.g. 0.30) below the baseline, or a lower-is-better
// one that rose more than tolerance above it. Metrics present on only one
// side are ignored, so baselines survive adding experiments.
func CompareMetrics(baseline, current *Report, tolerance float64) []string {
	var regressions []string
	for _, base := range baseline.Experiments {
		cur := current.FindExperiment(base.ID)
		if cur == nil {
			continue
		}
		curByName := make(map[string]Metric, len(cur.Metrics))
		for _, m := range cur.Metrics {
			curByName[m.Name] = m
		}
		for _, bm := range base.Metrics {
			cm, ok := curByName[bm.Name]
			if !ok {
				continue
			}
			if bm.HigherIsBetter {
				floor := bm.Value * (1 - tolerance)
				if cm.Value < floor {
					regressions = append(regressions, fmt.Sprintf(
						"%s %s regressed: %.4g < baseline %.4g - %.0f%% (floor %.4g)",
						base.ID, bm.Name, cm.Value, bm.Value, tolerance*100, floor))
				}
			} else {
				ceil := bm.Value * (1 + tolerance)
				if cm.Value > ceil {
					regressions = append(regressions, fmt.Sprintf(
						"%s %s regressed: %.4g > baseline %.4g + %.0f%% (ceiling %.4g)",
						base.ID, bm.Name, cm.Value, bm.Value, tolerance*100, ceil))
				}
			}
		}
	}
	return regressions
}

// Format renders the table as aligned text.
func (t *Table) Format() string {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s — %s\n", t.ID, t.Title)
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			sb.WriteString(cell)
			if i < len(widths) {
				sb.WriteString(strings.Repeat(" ", widths[i]-len(cell)))
			}
		}
		sb.WriteString("\n")
	}
	writeRow(t.Columns)
	seps := make([]string, len(t.Columns))
	for i := range seps {
		seps[i] = strings.Repeat("-", widths[i])
	}
	writeRow(seps)
	for _, row := range t.Rows {
		writeRow(row)
	}
	for _, note := range t.Notes {
		sb.WriteString("  note: " + note + "\n")
	}
	return sb.String()
}

// Experiment is one reproducible experiment.
type Experiment struct {
	ID    string
	Title string
	Run   func(scale Scale) (*Table, error)
}

// Experiments returns all experiments keyed by lower-case id.
func Experiments() map[string]Experiment {
	exps := []Experiment{
		{ID: "E1", Title: "Multi-stage pipeline: DB2 materialisation vs accelerator-only tables", Run: RunE1Pipeline},
		{ID: "E2", Title: "Analytical query acceleration: DB2 row engine vs accelerator", Run: RunE2QueryAcceleration},
		{ID: "E3", Title: "Load paths: DB2 insert+replication vs loader vs loader into AOT", Run: RunE3LoadPaths},
		{ID: "E4", Title: "AOT DML under the DB2 transaction context: correctness and overhead", Run: RunE4Transactions},
		{ID: "E5", Title: "Scoring: client-side extraction vs in-database procedure", Run: RunE5Scoring},
		{ID: "E6", Title: "In-database model training on the accelerator", Run: RunE6Training},
		{ID: "E7", Title: "Ablation: offload and AOT design choices", Run: RunE7Ablation},
		{ID: "E8", Title: "Governance: privilege enforcement before delegation", Run: RunE8Governance},
		{ID: "E9", Title: "Sharded scan throughput scaling across a multi-accelerator fleet", Run: RunE9ShardedScan},
		{ID: "E10", Title: "Join placement: co-located shard-local joins vs coordinator gather", Run: RunE10ColocatedJoin},
		{ID: "E11", Title: "Elastic fleet: online rebalance vs stop-the-world re-load", Run: RunE11Rebalance},
		{ID: "E12", Title: "Distributed analytics: shard-local train/score vs coordinator gather", Run: RunE12DistributedAnalytics},
		{ID: "E13", Title: "Vectorized batch engine vs row-at-a-time execution", Run: RunE13Vectorized},
		{ID: "E14", Title: "Tracing and metrics overhead on the hot query path", Run: RunE14Observability},
		{ID: "E15", Title: "Operations plane overhead under concurrent scrapes", Run: RunE15OpsOverhead},
		{ID: "E16", Title: "Durability: WAL ingest overhead and recovery time", Run: RunE16Durability},
		{ID: "E17", Title: "Serving layer: mixed interactive/batch load, admission control on vs off", Run: RunE17Serving},
		{ID: "E18", Title: "Batch hash joins, dictionary encoding and binary shard shipping", Run: RunE18JoinDictionary},
		{ID: "F1", Title: "Architecture inventory and data paths (Figure 1)", Run: RunF1Architecture},
	}
	out := make(map[string]Experiment, len(exps))
	for _, e := range exps {
		out[strings.ToLower(e.ID)] = e
	}
	return out
}

// IDs returns the experiment ids in order.
func IDs() []string {
	var ids []string
	for id := range Experiments() {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes one experiment by id.
func Run(id string, scale Scale) (*Table, error) {
	exp, ok := Experiments()[strings.ToLower(id)]
	if !ok {
		return nil, fmt.Errorf("bench: unknown experiment %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return exp.Run(scale)
}

// ---------------------------------------------------------------------------
// Shared setup helpers
// ---------------------------------------------------------------------------

func newSystem(scale Scale) *idaax.System {
	return idaax.New(idaax.Config{AcceleratorSlices: scale.Slices, AnalyticsPublic: true})
}

func ms(d time.Duration) string {
	return fmt.Sprintf("%.1f", float64(d.Microseconds())/1000.0)
}

func ratio(a, b time.Duration) string {
	if b == 0 {
		return "inf"
	}
	return fmt.Sprintf("%.1fx", float64(a)/float64(b))
}

func itoa(n int) string { return fmt.Sprintf("%d", n) }

func i64(n int64) string { return fmt.Sprintf("%d", n) }
