package bench

import (
	"fmt"
	"time"

	"idaax"
	"idaax/internal/types"
)

// RunE13Vectorized measures the vectorized batch engine (internal/vexec)
// against the row-at-a-time baseline on the two hottest shapes of the scan
// path: selective scan+filter and grouped aggregation. Both engines execute
// the identical statements over the identical accelerator-only table — the
// A/B switch is System.SetVectorizedExecution — and the differential suite
// pins that their results are equal; the experiment reports throughput (input
// rows per second) and the vectorized/row speedup at two data scales.
func RunE13Vectorized(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E13",
		Title:   "Vectorized batch engine vs row-at-a-time execution",
		Columns: []string{"ROWS", "QUERY", "ENGINE", "ELAPSED_MS", "ROWS_PER_SEC", "RESULT_ROWS", "SPEEDUP"},
	}
	sizes := []int{scale.QueryRows[0], scale.QueryRows[len(scale.QueryRows)-1]}
	queries := []struct {
		key string
		sql string
	}{
		{"scan_filter", "SELECT id, v1, q FROM vx WHERE q >= 4 AND v1 > 650 AND q < 44 AND cat <> 'c-3'"},
		{"groupby", "SELECT grp, COUNT(*), SUM(v1), AVG(v2), MIN(q), MAX(q) FROM vx GROUP BY grp"},
	}

	for si, rows := range sizes {
		sys := newSystem(scale)
		if err := setupVectorTable(sys, rows); err != nil {
			return nil, err
		}
		session := sys.AdminSession()
		iters := 150000 / rows
		if iters < 3 {
			iters = 3
		}

		for _, q := range queries {
			var rowRate float64
			for _, vectorized := range []bool{false, true} {
				sys.SetVectorizedExecution(vectorized)
				// Warm-up run, also used to record the result cardinality.
				res, err := session.Query(q.sql)
				if err != nil {
					return nil, fmt.Errorf("E13 %s (vectorized=%v): %w", q.key, vectorized, err)
				}
				resultRows := len(res.Rows)
				start := time.Now()
				for i := 0; i < iters; i++ {
					if _, err := session.Query(q.sql); err != nil {
						return nil, fmt.Errorf("E13 %s (vectorized=%v): %w", q.key, vectorized, err)
					}
				}
				elapsed := time.Since(start)
				rate := float64(rows*iters) / elapsed.Seconds()

				engine, key := "row-at-a-time", "row"
				if vectorized {
					engine, key = "vectorized", "vec"
				}
				speedup := "1.0x"
				if vectorized && rowRate > 0 {
					speedup = fmt.Sprintf("%.1fx", rate/rowRate)
					t.AddMetric(fmt.Sprintf("%s_speedup_scale%d", q.key, si+1), rate/rowRate, true)
				} else {
					rowRate = rate
				}
				t.AddRow(itoa(rows), q.key, engine, ms(elapsed), fmt.Sprintf("%.0f", rate), itoa(resultRows), speedup)
				t.AddMetric(fmt.Sprintf("%s_rows_per_sec_%s_scale%d", q.key, key, si+1), rate, true)
			}
		}
		sys.Close()
	}
	t.AddNote("Both engines run the identical SQL over the identical accelerator-only table; rows/s counts input rows scanned per second. scan_filter keeps ~4%% of the rows (three numeric vector predicates plus a string <>); groupby aggregates five measures over 64 groups with NULLs in V2.")
	t.AddNote("The vectorized engine keeps data columnar end to end: selection vectors instead of row materialization, typed predicate loops, binary group keys; the row engine materialises every visible row and tree-walks expressions per row.")
	return t, nil
}

// setupVectorTable creates the accelerator-only table VX and bulk-loads
// deterministic rows: 64 groups, 16 categories, uniform measures, and a NULL
// in V2 every 97th row so aggregation NULL semantics are exercised.
func setupVectorTable(sys *idaax.System, rows int) error {
	session := sys.AdminSession()
	ddl := "CREATE TABLE vx (id BIGINT NOT NULL, grp BIGINT, cat VARCHAR, v1 DOUBLE, v2 DOUBLE, q BIGINT) IN ACCELERATOR IDAA1"
	if _, err := session.Exec(ddl); err != nil {
		return err
	}
	const batch = 10000
	buf := make([]types.Row, 0, batch)
	for i := 0; i < rows; i++ {
		v2 := types.NewFloat(float64((i * 31) % 500))
		if i%97 == 0 {
			v2 = types.Null()
		}
		buf = append(buf, types.Row{
			types.NewInt(int64(i)),
			types.NewInt(int64(i % 64)),
			types.NewString(fmt.Sprintf("c-%d", i%16)),
			types.NewFloat(float64((i * 7) % 1000)),
			v2,
			types.NewInt(int64(i % 100)),
		})
		if len(buf) == batch || i == rows-1 {
			if err := fillTable(sys, "VX", buf); err != nil {
				return err
			}
			buf = buf[:0]
		}
	}
	return nil
}
