package bench

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"idaax"
)

// RunE11Rebalance measures what the elastic fleet buys operationally: a
// 3-member fleet with a loaded hash-distributed table grows to 4 members
// while an aggregation workload hammers it. With the online rebalancer the
// workload keeps executing — queries run during the entire migration window —
// and afterwards the new member owns its fair share of the rows. The baseline
// is the pre-elastic procedure: stop the workload, rebuild the table on the
// larger fleet and bulk re-load every row (a stop-the-world window in which
// zero queries execute).
//
// Reported per strategy: the length of the reconfiguration window, how many
// queries completed inside that window, rows moved between shards, and the
// fraction of the table the new member owns afterwards.
func RunE11Rebalance(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E11",
		Title:   "Growing the fleet 3 -> 4: online rebalance vs stop-the-world re-load",
		Columns: []string{"STRATEGY", "ROWS", "WINDOW_MS", "QUERIES_IN_WINDOW", "QPS_IN_WINDOW", "ROWS_MOVED", "NEW_MEMBER_SHARE"},
	}
	rows := scale.LoadRows
	slices := scale.Slices
	if slices <= 0 {
		slices = 2
	}

	// --- Online rebalance: queries keep running through the window. ---
	sys, accelerator := newShardedSystem(3, slices)
	if err := createShardedOrders(sys, accelerator); err != nil {
		return nil, err
	}
	if err := fillShardedOrders(sys, rows); err != nil {
		return nil, err
	}

	var queries int64
	stop := make(chan struct{})
	ready := make(chan struct{})
	var wg sync.WaitGroup
	workload := []string{
		"SELECT COUNT(*), SUM(amount) FROM sharded_orders",
		"SELECT region, COUNT(*) FROM sharded_orders GROUP BY region",
		"SELECT COUNT(*) FROM sharded_orders WHERE id = 4242",
	}
	var readyOnce sync.Once
	var workloadErr error
	wg.Add(1)
	go func() {
		defer wg.Done()
		defer readyOnce.Do(func() { close(ready) }) // never leave <-ready hanging
		session := sys.AdminSession()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			if _, err := session.Query(workload[i%len(workload)]); err != nil {
				workloadErr = err
				return
			}
			atomic.AddInt64(&queries, 1)
			readyOnce.Do(func() { close(ready) })
		}
	}()
	// Only open the window once the workload demonstrably runs — the point
	// is queries DURING the migration, and a small-scale rebalance can
	// finish before the goroutine gets scheduled.
	<-ready
	atomic.StoreInt64(&queries, 0)

	start := time.Now()
	if err := sys.AddShardMember("", "IDAA4", slices); err != nil {
		return nil, err
	}
	if err := sys.WaitForRebalance(""); err != nil {
		return nil, err
	}
	onlineWindow := time.Since(start)
	close(stop)
	wg.Wait()
	if workloadErr != nil {
		return nil, fmt.Errorf("bench: E11 workload query failed: %w", workloadErr)
	}
	onlineQueries := atomic.LoadInt64(&queries)

	st, err := sys.ShardGroupStats("")
	if err != nil {
		return nil, err
	}
	onlineMoved := st.RowsMigrated
	onlineShare, err := newMemberShare(sys)
	if err != nil {
		return nil, err
	}
	t.AddRow("online-rebalance", itoa(rows), ms(onlineWindow), i64(onlineQueries),
		qps(onlineQueries, onlineWindow), i64(onlineMoved), share(onlineShare))
	sys.Close()

	// --- Stop-the-world baseline: drop, recreate on 4 members, re-load. ---
	// The workload is held for the whole window, so QUERIES_IN_WINDOW is 0 by
	// construction — that is the operational gap the online path closes.
	sys2, accelerator2 := newShardedSystem(4, slices)
	if err := createShardedOrders(sys2, accelerator2); err != nil {
		return nil, err
	}
	if err := fillShardedOrders(sys2, rows); err != nil {
		return nil, err
	}
	session := sys2.AdminSession()
	start = time.Now()
	if _, err := session.Exec("DROP TABLE sharded_orders"); err != nil {
		return nil, err
	}
	if err := createShardedOrders(sys2, accelerator2); err != nil {
		return nil, err
	}
	if err := fillShardedOrders(sys2, rows); err != nil {
		return nil, err
	}
	reloadWindow := time.Since(start)
	reloadShare, err := newMemberShare(sys2)
	if err != nil {
		return nil, err
	}
	t.AddRow("stop-the-world-reload", itoa(rows), ms(reloadWindow), "0", "0",
		itoa(rows), share(reloadShare))
	sys2.Close()

	t.AddNote("online rebalance kept the workload running: %d queries completed inside the %.1f ms migration window (stop-the-world allows none)",
		onlineQueries, float64(onlineWindow.Microseconds())/1000.0)
	t.AddNote("rendezvous hashing moved %d of %d rows (%.0f%%) — only the keys the new member wins; a full re-load rewrites all %d",
		onlineMoved, rows, 100*float64(onlineMoved)/float64(rows), rows)
	return t, nil
}

// createShardedOrders creates the E9/E11 orders table on the accelerator.
func createShardedOrders(sys *idaax.System, accelerator string) error {
	ddl := fmt.Sprintf(
		"CREATE TABLE sharded_orders (id BIGINT NOT NULL, customer_id BIGINT, amount DOUBLE, region VARCHAR(8)) IN ACCELERATOR %s DISTRIBUTE BY HASH(id)",
		accelerator)
	_, err := sys.AdminSession().Exec(ddl)
	return err
}

// newMemberShare returns the fraction of the table's rows held by the last
// member of the SHARDS group.
func newMemberShare(sys *idaax.System) (float64, error) {
	router, err := sys.Coordinator().ShardGroup("SHARDS")
	if err != nil {
		return 0, err
	}
	members := router.Members()
	total, last := 0, 0
	for i, m := range members {
		n, err := m.RowCount(0, "SHARDED_ORDERS")
		if err != nil {
			return 0, err
		}
		total += n
		if i == len(members)-1 {
			last = n
		}
	}
	if total == 0 {
		return 0, nil
	}
	return float64(last) / float64(total), nil
}

func qps(n int64, d time.Duration) string {
	if d <= 0 {
		return "inf"
	}
	return fmt.Sprintf("%.0f", float64(n)/d.Seconds())
}

func share(f float64) string { return fmt.Sprintf("%.1f%%", 100*f) }
