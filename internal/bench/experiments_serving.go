package bench

import (
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"

	"idaax"
	"idaax/internal/wire"
)

// servingClients returns the concurrent wire-client count for E17: 1200 at
// full scale (the paper-style "many more clients than slots" regime), a
// CI-friendly 64 otherwise.
func servingClients(scale Scale) int {
	if scale.Name == "full" {
		return 1200
	}
	return 64
}

// thinkTimes returns the per-class pause between a client's statements. The
// closed loop models an OLTP front end: at full scale 900 interactive
// clients at ~1 statement/s plus 300 batch clients at ~0.5/s offer a load
// moderately above a small runner's capacity — enough to saturate, not so
// much that the benchmark harness itself becomes the queue. The small scale
// stays below saturation; its gated metric is throughput, which is then
// think-time-dominated and very stable across runners.
func thinkTimes(scale Scale) (interactive, batch time.Duration) {
	if scale.Name == "full" {
		return time.Second, 2 * time.Second
	}
	return 250 * time.Millisecond, 500 * time.Millisecond
}

// RunE17Serving measures the serving layer under a mixed interactive/batch
// load with many more clients than execution slots: every client speaks the
// v1 wire protocol to a ServeWire front end over real loopback sockets.
// Three of four clients are interactive (point reads, OLTP-front style), one
// of four is batch (offloaded aggregates). The same workload runs twice —
// once with admission control on (bounded slots, per-class queues, fast-fail
// 429s) and once with it off — so the table shows what admission buys: the
// interactive p99 stays bounded because excess load queues or is shed with a
// retryable error instead of piling onto the executor.
//
// Only the served-throughput metrics are regression-gated. Tail latency
// under deliberate saturation is exactly the quantity a noisy shared runner
// distorts most, so p50/p99 appear in the table for the report but are not
// compared against the baseline.
func RunE17Serving(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E17",
		Title:   "Serving layer: mixed interactive/batch load, admission control on vs off",
		Columns: []string{"MODE", "CLASS", "CLIENTS", "SERVED", "SHED", "P50_MS", "P99_MS"},
	}
	clients := servingClients(scale)
	iters := 6
	rows := scale.ChurnRows
	queue := clients / 8
	if queue < 4 {
		queue = 4
	}

	// Two execution slots, deliberately far below the client count: the
	// experiment measures what the admission layer does when offered load is
	// hundreds of times the execution capacity, and a small fixed slot count
	// keeps that regime reachable on small CI runners where a handful of
	// admitted statements already saturate the CPU.
	modes := []struct {
		name  string
		slots int // ServeConfig.AdmissionSlots; negative = admission off
	}{
		{"admission", 2},
		{"raw", -1},
	}
	for _, mode := range modes {
		res, err := serveMixedLoad(scale, mode.slots, queue, clients, iters, rows)
		if err != nil {
			return nil, fmt.Errorf("E17 %s: %w", mode.name, err)
		}
		for _, class := range []string{"interactive", "batch"} {
			c := res.classes[class]
			t.AddRow(mode.name, class,
				fmt.Sprintf("%d", c.clients),
				fmt.Sprintf("%d", len(c.latencies)),
				fmt.Sprintf("%d", c.shed),
				ms(percentile(c.latencies, 0.50)),
				ms(percentile(c.latencies, 0.99)))
		}
		served := len(res.classes["interactive"].latencies) + len(res.classes["batch"].latencies)
		perSec := float64(served) / res.elapsed.Seconds()
		t.AddMetric("served_per_sec_"+mode.name, perSec, true)
		if mode.slots >= 0 {
			t.AddNote("admission on: %d slots, per-class queue %d, 150ms max queue wait; %d of %d requests shed with retryable 429s at %d clients",
				res.slots, queue, res.classes["interactive"].shed+res.classes["batch"].shed,
				clients*iters, clients)
		}
	}
	t.AddNote("%d concurrent wire clients (3:1 interactive point reads : batch aggregates) over %d sharded rows; p50/p99 are per-request wall time over served requests only", clients, rows)
	return t, nil
}

// servingClassResult aggregates one priority class's outcome across clients.
type servingClassResult struct {
	clients   int
	shed      int
	latencies []time.Duration
}

type servingResult struct {
	classes map[string]*servingClassResult
	elapsed time.Duration
	slots   int
}

// serveMixedLoad stands up a fresh 3-shard fleet behind ServeWire and drives
// it with `clients` concurrent wire clients, each issuing `iters` statements
// after a shared barrier. Shed requests (429) are counted, not retried, so
// latencies measure served requests and shed counts measure fast-fail work
// rejection.
func serveMixedLoad(scale Scale, slots, queue, clients, iters, rows int) (*servingResult, error) {
	// One slice per shard: intra-query fan-out is E9/E13's subject, and
	// letting each statement grab every core would saturate the box with a
	// couple of admitted aggregates and starve the serving path the
	// experiment is actually measuring.
	sys, accel := newShardedSystem(3, 1)
	defer sys.Close()
	session := sys.AdminSession()
	ddl := fmt.Sprintf(
		"CREATE TABLE serving_orders (id BIGINT NOT NULL, customer_id BIGINT, amount DOUBLE, region VARCHAR(8)) IN ACCELERATOR %s DISTRIBUTE BY HASH(id)",
		accel)
	if _, err := session.Exec(ddl); err != nil {
		return nil, err
	}
	regions := []string{"EU", "US", "APAC", "LATAM"}
	const batch = 2000
	for lo := 0; lo < rows; lo += batch {
		hi := lo + batch
		if hi > rows {
			hi = rows
		}
		var sb strings.Builder
		sb.WriteString("INSERT INTO serving_orders VALUES ")
		for i := lo; i < hi; i++ {
			if i > lo {
				sb.WriteString(", ")
			}
			fmt.Fprintf(&sb, "(%d, %d, %g, '%s')", i, i%997, float64(i%400)*0.25, regions[i%len(regions)])
		}
		if _, err := session.Exec(sb.String()); err != nil {
			return nil, err
		}
	}

	srv, err := sys.ServeWire(idaax.ServeConfig{
		Addr:           "127.0.0.1:0",
		AdmissionSlots: slots,
		AdmissionQueue: queue,
		// The latency bound the admission mode promises: a request that
		// cannot start within this window is shed with a retryable 429
		// instead of joining a convoy. This is what keeps the served p99
		// flat when offered load is hundreds of clients per slot.
		AdmissionMaxWait: 150 * time.Millisecond,
		DefaultUser:      benchUser,
		IdleTimeout:      -1,
		DisableOps:       true,
	})
	if err != nil {
		return nil, err
	}

	thinkInteractive, thinkBatch := thinkTimes(scale)
	aggregates := []string{
		"SELECT region, COUNT(*), SUM(amount) FROM serving_orders GROUP BY region",
		"SELECT COUNT(*), AVG(amount) FROM serving_orders WHERE amount > 50",
		"SELECT customer_id, SUM(amount) AS total FROM serving_orders GROUP BY customer_id HAVING SUM(amount) > 100 ORDER BY total DESC LIMIT 10",
	}

	type clientOut struct {
		class     string
		shed      int
		latencies []time.Duration
		err       error
	}
	outs := make([]clientOut, clients)
	start := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			out := &outs[id]
			out.class = "interactive"
			if id%4 == 0 {
				out.class = "batch"
			}
			// Each client owns its transport and socket, like a real remote
			// client would. A single shared http.Transport serialises 1200
			// goroutines on its pool mutex and throttles arrivals below the
			// admission rate, hiding the very contention being measured.
			tr := &http.Transport{MaxIdleConnsPerHost: 1}
			defer tr.CloseIdleConnections()
			c := wire.NewClient(srv.Addr(), &http.Client{Transport: tr, Timeout: 120 * time.Second})
			c.SetPriority(out.class)
			// Establish the connection before the barrier so the measured
			// window exercises admission, not TCP handshakes; a shed warm-up
			// is fine, the socket exists either way.
			_, _ = c.Query(fmt.Sprintf("SELECT amount FROM serving_orders WHERE id = %d", id%rows))
			<-start
			// Closed-loop with think time, first arrivals spread evenly over
			// one think period: a single synchronized burst measures the
			// load generator's own convoy through the kernel, not the
			// serving layer. With paced arrivals the offered load still
			// exceeds execution capacity, but the queueing happens where
			// admission can see it.
			think := thinkInteractive
			if out.class == "batch" {
				think = thinkBatch
			}
			time.Sleep(time.Duration(id) * thinkInteractive / time.Duration(clients))
			for j := 0; j < iters; j++ {
				if j > 0 {
					time.Sleep(think)
				}
				var sql string
				if out.class == "batch" {
					sql = aggregates[(id+j)%len(aggregates)]
				} else {
					sql = fmt.Sprintf("SELECT amount FROM serving_orders WHERE id = %d", (id*31+j*977)%rows)
				}
				t0 := time.Now()
				_, err := c.Query(sql)
				if err != nil {
					if wire.IsShed(err) {
						// Fast-fail is the point: count it, back off briefly
						// like a well-behaved client, move on. Retrying in a
						// tight loop would turn the load generator into a
						// shed-counting busy-wait.
						out.shed++
						time.Sleep(10 * time.Millisecond)
						continue
					}
					out.err = err
					return
				}
				out.latencies = append(out.latencies, time.Since(t0))
			}
		}(i)
	}
	t0 := time.Now()
	close(start)
	wg.Wait()
	elapsed := time.Since(t0)

	res := &servingResult{
		classes: map[string]*servingClassResult{
			"interactive": {},
			"batch":       {},
		},
		elapsed: elapsed,
	}
	if slots >= 0 {
		res.slots = srv.AdmissionStats().Slots
	}
	for i := range outs {
		if outs[i].err != nil {
			return nil, outs[i].err
		}
		c := res.classes[outs[i].class]
		c.clients++
		c.shed += outs[i].shed
		c.latencies = append(c.latencies, outs[i].latencies...)
	}
	return res, nil
}

// percentile returns the p-th (0..1) percentile of the samples, sorting in
// place; zero when there are no samples.
func percentile(d []time.Duration, p float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	sort.Slice(d, func(i, j int) bool { return d[i] < d[j] })
	idx := int(float64(len(d)-1) * p)
	return d[idx]
}
