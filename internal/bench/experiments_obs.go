package bench

import (
	"fmt"
	"time"

	"idaax/internal/obs"
	"idaax/internal/sqlparse"
)

// RunE14Observability measures what query-level observability costs on the hot
// query path: the E13 scan-filter and grouped-aggregation workloads executed
// untraced (nil span — no span tree, no metric work) and traced (a root span
// per statement with the full per-scan child-span tree, plus the statement
// counter, the per-class latency histogram and a query-history record — the
// exact work Session.Exec adds to every statement). Both modes run the
// identical parsed statement against the identical backend, so the ratio is
// pure observability overhead. The tentpole requirement is that tracing is
// cheap enough to leave on: overhead must stay within a few percent.
func RunE14Observability(scale Scale) (*Table, error) {
	t := &Table{
		ID:      "E14",
		Title:   "Tracing and metrics overhead on the hot query path",
		Columns: []string{"ROWS", "QUERY", "MODE", "ELAPSED_MS", "ROWS_PER_SEC", "OVERHEAD"},
	}
	sizes := []int{scale.QueryRows[0], scale.QueryRows[len(scale.QueryRows)-1]}
	queries := []struct {
		key string
		sql string
	}{
		{"scan_filter", "SELECT id, v1, q FROM vx WHERE q >= 4 AND v1 > 650 AND q < 44 AND cat <> 'c-3'"},
		{"groupby", "SELECT grp, COUNT(*), SUM(v1), AVG(v2), MIN(q), MAX(q) FROM vx GROUP BY grp"},
	}

	for si, rows := range sizes {
		sys := newSystem(scale)
		if err := setupVectorTable(sys, rows); err != nil {
			return nil, err
		}
		be, err := sys.Coordinator().Accelerator("IDAA1")
		if err != nil {
			return nil, err
		}
		reg := obs.NewRegistry()
		hist := obs.NewHistory(256, 64)
		hist.SetSlowThreshold(100 * time.Millisecond)
		iters := 150000 / rows
		if iters < 3 {
			iters = 3
		}

		for _, q := range queries {
			st, err := sqlparse.Parse(q.sql)
			if err != nil {
				return nil, err
			}
			sel := st.(*sqlparse.SelectStmt)

			// Each mode runs three repetitions and keeps the fastest, so the
			// overhead ratio compares best-case against best-case and shared
			// runner noise cancels instead of being attributed to tracing.
			measure := func(traced bool) (time.Duration, error) {
				var best time.Duration
				for rep := 0; rep < 3; rep++ {
					start := time.Now()
					for i := 0; i < iters; i++ {
						if !traced {
							if _, err := be.QueryTraced(0, sel, nil); err != nil {
								return 0, err
							}
							continue
						}
						sp := obs.NewSpan("statement")
						rel, err := be.QueryTraced(0, sel, sp)
						sp.Finish()
						if err != nil {
							return 0, err
						}
						reg.Counter("stmt_total").Inc()
						reg.Histogram("stmt_seconds_select").Observe(sp.Duration())
						hist.Record(obs.QueryRecord{
							SQL: q.sql, User: benchUser, Class: "select",
							Routed: "IDAA1", Start: start, Elapsed: sp.Duration(),
							Rows: len(rel.Rows),
						})
					}
					if el := time.Since(start); best == 0 || el < best {
						best = el
					}
				}
				return best, nil
			}

			untraced, err := measure(false)
			if err != nil {
				return nil, fmt.Errorf("E14 %s untraced: %w", q.key, err)
			}
			traced, err := measure(true)
			if err != nil {
				return nil, fmt.Errorf("E14 %s traced: %w", q.key, err)
			}
			overhead := float64(traced) / float64(untraced)

			for _, m := range []struct {
				mode     string
				elapsed  time.Duration
				overhead string
			}{
				{"untraced", untraced, "1.00x"},
				{"traced", traced, fmt.Sprintf("%.2fx", overhead)},
			} {
				rate := float64(rows*iters) / m.elapsed.Seconds()
				t.AddRow(itoa(rows), q.key, m.mode, ms(m.elapsed), fmt.Sprintf("%.0f", rate), m.overhead)
				t.AddMetric(fmt.Sprintf("%s_rows_per_sec_%s_scale%d", q.key, m.mode, si+1), rate, true)
			}
			t.AddMetric(fmt.Sprintf("%s_overhead_scale%d", q.key, si+1), overhead, false)
		}
		sys.Close()
	}
	t.AddNote("Both modes execute the identical pre-parsed statement on the identical accelerator; traced adds the per-statement root span, the per-scan child spans with row/batch/pruning counters, a statement counter increment, a latency-histogram observation and a query-history ring write — exactly what the session layer does for every real statement.")
	t.AddNote("OVERHEAD is traced/untraced elapsed (best of three repetitions each); the CI baseline gates it at ~5%% so tracing stays cheap enough to leave on permanently.")
	return t, nil
}
