package bench

import (
	"fmt"
	"strings"
	"testing"
)

// TestExperimentRegistry checks that every documented experiment is present
// and runnable at a tiny scale (E4, E8 and F1 are cheap enough to execute in a
// unit test; the heavier experiments are exercised by bench_test.go at the
// repository root and by cmd/idaabench).
func TestExperimentRegistry(t *testing.T) {
	ids := IDs()
	want := []string{"e1", "e10", "e11", "e12", "e13", "e14", "e15", "e16", "e17", "e18", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "f1"}
	if len(ids) != len(want) {
		t.Fatalf("experiments: %v", ids)
	}
	for i, id := range want {
		if ids[i] != id {
			t.Fatalf("experiment list mismatch: %v", ids)
		}
	}
	if _, err := Run("nope", SmallScale()); err == nil {
		t.Fatal("unknown experiment should fail")
	}
}

func TestShardedScanExperiment(t *testing.T) {
	scale := SmallScale()
	scale.LoadRows = 4000
	table, err := Run("e9", scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3 {
		t.Fatalf("expected one row per fleet size, got %d", len(table.Rows))
	}
	foundPruning := false
	for _, note := range table.Notes {
		if strings.Contains(note, "touched 1 of 4 shards") {
			foundPruning = true
		}
	}
	if !foundPruning {
		t.Fatalf("pruning note missing or pruning touched more than one shard: %v", table.Notes)
	}
}

// TestColocatedJoinExperiment is the planner regression smoke: E10 must run
// and the planner configuration must move fewer rows than the forced gather
// plan for every join class at every scale. CI runs it in -short mode.
func TestColocatedJoinExperiment(t *testing.T) {
	scale := SmallScale()
	scale.LoadRows = 4000
	if testing.Short() {
		scale.LoadRows = 1600
	}
	table, err := Run("e10", scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 6 {
		t.Fatalf("expected 3 join classes at two scales, got %d rows", len(table.Rows))
	}
	for _, row := range table.Rows {
		var movedGather, movedPlanner int64
		fmt.Sscanf(row[5], "%d", &movedGather)
		fmt.Sscanf(row[6], "%d", &movedPlanner)
		if movedPlanner >= movedGather {
			t.Fatalf("%s at %s rows: planner moved %d rows, gather %d — co-located placement not effective:\n%s",
				row[1], row[0], movedPlanner, movedGather, table.Format())
		}
	}
	colocatedSeen := false
	for _, note := range table.Notes {
		if strings.Contains(note, "colocated_joins=") && !strings.Contains(note, "colocated_joins=0") {
			colocatedSeen = true
		}
	}
	if !colocatedSeen {
		t.Fatalf("no co-located joins recorded:\n%s", table.Format())
	}
}

// TestRebalanceExperiment is the elastic-fleet smoke: E11 must run, queries
// must complete inside the online migration window (no stop-the-world), and
// the new member must own a meaningful share of the table afterwards. CI runs
// it in -short mode.
func TestRebalanceExperiment(t *testing.T) {
	scale := SmallScale()
	scale.LoadRows = 6000
	if testing.Short() {
		scale.LoadRows = 2400
	}
	table, err := Run("e11", scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("expected online + stop-the-world rows, got %d:\n%s", len(table.Rows), table.Format())
	}
	online, reload := table.Rows[0], table.Rows[1]
	var onlineQueries int64
	fmt.Sscanf(online[3], "%d", &onlineQueries)
	if onlineQueries == 0 {
		t.Fatalf("no query completed during the online rebalance window:\n%s", table.Format())
	}
	if reload[3] != "0" {
		t.Fatalf("stop-the-world baseline ran queries in its window:\n%s", table.Format())
	}
	var onlineShare float64
	fmt.Sscanf(online[6], "%f%%", &onlineShare)
	if onlineShare < 15 {
		t.Fatalf("new member owns only %.1f%% after online rebalance:\n%s", onlineShare, table.Format())
	}
	var moved int64
	fmt.Sscanf(online[5], "%d", &moved)
	if moved <= 0 || moved >= int64(scale.LoadRows) {
		t.Fatalf("online rebalance moved %d of %d rows (expected a strict subset):\n%s", moved, scale.LoadRows, table.Format())
	}
}

// TestDistributedAnalyticsExperiment is the E12 smoke CI runs on every PR:
// the scatter/merge path must gather strictly fewer rows to the coordinator
// than the forced gather path at every scale, must write its predictions
// shard-local, and must emit the machine-readable metrics the bench-regression
// comparison consumes.
func TestDistributedAnalyticsExperiment(t *testing.T) {
	scale := SmallScale()
	scale.ChurnRows = 3000
	if testing.Short() {
		scale.ChurnRows = 1200
	}
	table, err := Run("e12", scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("expected gather+distributed rows at two scales, got %d:\n%s", len(table.Rows), table.Format())
	}
	for i := 0; i < len(table.Rows); i += 2 {
		gather, dist := table.Rows[i], table.Rows[i+1]
		var gatheredRows, distRows, localWrites int64
		fmt.Sscanf(gather[5], "%d", &gatheredRows)
		fmt.Sscanf(dist[5], "%d", &distRows)
		fmt.Sscanf(dist[6], "%d", &localWrites)
		if distRows >= gatheredRows {
			t.Fatalf("scale %s: distributed gathered %d rows, gather path %d — no data movement saved:\n%s",
				gather[0], distRows, gatheredRows, table.Format())
		}
		if localWrites == 0 {
			t.Fatalf("scale %s: no shard-local prediction writes recorded:\n%s", gather[0], table.Format())
		}
	}
	metricNames := map[string]bool{}
	for _, m := range table.Metrics {
		metricNames[m.Name] = true
	}
	for _, want := range []string{"train_rows_per_sec_distributed_scale1", "rows_gathered_gather_scale1", "train_speedup_scale1"} {
		if !metricNames[want] {
			t.Fatalf("metric %s missing from report: %v", want, metricNames)
		}
	}
}

// TestVectorizedExperiment is the E13 smoke CI runs on every PR: the
// vectorized engine must return the same result cardinalities as the row
// engine and must beat it on both query shapes at both scales (the full ≥2x
// acceptance bar is enforced by the checked-in bench-regression baseline; the
// smoke uses softer floors so shared-runner noise cannot flake the job).
func TestVectorizedExperiment(t *testing.T) {
	scale := SmallScale()
	if testing.Short() {
		scale.QueryRows = []int{2000, 20000}
	}
	table, err := Run("e13", scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 8 {
		t.Fatalf("expected row/vectorized pairs for two queries at two scales, got %d:\n%s", len(table.Rows), table.Format())
	}
	for i := 0; i < len(table.Rows); i += 2 {
		row, vec := table.Rows[i], table.Rows[i+1]
		if row[5] != vec[5] {
			t.Fatalf("%s at %s rows: result cardinality differs between engines (%s vs %s):\n%s",
				row[1], row[0], row[5], vec[5], table.Format())
		}
		var rowRate, vecRate float64
		fmt.Sscanf(row[4], "%f", &rowRate)
		fmt.Sscanf(vec[4], "%f", &vecRate)
		minSpeedup := 1.2
		if row[1] == "groupby" {
			minSpeedup = 2.0
		}
		if vecRate < rowRate*minSpeedup {
			t.Fatalf("%s at %s rows: vectorized %.0f rows/s vs row %.0f rows/s (< %.1fx):\n%s",
				row[1], row[0], vecRate, rowRate, minSpeedup, table.Format())
		}
	}
	metricNames := map[string]bool{}
	for _, m := range table.Metrics {
		metricNames[m.Name] = true
	}
	for _, want := range []string{
		"scan_filter_rows_per_sec_vec_scale2", "groupby_rows_per_sec_row_scale1",
		"scan_filter_speedup_scale2", "groupby_speedup_scale2",
	} {
		if !metricNames[want] {
			t.Fatalf("metric %s missing from report: %v", want, metricNames)
		}
	}
}

// TestJoinDictionaryExperiment is the E18 smoke CI runs on every PR: the
// batch hash join must beat the row engine by >= 2x on the co-located grouped
// join at both scales (the acceptance bar; measured headroom is 3x+ so shared
// runners cannot flake it), result cardinalities must match between engines,
// the dictionary sweep must cover the spilled pair, and binary frames must
// move strictly fewer shard -> coordinator bytes than the text estimate (the
// byte counts are deterministic, so the strict inequality cannot flake).
func TestJoinDictionaryExperiment(t *testing.T) {
	scale := SmallScale()
	if testing.Short() {
		scale.QueryRows = []int{2000, 20000}
	}
	table, err := Run("e18", scale)
	if err != nil {
		t.Fatal(err)
	}
	var joinRows, dictRows, wireRows [][]string
	for _, row := range table.Rows {
		switch row[0] {
		case "join":
			joinRows = append(joinRows, row)
		case "dict":
			dictRows = append(dictRows, row)
		case "wire":
			wireRows = append(wireRows, row)
		}
	}
	if len(joinRows) != 8 || len(dictRows) != 12 || len(wireRows) != 2 {
		t.Fatalf("expected 8 join + 12 dict + 2 wire rows, got %d/%d/%d:\n%s",
			len(joinRows), len(dictRows), len(wireRows), table.Format())
	}
	for i := 0; i < len(joinRows); i += 2 {
		row, vec := joinRows[i], joinRows[i+1]
		if row[5] != vec[5] {
			t.Fatalf("%s at %s rows: result cardinality differs between engines (%s vs %s):\n%s",
				row[2], row[1], row[5], vec[5], table.Format())
		}
		var rowRate, vecRate float64
		fmt.Sscanf(row[4], "%f", &rowRate)
		fmt.Sscanf(vec[4], "%f", &vecRate)
		minSpeedup := 1.0
		if strings.HasPrefix(row[2], "join_groupby") {
			minSpeedup = 2.0
		}
		if vecRate < rowRate*minSpeedup {
			t.Fatalf("%s at %s rows: vectorized %.0f rows/s vs row %.0f rows/s (< %.1fx):\n%s",
				row[2], row[1], vecRate, rowRate, minSpeedup, table.Format())
		}
	}
	spilledSeen := false
	for _, row := range dictRows {
		if strings.Contains(row[2], "/spilled") {
			spilledSeen = true
		}
	}
	if !spilledSeen {
		t.Fatalf("dictionary sweep never drove a column past the threshold:\n%s", table.Format())
	}
	metrics := map[string]float64{}
	for _, m := range table.Metrics {
		metrics[m.Name] = m.Value
	}
	for _, want := range []string{
		"join_groupby_speedup_scale1", "join_groupby_speedup_scale2",
		"join_groupby_rows_per_sec_vec_scale2", "join_select_rows_per_sec_row_scale1",
		"dict_filter_speedup_card8", "dict_groupby_rows_per_sec_card256",
	} {
		if _, ok := metrics[want]; !ok {
			t.Fatalf("metric %s missing from report: %v", want, metrics)
		}
	}
	if r := metrics["wire_text_over_frame_ratio"]; r <= 1.0 {
		t.Fatalf("wire_text_over_frame_ratio = %.3f: binary frames did not beat the text estimate:\n%s", r, table.Format())
	}
}

// TestObservabilityOverheadExperiment is the E14 smoke: tracing must add only
// marginal overhead to the hot query path. The CI bench gate enforces the ~5%
// acceptance bar against the checked-in baseline; the smoke uses a soft 1.5x
// ceiling so shared-runner noise cannot flake the unit-test job while still
// catching an accidentally quadratic or allocating span path.
func TestObservabilityOverheadExperiment(t *testing.T) {
	scale := SmallScale()
	scale.QueryRows = []int{2000, 20000}
	table, err := Run("e14", scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 8 {
		t.Fatalf("expected untraced/traced pairs for two queries at two scales, got %d:\n%s", len(table.Rows), table.Format())
	}
	overheads := 0
	for _, m := range table.Metrics {
		if !strings.HasSuffix(m.Name, "_scale1") && !strings.HasSuffix(m.Name, "_scale2") {
			continue
		}
		if strings.Contains(m.Name, "_overhead_") {
			overheads++
			if m.Value > 1.5 {
				t.Fatalf("%s = %.2fx: tracing overhead far above the leave-it-on bar:\n%s", m.Name, m.Value, table.Format())
			}
			if m.Value <= 0 {
				t.Fatalf("%s = %.2f: bogus overhead ratio", m.Name, m.Value)
			}
		}
	}
	if overheads != 4 {
		t.Fatalf("expected 4 overhead metrics, got %d:\n%s", overheads, table.Format())
	}
}

// TestOpsOverheadExperiment is the E15 smoke: the live operations plane —
// HTTP server under concurrent scrapes plus the health watchdog — must add
// only marginal overhead to the hot query path. The CI bench gate enforces
// the ~5% acceptance bar against the checked-in baseline; the smoke uses a
// soft 1.5x ceiling so shared-runner noise cannot flake the unit-test job
// while still catching a lock held across the scrape path or an accidentally
// hot watchdog loop.
func TestOpsOverheadExperiment(t *testing.T) {
	scale := SmallScale()
	scale.QueryRows = []int{2000, 20000}
	table, err := Run("e15", scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 8 {
		t.Fatalf("expected idle/ops pairs for two queries at two scales, got %d:\n%s", len(table.Rows), table.Format())
	}
	overheads := 0
	for _, m := range table.Metrics {
		if strings.Contains(m.Name, "_overhead_") {
			overheads++
			if m.Value > 1.5 {
				t.Fatalf("%s = %.2fx: ops-plane overhead far above the scrape-in-production bar:\n%s", m.Name, m.Value, table.Format())
			}
			if m.Value <= 0 {
				t.Fatalf("%s = %.2f: bogus overhead ratio", m.Name, m.Value)
			}
		}
	}
	if overheads != 4 {
		t.Fatalf("expected 4 overhead metrics, got %d:\n%s", overheads, table.Format())
	}
}

// TestDurabilityExperiment is the E16 smoke CI runs on every PR: group-committed
// WAL ingest must stay within the 2x acceptance bar, and every recovery run
// inside the experiment verifies exact row counts — a lossy recovery fails Run
// itself. wal=always appears in the report table but carries no gated metric:
// its throughput is the runner's raw fsync latency, which varies several-fold
// between machines and says nothing about the code.
func TestDurabilityExperiment(t *testing.T) {
	scale := SmallScale()
	scale.LoadRows = 10000
	scale.QueryRows = []int{4000, 12000}
	if testing.Short() {
		scale.LoadRows = 5000
		scale.QueryRows = []int{2000, 6000}
	}
	table, err := Run("e16", scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 3+len(scale.QueryRows) {
		t.Fatalf("expected 3 ingest modes + %d recovery sizes, got %d rows:\n%s",
			len(scale.QueryRows), len(table.Rows), table.Format())
	}
	metrics := map[string]float64{}
	for _, m := range table.Metrics {
		metrics[m.Name] = m.Value
	}
	v, ok := metrics["wal_slowdown_grouped"]
	if !ok {
		t.Fatalf("metric wal_slowdown_grouped missing:\n%s", table.Format())
	}
	if v <= 0 || v > 2.0 {
		t.Fatalf("wal_slowdown_grouped = %.2fx, outside the 2x acceptance bar:\n%s", v, table.Format())
	}
	if _, ok := metrics["wal_slowdown_always"]; ok {
		t.Fatalf("wal=always must not be regression-gated (fsync latency is hardware, not code):\n%s", table.Format())
	}
	for i := range scale.QueryRows {
		if _, ok := metrics[fmt.Sprintf("recovery_rows_per_sec_scale%d", i+1)]; !ok {
			t.Fatalf("recovery metric for scale %d missing:\n%s", i+1, table.Format())
		}
	}
}

// TestServingExperiment is the E17 smoke CI runs on every PR: the full wire
// path — loopback HTTP, session handling, admission control — must serve a
// mixed interactive/batch load in both modes. Tail latencies under
// deliberate saturation are too noisy to assert on here (the CI bench gate
// checks the served-throughput metrics against the baseline); the smoke pins
// the table shape and that both modes actually served traffic.
func TestServingExperiment(t *testing.T) {
	scale := SmallScale()
	scale.ChurnRows = 2000
	table, err := Run("e17", scale)
	if err != nil {
		t.Fatal(err)
	}
	if len(table.Rows) != 4 {
		t.Fatalf("expected 2 modes x 2 classes, got %d rows:\n%s", len(table.Rows), table.Format())
	}
	metrics := map[string]float64{}
	for _, m := range table.Metrics {
		metrics[m.Name] = m.Value
	}
	for _, name := range []string{"served_per_sec_admission", "served_per_sec_raw"} {
		if metrics[name] <= 0 {
			t.Fatalf("metric %s missing or non-positive:\n%s", name, table.Format())
		}
	}
}

// TestCompareMetrics pins the regression-comparison semantics the CI gate
// relies on.
func TestCompareMetrics(t *testing.T) {
	base := &Report{Experiments: []*Table{{
		ID: "E12",
		Metrics: []Metric{
			{Name: "thr", Value: 100, HigherIsBetter: true},
			{Name: "moved", Value: 1000, HigherIsBetter: false},
			{Name: "only_in_base", Value: 5, HigherIsBetter: true},
		},
	}}}
	ok := &Report{Experiments: []*Table{{
		ID: "E12",
		Metrics: []Metric{
			{Name: "thr", Value: 71, HigherIsBetter: true},
			{Name: "moved", Value: 1299, HigherIsBetter: false},
			{Name: "only_in_current", Value: 5, HigherIsBetter: true},
		},
	}}}
	if regs := CompareMetrics(base, ok, 0.30); len(regs) != 0 {
		t.Fatalf("within tolerance flagged: %v", regs)
	}
	bad := &Report{Experiments: []*Table{{
		ID: "E12",
		Metrics: []Metric{
			{Name: "thr", Value: 69, HigherIsBetter: true},
			{Name: "moved", Value: 1301, HigherIsBetter: false},
		},
	}}}
	regs := CompareMetrics(base, bad, 0.30)
	if len(regs) != 2 {
		t.Fatalf("expected 2 regressions, got %v", regs)
	}
}

func TestCheapExperimentsRun(t *testing.T) {
	scale := SmallScale()
	scale.TxnStatements = 20
	for _, id := range []string{"e4", "e8", "f1"} {
		table, err := Run(id, scale)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(table.Rows) == 0 {
			t.Fatalf("%s produced no rows", id)
		}
		out := table.Format()
		if !strings.Contains(out, strings.ToUpper(id)) {
			t.Fatalf("%s: format missing id header:\n%s", id, out)
		}
		// Correctness experiments must not contain FAIL rows.
		if id == "e4" || id == "e8" {
			if strings.Contains(out, "FAIL") {
				t.Fatalf("%s reports FAIL:\n%s", id, out)
			}
		}
	}
}

func TestTableFormatting(t *testing.T) {
	tb := &Table{ID: "X", Title: "demo", Columns: []string{"A", "LONG_COLUMN"}}
	tb.AddRow("1", "x")
	tb.AddRow("22", "yyyy")
	tb.AddNote("note %d", 1)
	out := tb.Format()
	if !strings.Contains(out, "LONG_COLUMN") || !strings.Contains(out, "note 1") {
		t.Fatalf("format:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 {
		t.Fatalf("expected 6 lines, got %d:\n%s", len(lines), out)
	}
}
