// Package admission implements the workload-management story of the paper's
// serving front end: a bounded pool of concurrency slots with priority
// classes and queue-depth limits. Every statement arriving over the wire asks
// the controller for a slot; when all slots are busy the request queues (FIFO
// within its class, interactive ahead of batch), and when its class's queue
// is full the request is shed immediately — the fast-fail 429 the wire layer
// returns instead of letting latency collapse for everyone.
//
// Like the rest of the serving stack the controller is nil-safe: every method
// on a nil *Controller admits immediately, so admission control can be
// switched off by simply not constructing one.
package admission

import (
	"context"
	"errors"
	"fmt"
	"time"

	"sync"

	"idaax/internal/obs"
	"idaax/internal/obs/eventlog"
)

// Class is a workload priority class. Interactive requests are admitted ahead
// of batch requests whenever a slot frees up.
type Class int

const (
	// Interactive is the OLTP-front class: short point lookups and DML that a
	// user is waiting on. Admitted first.
	Interactive Class = iota
	// Batch is the OLAP-offload class: analytics scans and training runs that
	// tolerate queueing. Admitted only when no interactive request waits.
	Batch
)

// nClasses sizes the per-class arrays.
const nClasses = 2

// String renders the class in the lower-case form the wire protocol uses.
func (c Class) String() string {
	if c == Batch {
		return "batch"
	}
	return "interactive"
}

// ParseClass parses "interactive" or "batch" (any case; "" = interactive).
func ParseClass(s string) (Class, bool) {
	switch s {
	case "", "interactive", "INTERACTIVE", "Interactive":
		return Interactive, true
	case "batch", "BATCH", "Batch":
		return Batch, true
	default:
		return Interactive, false
	}
}

// ErrQueueFull is returned by Acquire when the class's wait queue is at its
// depth limit: the request is shed without waiting. The wire layer maps it to
// HTTP 429.
var ErrQueueFull = errors.New("admission: queue full, request shed")

// Config parameterises a controller.
type Config struct {
	// Slots is the number of statements allowed to execute concurrently.
	// <= 0 falls back to DefaultSlots.
	Slots int
	// MaxQueue bounds how many requests of each class may wait for a slot;
	// one more is shed with ErrQueueFull. <= 0 falls back to DefaultMaxQueue.
	MaxQueue int
	// MaxWait bounds how long a request may queue before it is shed with
	// context.DeadlineExceeded (0 = wait forever, subject to the caller's ctx).
	MaxWait time.Duration
	// Obs receives the admission_* counters, gauges and histograms (nil ok).
	Obs *obs.Registry
	// Events receives shed and saturation events (nil ok).
	Events *eventlog.Log
}

// Default limits used when Config leaves them zero.
const (
	DefaultSlots    = 16
	DefaultMaxQueue = 128
)

// waiter is one queued Acquire: the controller hands it a slot by closing
// ready, or the waiter abandons the queue by setting abandoned under the lock.
type waiter struct {
	ready     chan struct{}
	abandoned bool
}

// Controller is the admission controller. Safe for concurrent use.
type Controller struct {
	slots    int
	maxQueue int
	maxWait  time.Duration
	reg      *obs.Registry
	events   *eventlog.Log

	mu       sync.Mutex
	inflight int
	queues   [nClasses][]*waiter
	// saturated tracks whether the controller is currently in a saturation
	// episode (some request is queued); the transition into one emits a single
	// event rather than one per queued request.
	saturated bool

	admitted [nClasses]int64
	shed     [nClasses]int64
	timedOut [nClasses]int64
}

// New builds a controller. Metrics are registered eagerly so /metrics shows
// the admission families at zero before the first request.
func New(cfg Config) *Controller {
	if cfg.Slots <= 0 {
		cfg.Slots = DefaultSlots
	}
	if cfg.MaxQueue <= 0 {
		cfg.MaxQueue = DefaultMaxQueue
	}
	c := &Controller{
		slots:    cfg.Slots,
		maxQueue: cfg.MaxQueue,
		maxWait:  cfg.MaxWait,
		reg:      cfg.Obs,
		events:   cfg.Events,
	}
	if r := c.reg; r != nil {
		r.GaugeFunc("admission_slots", func() int64 { return int64(c.slots) })
		r.GaugeFunc("admission_inflight", func() int64 { return int64(c.Inflight()) })
		r.GaugeFunc("admission_queue_depth", func() int64 { return int64(c.Queued(Interactive) + c.Queued(Batch)) })
		for _, cl := range []Class{Interactive, Batch} {
			r.Counter("admission_admitted_" + cl.String())
			r.Counter("admission_shed_" + cl.String())
			r.Histogram("admission_queue_seconds_" + cl.String())
			r.Histogram("admission_exec_seconds_" + cl.String())
		}
	}
	return c
}

// Ticket is an admitted request's slot. Release returns the slot (exactly
// once) and records the execution-time histogram.
type Ticket struct {
	c       *Controller
	class   Class
	started time.Time
	// Queued is how long the request waited for its slot (zero when a slot
	// was free on arrival). The wire layer reports it to the client and
	// attaches it to the statement's trace.
	Queued   time.Duration
	released bool
}

// Acquire blocks until a slot is free (interactive requests ahead of batch),
// fails fast with ErrQueueFull when the class queue is at its depth limit,
// and respects ctx cancellation while queued. On a nil controller it admits
// immediately. The returned ticket must be Released.
func (c *Controller) Acquire(ctx context.Context, class Class) (*Ticket, error) {
	if class < 0 || class >= nClasses {
		class = Interactive
	}
	if c == nil {
		return &Ticket{started: time.Now(), class: class}, nil
	}
	c.mu.Lock()
	if c.inflight < c.slots {
		c.inflight++
		c.admitted[class]++
		c.mu.Unlock()
		c.count("admission_admitted_" + class.String())
		c.observe("admission_queue_seconds_"+class.String(), 0)
		return &Ticket{c: c, class: class, started: time.Now()}, nil
	}
	if len(c.queues[class]) >= c.maxQueue {
		c.shed[class]++
		c.mu.Unlock()
		c.count("admission_shed_" + class.String())
		c.events.Emitf(eventlog.TypeAdmissionShed, eventlog.Warn, "", "",
			fmt.Sprintf("%s request shed: %d in flight, queue at limit %d", class, c.slots, c.maxQueue))
		return nil, ErrQueueFull
	}
	w := &waiter{ready: make(chan struct{})}
	c.queues[class] = append(c.queues[class], w)
	firstWaiter := !c.saturated
	if firstWaiter {
		c.saturated = true
	}
	c.mu.Unlock()
	if firstWaiter {
		c.events.Emitf(eventlog.TypeAdmissionSat, eventlog.Warn, "", "",
			fmt.Sprintf("admission saturated: all %d slots busy, requests queueing", c.slots))
	}

	enqueued := time.Now()
	if c.maxWait > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.maxWait)
		defer cancel()
	}
	select {
	case <-w.ready:
		queued := time.Since(enqueued)
		c.observe("admission_queue_seconds_"+class.String(), queued)
		c.count("admission_admitted_" + class.String())
		return &Ticket{c: c, class: class, started: time.Now(), Queued: queued}, nil
	case <-ctx.Done():
		c.mu.Lock()
		select {
		case <-w.ready:
			// The slot handoff won the race: we own a slot, keep it.
			c.mu.Unlock()
			queued := time.Since(enqueued)
			c.observe("admission_queue_seconds_"+class.String(), queued)
			c.count("admission_admitted_" + class.String())
			return &Ticket{c: c, class: class, started: time.Now(), Queued: queued}, nil
		default:
		}
		w.abandoned = true
		c.timedOut[class]++
		c.mu.Unlock()
		c.count("admission_shed_" + class.String())
		return nil, ctx.Err()
	}
}

// Release returns the ticket's slot, waking the longest-waiting interactive
// request first (batch only when no interactive request waits). Idempotent.
func (t *Ticket) Release() {
	if t == nil || t.released {
		return
	}
	t.released = true
	c := t.c
	if c == nil {
		return
	}
	c.observe("admission_exec_seconds_"+t.class.String(), time.Since(t.started))
	c.mu.Lock()
	// Hand the slot straight to a waiter (inflight stays constant) or free it.
	handed := false
	for cl := 0; cl < nClasses && !handed; cl++ {
		for len(c.queues[cl]) > 0 {
			w := c.queues[cl][0]
			c.queues[cl] = c.queues[cl][1:]
			if w.abandoned {
				continue
			}
			c.admitted[cl]++
			close(w.ready)
			handed = true
			break
		}
	}
	if !handed {
		c.inflight--
	}
	if c.saturated && len(c.queues[Interactive]) == 0 && len(c.queues[Batch]) == 0 {
		c.saturated = false
	}
	c.mu.Unlock()
}

// Class returns the ticket's priority class.
func (t *Ticket) Class() Class {
	if t == nil {
		return Interactive
	}
	return t.class
}

// Stats is a point-in-time snapshot of the controller.
type Stats struct {
	Slots    int
	Inflight int
	// Queued, Admitted, Shed and TimedOut are per class, indexed by Class.
	Queued   [nClasses]int
	Admitted [nClasses]int64
	Shed     [nClasses]int64
	TimedOut [nClasses]int64
}

// Stats snapshots the controller (zero value on nil).
func (c *Controller) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	st := Stats{
		Slots:    c.slots,
		Inflight: c.inflight,
		Admitted: c.admitted,
		Shed:     c.shed,
		TimedOut: c.timedOut,
	}
	for cl := 0; cl < nClasses; cl++ {
		for _, w := range c.queues[cl] {
			if !w.abandoned {
				st.Queued[cl]++
			}
		}
	}
	return st
}

// Inflight returns how many requests currently hold a slot.
func (c *Controller) Inflight() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.inflight
}

// Queued returns how many requests of the class are waiting.
func (c *Controller) Queued(class Class) int {
	if c == nil || class < 0 || class >= nClasses {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := 0
	for _, w := range c.queues[class] {
		if !w.abandoned {
			n++
		}
	}
	return n
}

// count increments a registry counter when a registry is wired.
func (c *Controller) count(name string) {
	if c.reg != nil {
		c.reg.Counter(name).Inc()
	}
}

// observe records a histogram sample when a registry is wired.
func (c *Controller) observe(name string, d time.Duration) {
	if c.reg != nil {
		c.reg.Histogram(name).Observe(d)
	}
}
