package admission

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"idaax/internal/obs"
	"idaax/internal/obs/eventlog"
)

// waitUntil polls cond for up to a second.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestSlotsBoundConcurrency proves the controller never lets more than Slots
// requests run at once, whatever the arrival rate.
func TestSlotsBoundConcurrency(t *testing.T) {
	c := New(Config{Slots: 4, MaxQueue: 1000})
	var cur, max atomic.Int64
	var wg sync.WaitGroup
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			class := Interactive
			if i%2 == 0 {
				class = Batch
			}
			tk, err := c.Acquire(context.Background(), class)
			if err != nil {
				t.Errorf("acquire: %v", err)
				return
			}
			n := cur.Add(1)
			for {
				m := max.Load()
				if n <= m || max.CompareAndSwap(m, n) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			cur.Add(-1)
			tk.Release()
		}(i)
	}
	wg.Wait()
	if got := max.Load(); got > 4 {
		t.Fatalf("concurrency reached %d with 4 slots", got)
	}
	st := c.Stats()
	if st.Admitted[Interactive]+st.Admitted[Batch] != 64 {
		t.Fatalf("admitted %v, want 64 total", st.Admitted)
	}
	if st.Inflight != 0 {
		t.Fatalf("inflight %d after everything released", st.Inflight)
	}
}

// TestPriorityOrdering proves an interactive waiter is admitted before batch
// waiters that queued earlier.
func TestPriorityOrdering(t *testing.T) {
	c := New(Config{Slots: 1, MaxQueue: 10})
	hold, err := c.Acquire(context.Background(), Interactive)
	if err != nil {
		t.Fatal(err)
	}

	order := make(chan Class, 2)
	acquireInto := func(class Class) {
		tk, err := c.Acquire(context.Background(), class)
		if err != nil {
			t.Errorf("acquire %v: %v", class, err)
			return
		}
		order <- class
		tk.Release()
	}
	// Batch queues first...
	go acquireInto(Batch)
	waitUntil(t, "batch waiter queued", func() bool { return c.Queued(Batch) == 1 })
	// ...then interactive arrives later but must win the next slot.
	go acquireInto(Interactive)
	waitUntil(t, "interactive waiter queued", func() bool { return c.Queued(Interactive) == 1 })

	hold.Release()
	if first := <-order; first != Interactive {
		t.Fatalf("first admitted class = %v, want interactive", first)
	}
	if second := <-order; second != Batch {
		t.Fatalf("second admitted class = %v, want batch", second)
	}
}

// TestQueueDepthFastFail proves the controller sheds immediately — without
// blocking — once the class queue is at its limit.
func TestQueueDepthFastFail(t *testing.T) {
	events := eventlog.New(16)
	c := New(Config{Slots: 1, MaxQueue: 1, Events: events})
	hold, err := c.Acquire(context.Background(), Interactive)
	if err != nil {
		t.Fatal(err)
	}
	queued := make(chan struct{})
	go func() {
		tk, err := c.Acquire(context.Background(), Interactive)
		if err != nil {
			t.Errorf("queued acquire: %v", err)
		}
		close(queued)
		tk.Release()
	}()
	waitUntil(t, "waiter queued", func() bool { return c.Queued(Interactive) == 1 })

	start := time.Now()
	_, err = c.Acquire(context.Background(), Interactive)
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("err = %v, want ErrQueueFull", err)
	}
	if d := time.Since(start); d > 200*time.Millisecond {
		t.Fatalf("shed took %s; fast-fail must not block", d)
	}
	// Batch has its own queue: the interactive shed must not affect it.
	bt := make(chan struct{})
	go func() {
		tk, err := c.Acquire(context.Background(), Batch)
		if err != nil {
			t.Errorf("batch acquire: %v", err)
		}
		close(bt)
		tk.Release()
	}()
	waitUntil(t, "batch waiter queued", func() bool { return c.Queued(Batch) == 1 })

	hold.Release()
	<-queued
	<-bt

	if st := c.Stats(); st.Shed[Interactive] != 1 {
		t.Fatalf("shed count = %v, want 1 interactive", st.Shed)
	}
	shedEvents := events.Recent(0, eventlog.Filter{Type: eventlog.TypeAdmissionShed})
	if len(shedEvents) != 1 {
		t.Fatalf("shed events = %d, want 1", len(shedEvents))
	}
	satEvents := events.Recent(0, eventlog.Filter{Type: eventlog.TypeAdmissionSat})
	if len(satEvents) == 0 {
		t.Fatal("no saturation event emitted")
	}
}

// TestContextCancelWhileQueued proves a queued request honours cancellation
// and its abandoned waiter never swallows a slot.
func TestContextCancelWhileQueued(t *testing.T) {
	c := New(Config{Slots: 1, MaxQueue: 10})
	hold, err := c.Acquire(context.Background(), Interactive)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := c.Acquire(ctx, Interactive)
		errCh <- err
	}()
	waitUntil(t, "waiter queued", func() bool { return c.Queued(Interactive) == 1 })
	cancel()
	if err := <-errCh; !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// The abandoned waiter must not absorb the released slot.
	hold.Release()
	tk, err := c.Acquire(context.Background(), Interactive)
	if err != nil {
		t.Fatalf("slot lost to abandoned waiter: %v", err)
	}
	tk.Release()
}

// TestMaxWait proves the controller's own queue-time bound sheds waiters.
func TestMaxWait(t *testing.T) {
	c := New(Config{Slots: 1, MaxQueue: 10, MaxWait: 20 * time.Millisecond})
	hold, err := c.Acquire(context.Background(), Batch)
	if err != nil {
		t.Fatal(err)
	}
	defer hold.Release()
	_, err = c.Acquire(context.Background(), Batch)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
	if st := c.Stats(); st.TimedOut[Batch] != 1 {
		t.Fatalf("timed out = %v, want 1 batch", st.TimedOut)
	}
}

// TestMetricsRegistered proves the admission_* families land in the registry.
func TestMetricsRegistered(t *testing.T) {
	reg := obs.NewRegistry()
	c := New(Config{Slots: 2, MaxQueue: 4, Obs: reg})
	tk, err := c.Acquire(context.Background(), Interactive)
	if err != nil {
		t.Fatal(err)
	}
	tk.Release()
	text := reg.Text()
	for _, want := range []string{
		"admission_slots", "admission_inflight", "admission_queue_depth",
		"admission_admitted_interactive", "admission_shed_batch",
		"admission_queue_seconds_interactive", "admission_exec_seconds_batch",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics exposition missing %s", want)
		}
	}
	if err := obs.ValidateExposition(text); err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
}

// TestNilController proves the disabled path admits everything immediately.
func TestNilController(t *testing.T) {
	var c *Controller
	tk, err := c.Acquire(context.Background(), Batch)
	if err != nil {
		t.Fatal(err)
	}
	tk.Release()
	tk.Release() // idempotent
	if st := c.Stats(); st.Slots != 0 || st.Inflight != 0 {
		t.Fatalf("nil stats = %+v", st)
	}
}

// TestParseClass pins the wire-protocol class names.
func TestParseClass(t *testing.T) {
	for s, want := range map[string]Class{"": Interactive, "interactive": Interactive, "batch": Batch, "BATCH": Batch} {
		got, ok := ParseClass(s)
		if !ok || got != want {
			t.Errorf("ParseClass(%q) = %v, %v", s, got, ok)
		}
	}
	if _, ok := ParseClass("bulk"); ok {
		t.Error("ParseClass accepted unknown class")
	}
}
