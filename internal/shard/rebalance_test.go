package shard

import (
	"fmt"
	"strings"
	"testing"

	"idaax/internal/accel"
	"idaax/internal/types"
)

// TestHRWMinimalMovement verifies the defining property of rendezvous
// hashing: growing the owner set by one member moves roughly 1/N of the keys
// — every moved key moves TO the new member — and removing a member moves
// only that member's keys.
func TestHRWMinimalMovement(t *testing.T) {
	names3 := []string{"A", "B", "C"}
	names4 := []string{"A", "B", "C", "D"}
	p3 := NewHashPartitioner(0, types.KindInt, names3)
	p4 := NewHashPartitioner(0, types.KindInt, names4)

	const keys = 10000
	moved := 0
	newOwner := 0
	for i := 0; i < keys; i++ {
		v := types.NewInt(int64(i))
		s3, _ := p3.PlaceKey(v)
		s4, _ := p4.PlaceKey(v)
		if s4 == 3 {
			newOwner++
		}
		if s3 != s4 {
			moved++
			if s4 != 3 {
				t.Fatalf("key %d moved from shard %d to %d, not to the new member", i, s3, s4)
			}
		}
	}
	if moved != newOwner {
		t.Fatalf("moved %d keys but new member owns %d", moved, newOwner)
	}
	// Expected share is 1/4; allow generous slack around the binomial spread.
	if newOwner < keys/5 || newOwner > keys/3 {
		t.Fatalf("new member owns %d of %d keys; rendezvous distribution degenerate", newOwner, keys)
	}

	// Removing C moves exactly C's keys, each to a surviving member.
	pAB := NewHashPartitioner(0, types.KindInt, []string{"A", "B"})
	for i := 0; i < keys; i++ {
		v := types.NewInt(int64(i))
		s3, _ := p3.PlaceKey(v)
		s2, _ := pAB.PlaceKey(v)
		if s3 != 2 && s2 != s3 {
			t.Fatalf("key %d owned by shard %d moved to %d although its owner survived", i, s3, s2)
		}
	}
}

// TestHRWOrdinalMapping checks that a partitioner built with explicit
// ordinals (the drain configuration) places onto the surviving router
// ordinals only.
func TestHRWOrdinalMapping(t *testing.T) {
	// Members [A, B, C] with B draining: owners are A (ordinal 0) and C
	// (ordinal 2).
	p := NewHashPartitionerOrdinals(0, types.KindInt, []string{"A", "C"}, []int{0, 2})
	for i := 0; i < 1000; i++ {
		s, ok := p.PlaceKey(types.NewInt(int64(i)))
		if !ok || (s != 0 && s != 2) {
			t.Fatalf("key %d placed on ordinal %d; draining member must receive nothing", i, s)
		}
	}
	rr := NewRoundRobinPartitionerOrdinals([]string{"A", "C"}, []int{0, 2})
	for i := 0; i < 10; i++ {
		if s := rr.Place(nil); s != 0 && s != 2 {
			t.Fatalf("round robin placed on draining ordinal %d", s)
		}
	}
}

// shardRowCounts returns the committed-visible rows of table T per member.
func shardRowCounts(t *testing.T, router *Router, table string) []int {
	t.Helper()
	ms := router.Members()
	out := make([]int, len(ms))
	for i, m := range ms {
		n, err := m.RowCount(0, table)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = n
	}
	return out
}

// assertPlacementClean fails if any committed row sits on a shard the live
// partition map does not assign it to.
func assertPlacementClean(t *testing.T, router *Router, table string) {
	t.Helper()
	meta, err := router.meta(table)
	if err != nil {
		t.Fatal(err)
	}
	part := meta.partitioner()
	ownerSet := map[int]bool{}
	for _, o := range part.Ordinals() {
		ownerSet[o] = true
	}
	for s, m := range router.Members() {
		tab, err := m.Table(table)
		if err != nil {
			t.Fatal(err)
		}
		vis := m.Registry.Snapshot(0).Visible
		created, deleted, _ := tab.VersionMeta()
		for idx := range created {
			if !vis(created[idx], deleted[idx]) {
				continue
			}
			row := tab.ReadRow(idx)
			if meta.keyIdx >= 0 {
				if owner := part.Place(row); owner != s {
					t.Fatalf("row %v on shard %d, owner is %d", row, s, owner)
				}
			} else if !ownerSet[s] {
				t.Fatalf("round-robin row %v on non-owner shard %d", row, s)
			}
		}
	}
}

func TestAddMemberMigratesRows(t *testing.T) {
	rows := testRows(4000)
	router, ref := newFleet(t, 3, "ID", rows)

	before := shardRowCounts(t, router, "T")
	joiner := accel.New("SHARD3", 2)
	if err := router.AddMember(joiner); err != nil {
		t.Fatal(err)
	}
	if err := router.WaitRebalance(); err != nil {
		t.Fatal(err)
	}

	after := shardRowCounts(t, router, "T")
	if len(after) != 4 {
		t.Fatalf("fleet has %d members, want 4", len(after))
	}
	total := 0
	for _, n := range after {
		total += n
	}
	if total != len(rows) {
		t.Fatalf("fleet holds %d rows after rebalance, want %d (per shard: %v)", total, len(rows), after)
	}
	// Rendezvous hashing: the new member ends up with roughly a quarter of the
	// table — and the survivors only lost rows, never gained.
	if after[3] < len(rows)/5 {
		t.Fatalf("new member owns %d of %d rows; rebalance did not redistribute (counts %v)", after[3], len(rows), after)
	}
	for i := 0; i < 3; i++ {
		if after[i] > before[i] {
			t.Fatalf("surviving shard %d grew from %d to %d rows during a grow rebalance", i, before[i], after[i])
		}
	}
	assertPlacementClean(t, router, "T")

	st := router.ShardingStats()
	if st.RowsMigrated != int64(after[3]) {
		t.Fatalf("RowsMigrated = %d, new member holds %d", st.RowsMigrated, after[3])
	}
	if st.RebalanceBatches == 0 || st.RebalancesCompleted == 0 || st.Epoch == 0 {
		t.Fatalf("rebalance counters not recorded: %+v", st)
	}
	if status := router.RebalanceStatus(); status.Active || len(status.MigratingTables) != 0 || status.LastError != "" {
		t.Fatalf("rebalance did not settle: %+v", status)
	}

	// Differential check: the grown fleet answers exactly like the reference.
	for _, sql := range []string{
		"SELECT * FROM t ORDER BY id",
		"SELECT dept, COUNT(*), SUM(v) FROM t GROUP BY dept ORDER BY dept",
		"SELECT * FROM t WHERE id = 1234",
		"SELECT COUNT(*) FROM t WHERE id IN (1, 2, 3, 999)",
	} {
		sel := parseSelect(t, sql)
		got, err := router.Query(0, sel)
		if err != nil {
			t.Fatalf("fleet %q: %v", sql, err)
		}
		want, err := ref.Query(0, parseSelect(t, sql))
		if err != nil {
			t.Fatalf("reference %q: %v", sql, err)
		}
		assertSameResult(t, sql, got, want, strings.Contains(sql, "ORDER BY"))
	}
}

func TestRemoveMemberDrainsAndDetaches(t *testing.T) {
	rows := testRows(2000)
	router, ref := newFleet(t, 4, "ID", rows)

	if err := router.RemoveMember("SHARD2"); err != nil {
		t.Fatal(err)
	}
	ms := router.Members()
	if len(ms) != 3 {
		t.Fatalf("fleet has %d members after removal, want 3", len(ms))
	}
	for _, m := range ms {
		if m.Name() == "SHARD2" {
			t.Fatal("removed member still in the fleet")
		}
	}
	counts := shardRowCounts(t, router, "T")
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != len(rows) {
		t.Fatalf("fleet holds %d rows after drain, want %d (%v)", total, len(rows), counts)
	}
	assertPlacementClean(t, router, "T")

	sel := parseSelect(t, "SELECT * FROM t ORDER BY id")
	got, err := router.Query(0, sel)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Query(0, parseSelect(t, "SELECT * FROM t ORDER BY id"))
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "post-drain scan", got, want, true)
}

// TestRemoveMemberRefusesBelowTwo is the regression test for shrinking a
// two-member group: the call must fail and leave the group fully intact.
func TestRemoveMemberRefusesBelowTwo(t *testing.T) {
	rows := testRows(100)
	router, _ := newFleet(t, 2, "ID", rows)

	err := router.RemoveMember("SHARD1")
	if err == nil {
		t.Fatal("removing from a 2-member group must fail")
	}
	if !strings.Contains(err.Error(), "at least 2 members") {
		t.Fatalf("unexpected refusal message: %v", err)
	}
	if got := len(router.Members()); got != 2 {
		t.Fatalf("group shrank to %d members despite the refusal", got)
	}
	counts := shardRowCounts(t, router, "T")
	if counts[0]+counts[1] != len(rows) {
		t.Fatalf("rows lost by refused removal: %v", counts)
	}
	// The group stays fully operational.
	rel, err := router.Query(0, parseSelect(t, "SELECT COUNT(*) FROM t"))
	if err != nil {
		t.Fatal(err)
	}
	if rel.Rows[0][0].Int != int64(len(rows)) {
		t.Fatalf("count after refused removal: %v", rel.Rows[0][0])
	}
	// Unknown members are refused too.
	if err := router.RemoveMember("NOSUCH"); err == nil {
		t.Fatal("removing an unknown member must fail")
	}
}

// TestRebalanceDoubleRouting drives queries while a rebalance is migrating
// and checks that pruned point lookups never miss rows: placement goes
// through the routed check, which refuses to prune keys the active maps
// disagree on.
func TestRebalanceDoubleRouting(t *testing.T) {
	rows := testRows(3000)
	router, ref := newFleet(t, 3, "ID", rows)

	joiner := accel.New("SHARD3", 2)
	if err := router.AddMember(joiner); err != nil {
		t.Fatal(err)
	}
	// While the background worker churns, hammer point lookups.
	for i := 0; i < 200; i++ {
		id := (i * 13) % len(rows)
		sql := fmt.Sprintf("SELECT id, dept, v FROM t WHERE id = %d", id)
		got, err := router.Query(0, parseSelect(t, sql))
		if err != nil {
			t.Fatalf("%q during rebalance: %v", sql, err)
		}
		want, err := ref.Query(0, parseSelect(t, sql))
		if err != nil {
			t.Fatal(err)
		}
		assertSameResult(t, sql, got, want, false)
	}
	if err := router.WaitRebalance(); err != nil {
		t.Fatal(err)
	}
	assertPlacementClean(t, router, "T")
}

// TestRebalanceMovesReplicatedSourceIDs checks that migrated CDC shadow rows
// keep their DB2 source ids: an ApplyReplicatedDelete after the rebalance
// must find the row on its new shard.
func TestRebalanceMovesReplicatedSourceIDs(t *testing.T) {
	members := make([]*accel.Accelerator, 3)
	for i := range members {
		members[i] = accel.New(fmt.Sprintf("SHARD%d", i), 2)
	}
	router, err := NewRouter("FLEET", members)
	if err != nil {
		t.Fatal(err)
	}
	if err := router.CreateTable("T", testSchema(), "ID"); err != nil {
		t.Fatal(err)
	}
	rows := testRows(600)
	srcIDs := make([]int64, len(rows))
	for i := range srcIDs {
		srcIDs[i] = int64(i + 1)
	}
	if _, err := router.InsertReplicated("T", rows, srcIDs); err != nil {
		t.Fatal(err)
	}

	if err := router.AddMember(accel.New("SHARD3", 2)); err != nil {
		t.Fatal(err)
	}
	if err := router.WaitRebalance(); err != nil {
		t.Fatal(err)
	}
	if moved := router.ShardingStats().RowsMigrated; moved == 0 {
		t.Fatal("no replicated rows migrated")
	}
	// Every source id resolves on exactly one shard, and deletes land.
	for _, src := range []int64{1, 77, 300, 599} {
		holders := 0
		for _, m := range router.Members() {
			if m.HasReplicatedSource("T", src) {
				holders++
			}
		}
		if holders != 1 {
			t.Fatalf("source id %d mirrored on %d shards after rebalance", src, holders)
		}
		ok, err := router.ApplyReplicatedDelete("T", src)
		if err != nil || !ok {
			t.Fatalf("replicated delete of %d after rebalance: ok=%t err=%v", src, ok, err)
		}
	}
	n, err := router.RowCount(0, "T")
	if err != nil {
		t.Fatal(err)
	}
	if n != len(rows)-4 {
		t.Fatalf("row count %d after 4 replicated deletes, want %d", n, len(rows)-4)
	}
}

// TestBulkExportImport exercises the Backend bulk data path on the router:
// ImportRows partitions by the live map, ExportRows streams back everything.
func TestBulkExportImport(t *testing.T) {
	members := []*accel.Accelerator{accel.New("S0", 2), accel.New("S1", 2)}
	router, err := NewRouter("FLEET", members)
	if err != nil {
		t.Fatal(err)
	}
	if err := router.CreateTable("T", testSchema(), "ID"); err != nil {
		t.Fatal(err)
	}
	rows := testRows(500)
	srcIDs := make([]int64, len(rows))
	for i := range srcIDs {
		srcIDs[i] = -1
		if i%2 == 0 {
			srcIDs[i] = int64(i + 1)
		}
	}
	n, err := router.ImportRows("T", rows, srcIDs)
	if err != nil || n != len(rows) {
		t.Fatalf("ImportRows = %d, %v", n, err)
	}
	assertPlacementClean(t, router, "T")

	exported := 0
	withSrc := 0
	if err := router.ExportRows("T", func(row types.Row, srcID int64) error {
		exported++
		if srcID >= 0 {
			withSrc++
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if exported != len(rows) || withSrc != len(rows)/2 {
		t.Fatalf("exported %d rows (%d with source ids), want %d (%d)", exported, withSrc, len(rows), len(rows)/2)
	}
}
