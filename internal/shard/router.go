package shard

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"idaax/internal/accel"
	"idaax/internal/planner"
	"idaax/internal/sqlparse"
	"idaax/internal/stats"
	"idaax/internal/types"
)

// tableMeta is the router-side description of a sharded table.
type tableMeta struct {
	schema  types.Schema
	distKey string
	keyIdx  int // index of the distribution key column, -1 for round robin
	part    Partitioner
}

// Stats counts router-level routing decisions; the per-shard scan counters
// live on the member accelerators and are aggregated by Router.Stats.
type Stats struct {
	// QueriesRouted counts SELECTs executed through the router.
	QueriesRouted int64
	// QueriesPruned counts SELECTs answered by a single shard because
	// distribution-key predicates (equality, IN list, bounded range) covered
	// the distribution key.
	QueriesPruned int64
	// TwoPhaseAggregates counts SELECTs executed as partial aggregation on the
	// shards with finalization at the coordinator.
	TwoPhaseAggregates int64
	// RowsGathered counts base-table rows shipped from shards to the
	// coordinator by scatter-gather queries.
	RowsGathered int64
	// ColocatedJoins counts multi-table SELECTs whose joins executed entirely
	// shard-local (co-located or broadcast placement).
	ColocatedJoins int64
	// BroadcastJoins counts the subset of ColocatedJoins that replicated at
	// least one table to the participating shards.
	BroadcastJoins int64
	// ShardScansAvoided counts per-table shard scans eliminated by
	// distribution-key pruning (summed over the statements' base tables).
	ShardScansAvoided int64
}

// Router spreads tables over a fleet of accelerators and implements
// accel.Backend, so the federation layer, the AOT manager and replication can
// treat the fleet exactly like one big accelerator.
type Router struct {
	name    string
	members []*accel.Accelerator

	mu     sync.RWMutex
	tables map[string]*tableMeta

	// commitMu fences transaction visibility changes against snapshot
	// acquisition: CommitTxn/AbortTxn hold it exclusively while flipping every
	// member, queries hold it shared while collecting one snapshot per member.
	// A transaction committing across the fleet is therefore visible on every
	// shard of a statement's snapshot set or on none — the cross-shard
	// equivalent of the single accelerator's atomic registry commit.
	commitMu sync.RWMutex

	stats Stats

	// planningDisabled turns the cost-based planner off (heuristic routing
	// only); the benchmark harness uses it to measure the planner's effect.
	planningDisabled int32
}

// NewRouter creates a router over the given member accelerators. At least one
// member is required; two or more make sharding meaningful.
func NewRouter(name string, members []*accel.Accelerator) (*Router, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("shard: router %s needs at least one member accelerator", types.NormalizeName(name))
	}
	return &Router{
		name:    types.NormalizeName(name),
		members: append([]*accel.Accelerator(nil), members...),
		tables:  make(map[string]*tableMeta),
	}, nil
}

// Name returns the router's pairing name.
func (r *Router) Name() string { return r.name }

// Members returns the member accelerators in shard order.
func (r *Router) Members() []*accel.Accelerator {
	return append([]*accel.Accelerator(nil), r.members...)
}

// Slices returns the fleet's total scan parallelism.
func (r *Router) Slices() int {
	total := 0
	for _, m := range r.members {
		total += m.Slices()
	}
	return total
}

// Stats aggregates the activity counters of every shard. Tables is the number
// of sharded tables (each is present on every member), slices the fleet total.
func (r *Router) Stats() accel.Stats {
	r.mu.RLock()
	tables := len(r.tables)
	r.mu.RUnlock()
	var out accel.Stats
	for _, m := range r.members {
		st := m.Stats()
		out.QueriesRun += st.QueriesRun
		out.RowsScanned += st.RowsScanned
		out.BlocksPruned += st.BlocksPruned
		out.RowsIngested += st.RowsIngested
		out.RowsReturned += st.RowsReturned
		out.DMLStatements += st.DMLStatements
		out.Slices += st.Slices
	}
	out.Tables = tables
	return out
}

// MemberStats returns each shard's own activity counters, in shard order.
func (r *Router) MemberStats() []accel.Stats {
	out := make([]accel.Stats, len(r.members))
	for i, m := range r.members {
		out[i] = m.Stats()
	}
	return out
}

// ShardingStats returns the router-level routing counters.
func (r *Router) ShardingStats() Stats {
	return Stats{
		QueriesRouted:      atomic.LoadInt64(&r.stats.QueriesRouted),
		QueriesPruned:      atomic.LoadInt64(&r.stats.QueriesPruned),
		TwoPhaseAggregates: atomic.LoadInt64(&r.stats.TwoPhaseAggregates),
		RowsGathered:       atomic.LoadInt64(&r.stats.RowsGathered),
		ColocatedJoins:     atomic.LoadInt64(&r.stats.ColocatedJoins),
		BroadcastJoins:     atomic.LoadInt64(&r.stats.BroadcastJoins),
		ShardScansAvoided:  atomic.LoadInt64(&r.stats.ShardScansAvoided),
	}
}

// SetCostBasedPlanning enables or disables the cost-based planner (enabled by
// default). With planning off, the router falls back to the heuristic
// routing: equality-only pruning, single-table two-phase aggregation, and
// gather joins.
func (r *Router) SetCostBasedPlanning(enabled bool) {
	v := int32(1)
	if enabled {
		v = 0
	}
	atomic.StoreInt32(&r.planningDisabled, v)
}

// PlanningEnabled reports whether cost-based planning is active.
func (r *Router) PlanningEnabled() bool { return atomic.LoadInt32(&r.planningDisabled) == 0 }

func (r *Router) meta(table string) (*tableMeta, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.tables[types.NormalizeName(table)]
	if !ok {
		return nil, fmt.Errorf("shard: table %s is not sharded on %s", types.NormalizeName(table), r.name)
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

// CreateTable creates the table on every shard. A non-empty distKey selects
// hash distribution on that column; an empty one selects round robin.
func (r *Router) CreateTable(name string, schema types.Schema, distKey string) error {
	name = types.NormalizeName(name)
	distKey = types.NormalizeName(distKey)
	keyIdx := -1
	var part Partitioner
	if distKey != "" {
		keyIdx = schema.IndexOf(distKey)
		if keyIdx < 0 {
			return fmt.Errorf("shard: distribution key %s is not a column of %s", distKey, name)
		}
		part = NewHashPartitioner(keyIdx, schema.Columns[keyIdx].Kind, len(r.members))
	} else {
		part = NewRoundRobinPartitioner(len(r.members))
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tables[name]; ok {
		return fmt.Errorf("shard: table %s already exists on %s", name, r.name)
	}
	for i, m := range r.members {
		if err := m.CreateTable(name, schema, distKey); err != nil {
			// Undo the members that already created the table so the fleet
			// stays consistent.
			for _, prev := range r.members[:i] {
				_ = prev.DropTable(name)
			}
			return err
		}
	}
	r.tables[name] = &tableMeta{schema: schema, distKey: distKey, keyIdx: keyIdx, part: part}
	return nil
}

// DropTable removes the table from every shard.
func (r *Router) DropTable(name string) error {
	name = types.NormalizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tables[name]; !ok {
		return fmt.Errorf("shard: table %s is not sharded on %s", name, r.name)
	}
	var firstErr error
	for _, m := range r.members {
		if err := m.DropTable(name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	delete(r.tables, name)
	return firstErr
}

// HasTable reports whether the table is sharded on this router.
func (r *Router) HasTable(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.tables[types.NormalizeName(name)]
	return ok
}

// TableNames returns the sharded table names, sorted.
func (r *Router) TableNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.tables))
	for name := range r.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Statistics and planning
// ---------------------------------------------------------------------------

// Analyze rebuilds the planner statistics of a sharded table on every member
// and returns the total number of rows analyzed.
func (r *Router) Analyze(table string) (int, error) {
	if _, err := r.meta(table); err != nil {
		return 0, err
	}
	total := 0
	for _, m := range r.members {
		n, err := m.Analyze(table)
		total += n
		if err != nil {
			return total, fmt.Errorf("shard %s: %w", m.Name(), err)
		}
	}
	return total, nil
}

// TableStatistics merges the per-shard statistics of a sharded table into a
// fleet-wide snapshot (row counts add, min/max widen, NDV sums capped; see
// stats.Merge).
func (r *Router) TableStatistics(table string) (stats.Snapshot, error) {
	if _, err := r.meta(table); err != nil {
		return stats.Snapshot{}, err
	}
	snaps := make([]stats.Snapshot, 0, len(r.members))
	for _, m := range r.members {
		s, err := m.TableStatistics(table)
		if err != nil {
			return stats.Snapshot{}, fmt.Errorf("shard %s: %w", m.Name(), err)
		}
		snaps = append(snaps, s)
	}
	return stats.Merge(snaps), nil
}

// PlannerCatalog exposes the sharded tables, their merged statistics and
// their partitioners to the cost-based planner.
func (r *Router) PlannerCatalog() planner.Catalog {
	return func(table string) (planner.TableInfo, bool) {
		meta, err := r.meta(table)
		if err != nil {
			return planner.TableInfo{}, false
		}
		snap, err := r.TableStatistics(table)
		if err != nil {
			snap = stats.Snapshot{}
		}
		info := planner.TableInfo{
			Name:    types.NormalizeName(table),
			Schema:  meta.schema,
			Stats:   snap,
			DistKey: meta.distKey,
			Shards:  len(r.members),
		}
		if meta.keyIdx >= 0 {
			info.PlaceKey = meta.part.PlaceKey
		}
		return info, true
	}
}

// Explain plans a SELECT against the shard fleet without executing it.
func (r *Router) Explain(sel *sqlparse.SelectStmt) (*planner.Plan, error) {
	return planner.PlanSelect(sel, r.PlannerCatalog()), nil
}

// ---------------------------------------------------------------------------
// Transaction coordination: every shard participates in the DB2 handshake.
// ---------------------------------------------------------------------------

// Prepare runs phase one of the commit handshake on every shard.
func (r *Router) Prepare(txnID int64) error {
	for _, m := range r.members {
		if err := m.Prepare(txnID); err != nil {
			return fmt.Errorf("shard %s: %w", m.Name(), err)
		}
	}
	return nil
}

// CommitTxn commits the DB2 transaction on every shard, atomically with
// respect to snapshot sets taken by concurrent queries.
func (r *Router) CommitTxn(txnID int64) {
	r.commitMu.Lock()
	defer r.commitMu.Unlock()
	for _, m := range r.members {
		m.CommitTxn(txnID)
	}
}

// AbortTxn aborts the DB2 transaction on every shard.
func (r *Router) AbortTxn(txnID int64) {
	r.commitMu.Lock()
	defer r.commitMu.Unlock()
	for _, m := range r.members {
		m.AbortTxn(txnID)
	}
}

// snapshotAll takes one snapshot per member under the commit fence, giving a
// statement a consistent cross-shard view.
func (r *Router) snapshotAll(txnID int64) []*accel.Snapshot {
	r.commitMu.RLock()
	defer r.commitMu.RUnlock()
	snaps := make([]*accel.Snapshot, len(r.members))
	for i, m := range r.members {
		snaps[i] = m.Registry.Snapshot(txnID)
	}
	return snaps
}

// ---------------------------------------------------------------------------
// DML
// ---------------------------------------------------------------------------

// Insert partitions the rows by the table's distribution strategy and inserts
// each batch on its owning shard.
func (r *Router) Insert(txnID int64, table string, rows []types.Row) (int, error) {
	meta, err := r.meta(table)
	if err != nil {
		return 0, err
	}
	batches, _ := partitionRows(meta.part, len(r.members), rows, nil)
	total := 0
	for i, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		n, err := r.members[i].Insert(txnID, table, batch)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Update broadcasts the update to every shard; only shards owning matching
// rows change anything. Assigning to the hash distribution key is rejected —
// the row would have to migrate between shards mid-transaction and key-based
// shard pruning would silently miss it afterwards; the real MPP products
// restrict distribution-key updates the same way.
func (r *Router) Update(txnID int64, table string, assignments []sqlparse.Assignment, where sqlparse.Expr) (int, error) {
	meta, err := r.meta(table)
	if err != nil {
		return 0, err
	}
	if meta.keyIdx >= 0 {
		for _, as := range assignments {
			if types.NormalizeName(as.Column) == meta.distKey {
				return 0, fmt.Errorf("shard: cannot UPDATE distribution key %s of %s (delete and re-insert, or re-load to redistribute)", meta.distKey, types.NormalizeName(table))
			}
		}
	}
	total := 0
	for _, m := range r.members {
		n, err := m.Update(txnID, table, assignments, where)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Delete broadcasts the delete to every shard.
func (r *Router) Delete(txnID int64, table string, where sqlparse.Expr) (int, error) {
	if _, err := r.meta(table); err != nil {
		return 0, err
	}
	total := 0
	for _, m := range r.members {
		n, err := m.Delete(txnID, table, where)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Truncate truncates the table on every shard.
func (r *Router) Truncate(txnID int64, table string) (int, error) {
	if _, err := r.meta(table); err != nil {
		return 0, err
	}
	total := 0
	for _, m := range r.members {
		n, err := m.Truncate(txnID, table)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// RowCount sums the visible row counts of every shard under one fenced
// snapshot set, so a concurrently committing transaction is counted on all
// shards or on none.
func (r *Router) RowCount(txnID int64, table string) (int, error) {
	if _, err := r.meta(table); err != nil {
		return 0, err
	}
	snaps := r.snapshotAll(txnID)
	total := 0
	for i, m := range r.members {
		t, err := m.Table(table)
		if err != nil {
			return total, err
		}
		total += t.VisibleRowCount(snaps[i].Visible)
	}
	return total, nil
}

// ---------------------------------------------------------------------------
// Replication fan-out: CDC batches land on the owning shard.
// ---------------------------------------------------------------------------

// InsertReplicated partitions replicated rows (with their DB2 source row ids)
// and applies each batch on its owning shard, so every DB2 row is mirrored by
// exactly one shard. Each per-shard sub-batch commits independently, so a
// concurrent query may observe a CDC batch partially applied across shards —
// the usual replication-lag relaxation, one record-batch wide; transactional
// DML visibility is fenced in CommitTxn and is never partial.
func (r *Router) InsertReplicated(table string, rows []types.Row, srcIDs []int64) (int, error) {
	meta, err := r.meta(table)
	if err != nil {
		return 0, err
	}
	batches, srcBatches := partitionRows(meta.part, len(r.members), rows, srcIDs)
	total := 0
	for i, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		var src []int64
		if srcBatches != nil {
			src = srcBatches[i]
		}
		n, err := r.members[i].InsertReplicated(table, batch, src)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ApplyReplicatedDelete removes the shadow row wherever it lives.
func (r *Router) ApplyReplicatedDelete(table string, srcID int64) (bool, error) {
	if _, err := r.meta(table); err != nil {
		return false, err
	}
	for _, m := range r.members {
		ok, err := m.ApplyReplicatedDelete(table, srcID)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// ApplyReplicatedUpdate applies an update captured in DB2 to the shard that
// should own the new row image. When a hash-distributed key changes, the row
// migrates: the stale image is deleted from its old shard and the new image is
// inserted on the owner, so each DB2 row keeps exactly one shadow copy.
func (r *Router) ApplyReplicatedUpdate(table string, srcID int64, row types.Row) error {
	meta, err := r.meta(table)
	if err != nil {
		return err
	}
	if meta.keyIdx < 0 {
		// Round robin: update in place wherever the row lives; unseen rows are
		// placed like a fresh insert.
		for _, m := range r.members {
			if m.HasReplicatedSource(table, srcID) {
				return m.ApplyReplicatedUpdate(table, srcID, row)
			}
		}
		_, err := r.InsertReplicated(table, []types.Row{row}, []int64{srcID})
		return err
	}
	owner := r.members[meta.part.Place(row)]
	if owner.HasReplicatedSource(table, srcID) {
		return owner.ApplyReplicatedUpdate(table, srcID, row)
	}
	for _, m := range r.members {
		if m == owner {
			continue
		}
		if _, err := m.ApplyReplicatedDelete(table, srcID); err != nil {
			return err
		}
	}
	_, err = owner.InsertReplicated(table, []types.Row{row}, []int64{srcID})
	return err
}

// TruncateReplicated truncates the shadow table on every shard.
func (r *Router) TruncateReplicated(table string) (int, error) {
	if _, err := r.meta(table); err != nil {
		return 0, err
	}
	total := 0
	for _, m := range r.members {
		n, err := m.TruncateReplicated(table)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

var _ accel.Backend = (*Router)(nil)
