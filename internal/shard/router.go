package shard

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"idaax/internal/accel"
	"idaax/internal/obs"
	"idaax/internal/obs/eventlog"
	"idaax/internal/planner"
	"idaax/internal/relalg"
	"idaax/internal/sqlparse"
	"idaax/internal/stats"
	"idaax/internal/types"
	"idaax/internal/vexec"
)

// tableMeta is the router-side description of a sharded table. Its placement
// is versioned: part is the live (target) map every write routes by, and
// prevs holds the maps superseded since the last completed rebalance — while
// prevs is non-empty the table is migrating, pruning is restricted to keys
// whose owner every active map agrees on, and co-located join planning is
// suspended.
type tableMeta struct {
	schema  types.Schema
	distKey string
	keyIdx  int // index of the distribution key column, -1 for round robin

	// pm guards part and prevs (membership changes swap them).
	pm    sync.RWMutex
	part  Partitioner
	prevs []Partitioner

	// migMu fences writes against migration batches: every router write path
	// (DML, replication applies, bulk import) holds it shared for the duration
	// of the operation, the rebalancer holds it exclusively around each
	// bounded batch move and around migration finalisation. Queries never take
	// it — reads are kept correct by the atomic batch commits under the
	// router's commit fence, so there is no stop-the-world window.
	migMu sync.RWMutex
}

// partitioner returns the live placement map.
func (m *tableMeta) partitioner() Partitioner {
	m.pm.RLock()
	defer m.pm.RUnlock()
	return m.part
}

// migrating reports whether rows of the table may still be placed by a
// superseded map.
func (m *tableMeta) migrating() bool {
	m.pm.RLock()
	defer m.pm.RUnlock()
	return len(m.prevs) > 0
}

// routedPlaceKey implements double-routing for pruning: the returned function
// gives the single shard that can answer queries for a key, with ok=false
// while any superseded map places the key on a *different, still-attached*
// member (its rows may be mid-migration, so the statement must scan all
// candidate shards instead). Owners are compared by member name — superseded
// maps keep their pre-change ordinals, so ordinals from different epochs
// never meet — and a superseded owner that has since been detached counts as
// agreement: its rows were drained onto the live owners before it left.
func (r *Router) routedPlaceKey(meta *tableMeta) func(types.Value) (int, bool) {
	attached := r.memberNameSet()
	return func(v types.Value) (int, bool) {
		meta.pm.RLock()
		part := meta.part
		prevs := meta.prevs
		meta.pm.RUnlock()
		ord, owner, ok := part.PlaceKeyOwner(v)
		if !ok {
			return 0, false
		}
		for _, prev := range prevs {
			_, prevOwner, ok := prev.PlaceKeyOwner(v)
			if !ok {
				return 0, false
			}
			if prevOwner != owner && attached[prevOwner] {
				return 0, false
			}
		}
		return ord, true
	}
}

// memberNameSet returns the names of every attached member (draining members
// included — their rows have not fully left yet).
func (r *Router) memberNameSet() map[string]bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]bool, len(r.members))
	for _, m := range r.members {
		out[m.Name()] = true
	}
	return out
}

// Stats counts router-level routing decisions; the per-shard scan counters
// live on the member accelerators and are aggregated by Router.Stats.
type Stats struct {
	// QueriesRouted counts SELECTs executed through the router.
	QueriesRouted int64
	// QueriesPruned counts SELECTs answered by a single shard because
	// distribution-key predicates (equality, IN list, bounded range) covered
	// the distribution key.
	QueriesPruned int64
	// TwoPhaseAggregates counts SELECTs executed as partial aggregation on the
	// shards with finalization at the coordinator.
	TwoPhaseAggregates int64
	// TwoPhaseFrames counts binary aggregation frames shipped shard ->
	// coordinator by two-phase statements (one per participating shard).
	TwoPhaseFrames int64
	// TwoPhaseFrameBytes is the actual wire size of those frames: fixed-width
	// binary group keys and accumulator states, strings as dictionary codes.
	TwoPhaseFrameBytes int64
	// TwoPhaseTextBytes estimates what the same partials would have cost with
	// the classic encoding (every value re-rendered as text), so the frame
	// saving is directly measurable as TwoPhaseTextBytes - TwoPhaseFrameBytes.
	TwoPhaseTextBytes int64
	// RowsGathered counts base-table rows shipped from shards to the
	// coordinator by scatter-gather queries.
	RowsGathered int64
	// ColocatedJoins counts multi-table SELECTs whose joins executed entirely
	// shard-local (co-located or broadcast placement).
	ColocatedJoins int64
	// BroadcastJoins counts the subset of ColocatedJoins that replicated at
	// least one table to the participating shards.
	BroadcastJoins int64
	// ShardScansAvoided counts per-table shard scans eliminated by
	// distribution-key pruning (summed over the statements' base tables).
	ShardScansAvoided int64
	// AnalyticsScatters counts shard-local procedure calls (CallShardLocal)
	// scattered across the fleet.
	AnalyticsScatters int64
	// AnalyticsPartials counts per-shard partial computations produced by
	// scattered procedure calls (one per shard per scatter).
	AnalyticsPartials int64
	// AnalyticsRowsWrittenLocal counts derived rows (predictions, cluster
	// assignments) written shard-local without passing the coordinator.
	AnalyticsRowsWrittenLocal int64
	// RowsMigrated counts rows moved between shards by the rebalancer.
	RowsMigrated int64
	// RebalanceBatches counts committed migration batches.
	RebalanceBatches int64
	// RebalancesCompleted counts rebalance runs that drove every table back to
	// a single placement map.
	RebalancesCompleted int64
	// Epoch is bumped on every membership change (member added, member
	// draining, member detached); queries use it to detect a fleet view that
	// changed under them.
	Epoch int64
}

// Router spreads tables over a fleet of accelerators and implements
// accel.Backend, so the federation layer, the AOT manager and replication can
// treat the fleet exactly like one big accelerator. The fleet is elastic:
// AddMember and RemoveMember (rebalance.go) change the member set at runtime
// and the rebalancer live-migrates rows to match.
type Router struct {
	name string

	// mu guards members, leaving and the tables map. members is treated as
	// copy-on-write: mutations install a fresh slice, so a reader that copied
	// the header under mu can keep using its snapshot lock-free.
	mu      sync.RWMutex
	members []*accel.Accelerator
	leaving map[string]bool
	tables  map[string]*tableMeta

	// journal records cross-member rebalance commits (durable.go); nil while
	// durability is off.
	journal MultiCommitJournal

	// epoch counts membership changes (atomic).
	epoch int64

	// commitMu fences transaction visibility changes against snapshot
	// acquisition: CommitTxn/AbortTxn hold it exclusively while flipping every
	// member, queries hold it shared while collecting one snapshot per member.
	// A transaction committing across the fleet is therefore visible on every
	// shard of a statement's snapshot set or on none — the cross-shard
	// equivalent of the single accelerator's atomic registry commit. The
	// rebalancer commits each batch's source-delete and destination-insert
	// under the same exclusive fence, which is what keeps every row visible on
	// exactly one shard throughout a migration.
	commitMu sync.RWMutex

	stats Stats

	// rebal is the single-flight state of the background rebalancer.
	rebal rebalanceState

	// planningDisabled turns the cost-based planner off (heuristic routing
	// only); the benchmark harness uses it to measure the planner's effect.
	planningDisabled int32

	// analyticsDisabled turns shard-local procedure execution off (CALLs then
	// gather rows to the coordinator like before); the benchmark harness uses
	// it to measure the scatter/merge path's effect.
	analyticsDisabled int32

	// vectorizedOff mirrors the members' vectorized-execution switch so
	// members joining an elastic fleet later inherit the current setting.
	vectorizedOff int32

	// procMu guards procCalls, the per-procedure scatter counters surfaced by
	// DistributedProcCalls.
	procMu    sync.Mutex
	procCalls map[string]int64

	// events is the ops-plane journal (nil until SetEventLog wires one; every
	// eventlog method is nil-safe, so emission points need no guards).
	events atomic.Pointer[eventlog.Log]
}

// NewRouter creates a router over the given member accelerators. At least one
// member is required; two or more make sharding meaningful.
func NewRouter(name string, members []*accel.Accelerator) (*Router, error) {
	if len(members) == 0 {
		return nil, fmt.Errorf("shard: router %s needs at least one member accelerator", types.NormalizeName(name))
	}
	return &Router{
		name:      types.NormalizeName(name),
		members:   append([]*accel.Accelerator(nil), members...),
		leaving:   make(map[string]bool),
		tables:    make(map[string]*tableMeta),
		procCalls: make(map[string]int64),
	}, nil
}

// Name returns the router's pairing name.
func (r *Router) Name() string { return r.name }

// Members returns the member accelerators in shard order, including members
// that are still draining before removal.
func (r *Router) Members() []*accel.Accelerator {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.members
}

// Epoch returns the membership epoch: it advances whenever a member is added,
// starts draining, or is detached.
func (r *Router) Epoch() int64 { return atomic.LoadInt64(&r.epoch) }

// ownersLocked returns the names and router ordinals of the members rows may
// be placed on (everyone except draining members). Callers hold r.mu.
func (r *Router) ownersLocked() (names []string, ords []int) {
	for i, m := range r.members {
		if r.leaving[m.Name()] {
			continue
		}
		names = append(names, m.Name())
		ords = append(ords, i)
	}
	return names, ords
}

// newPartitionerLocked builds a placement map for the current owner set.
func (r *Router) newPartitionerLocked(keyIdx int, keyKind types.Kind) Partitioner {
	names, ords := r.ownersLocked()
	if keyIdx >= 0 {
		return NewHashPartitionerOrdinals(keyIdx, keyKind, names, ords)
	}
	return NewRoundRobinPartitionerOrdinals(names, ords)
}

// Slices returns the fleet's total scan parallelism.
func (r *Router) Slices() int {
	total := 0
	for _, m := range r.Members() {
		total += m.Slices()
	}
	return total
}

// Stats aggregates the activity counters of every shard. Tables is the number
// of sharded tables (each is present on every member), slices the fleet total.
func (r *Router) Stats() accel.Stats {
	r.mu.RLock()
	tables := len(r.tables)
	r.mu.RUnlock()
	var out accel.Stats
	for _, m := range r.Members() {
		st := m.Stats()
		out.QueriesRun += st.QueriesRun
		out.QueryErrors += st.QueryErrors
		out.RowsScanned += st.RowsScanned
		out.BlocksPruned += st.BlocksPruned
		out.RowsIngested += st.RowsIngested
		out.RowsReturned += st.RowsReturned
		out.DMLStatements += st.DMLStatements
		out.VectorizedQueries += st.VectorizedQueries
		out.VectorizedJoins += st.VectorizedJoins
		out.VexecFallbacks += st.VexecFallbacks
		out.Slices += st.Slices
	}
	out.Tables = tables
	return out
}

// Resources aggregates the members' storage footprints into one store view
// labelled with the group name (the accel.Backend form — callers that cannot
// tell a fleet from a single accelerator). Per-member detail, which is what
// makes capacity skew visible, stays on FleetResources.
func (r *Router) Resources() obs.StoreResources {
	fleet := r.FleetResources()
	out := obs.StoreResources{Member: r.name}
	perTable := make(map[string]*obs.TableResources)
	var order []string
	for _, m := range fleet.Members {
		for _, t := range m.TableDetail {
			agg := perTable[t.Table]
			if agg == nil {
				agg = &obs.TableResources{Table: t.Table}
				perTable[t.Table] = agg
				order = append(order, t.Table)
			}
			agg.Rows += t.Rows
			agg.Bytes += t.Bytes
			agg.Blocks += t.Blocks
			agg.ZoneMapEntries += t.ZoneMapEntries
		}
	}
	sort.Strings(order)
	for _, name := range order {
		out.AddTable(*perTable[name])
	}
	return out
}

// FleetResources reports every member's storage footprint (per-table,
// per-column) plus the fleet totals and skew summary the capacity gauges
// export.
func (r *Router) FleetResources() obs.FleetResources {
	ms := r.Members()
	members := make([]obs.StoreResources, len(ms))
	for i, m := range ms {
		members[i] = m.Resources()
	}
	return obs.AggregateFleet(members)
}

// MemberStats returns each shard's own activity counters, in shard order.
func (r *Router) MemberStats() []accel.Stats {
	ms := r.Members()
	out := make([]accel.Stats, len(ms))
	for i, m := range ms {
		out[i] = m.Stats()
	}
	return out
}

// ShardingStats returns the router-level routing counters.
func (r *Router) ShardingStats() Stats {
	return Stats{
		QueriesRouted:             atomic.LoadInt64(&r.stats.QueriesRouted),
		QueriesPruned:             atomic.LoadInt64(&r.stats.QueriesPruned),
		TwoPhaseAggregates:        atomic.LoadInt64(&r.stats.TwoPhaseAggregates),
		TwoPhaseFrames:            atomic.LoadInt64(&r.stats.TwoPhaseFrames),
		TwoPhaseFrameBytes:        atomic.LoadInt64(&r.stats.TwoPhaseFrameBytes),
		TwoPhaseTextBytes:         atomic.LoadInt64(&r.stats.TwoPhaseTextBytes),
		RowsGathered:              atomic.LoadInt64(&r.stats.RowsGathered),
		ColocatedJoins:            atomic.LoadInt64(&r.stats.ColocatedJoins),
		BroadcastJoins:            atomic.LoadInt64(&r.stats.BroadcastJoins),
		ShardScansAvoided:         atomic.LoadInt64(&r.stats.ShardScansAvoided),
		AnalyticsScatters:         atomic.LoadInt64(&r.stats.AnalyticsScatters),
		AnalyticsPartials:         atomic.LoadInt64(&r.stats.AnalyticsPartials),
		AnalyticsRowsWrittenLocal: atomic.LoadInt64(&r.stats.AnalyticsRowsWrittenLocal),
		RowsMigrated:              atomic.LoadInt64(&r.stats.RowsMigrated),
		RebalanceBatches:          atomic.LoadInt64(&r.stats.RebalanceBatches),
		RebalancesCompleted:       atomic.LoadInt64(&r.stats.RebalancesCompleted),
		Epoch:                     r.Epoch(),
	}
}

// SetCostBasedPlanning enables or disables the cost-based planner (enabled by
// default). With planning off, the router falls back to the heuristic
// routing: equality-only pruning, single-table two-phase aggregation, and
// gather joins.
func (r *Router) SetCostBasedPlanning(enabled bool) {
	v := int32(1)
	if enabled {
		v = 0
	}
	atomic.StoreInt32(&r.planningDisabled, v)
}

// PlanningEnabled reports whether cost-based planning is active.
func (r *Router) PlanningEnabled() bool { return atomic.LoadInt32(&r.planningDisabled) == 0 }

// SetVectorizedExecution toggles the vectorized batch engine on every member
// (and on members added later). Enabled by default; bench E13 turns it off to
// measure the row-at-a-time baseline.
func (r *Router) SetVectorizedExecution(enabled bool) {
	v := int32(1)
	if enabled {
		v = 0
	}
	atomic.StoreInt32(&r.vectorizedOff, v)
	for _, m := range r.Members() {
		m.SetVectorizedExecution(enabled)
	}
}

// VectorizedEnabled reports whether the fleet runs vectorized execution.
func (r *Router) VectorizedEnabled() bool { return atomic.LoadInt32(&r.vectorizedOff) == 0 }

func (r *Router) meta(table string) (*tableMeta, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	m, ok := r.tables[types.NormalizeName(table)]
	if !ok {
		return nil, fmt.Errorf("shard: table %s is not sharded on %s", types.NormalizeName(table), r.name)
	}
	return m, nil
}

// ---------------------------------------------------------------------------
// DDL
// ---------------------------------------------------------------------------

// CreateTable creates the table on every shard. A non-empty distKey selects
// hash distribution on that column; an empty one selects round robin.
func (r *Router) CreateTable(name string, schema types.Schema, distKey string) error {
	name = types.NormalizeName(name)
	distKey = types.NormalizeName(distKey)
	keyIdx := -1
	keyKind := types.KindInt
	if distKey != "" {
		keyIdx = schema.IndexOf(distKey)
		if keyIdx < 0 {
			return fmt.Errorf("shard: distribution key %s is not a column of %s", distKey, name)
		}
		keyKind = schema.Columns[keyIdx].Kind
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tables[name]; ok {
		return fmt.Errorf("shard: table %s already exists on %s", name, r.name)
	}
	for i, m := range r.members {
		if err := m.CreateTable(name, schema, distKey); err != nil {
			// Undo the members that already created the table so the fleet
			// stays consistent.
			for _, prev := range r.members[:i] {
				_ = prev.DropTable(name)
			}
			return err
		}
	}
	r.tables[name] = &tableMeta{
		schema:  schema,
		distKey: distKey,
		keyIdx:  keyIdx,
		part:    r.newPartitionerLocked(keyIdx, keyKind),
	}
	return nil
}

// DropTable removes the table from every shard.
func (r *Router) DropTable(name string) error {
	name = types.NormalizeName(name)
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tables[name]; !ok {
		return fmt.Errorf("shard: table %s is not sharded on %s", name, r.name)
	}
	var firstErr error
	for _, m := range r.members {
		if err := m.DropTable(name); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	delete(r.tables, name)
	return firstErr
}

// HasTable reports whether the table is sharded on this router.
func (r *Router) HasTable(name string) bool {
	r.mu.RLock()
	defer r.mu.RUnlock()
	_, ok := r.tables[types.NormalizeName(name)]
	return ok
}

// TableNames returns the sharded table names, sorted.
func (r *Router) TableNames() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.tables))
	for name := range r.tables {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Statistics and planning
// ---------------------------------------------------------------------------

// Analyze rebuilds the planner statistics of a sharded table on every member
// and returns the total number of rows analyzed.
func (r *Router) Analyze(table string) (int, error) {
	if _, err := r.meta(table); err != nil {
		return 0, err
	}
	total := 0
	for _, m := range r.Members() {
		n, err := m.Analyze(table)
		total += n
		if err != nil {
			return total, fmt.Errorf("shard %s: %w", m.Name(), err)
		}
	}
	return total, nil
}

// TableStatistics merges the per-shard statistics of a sharded table into a
// fleet-wide snapshot (row counts add, min/max widen, NDV sums capped; see
// stats.Merge).
func (r *Router) TableStatistics(table string) (stats.Snapshot, error) {
	if _, err := r.meta(table); err != nil {
		return stats.Snapshot{}, err
	}
	ms := r.Members()
	snaps := make([]stats.Snapshot, 0, len(ms))
	for _, m := range ms {
		s, err := m.TableStatistics(table)
		if err != nil {
			return stats.Snapshot{}, fmt.Errorf("shard %s: %w", m.Name(), err)
		}
		snaps = append(snaps, s)
	}
	return stats.Merge(snaps), nil
}

// PlannerCatalog exposes the sharded tables, their merged statistics and
// their partitioners to the cost-based planner. While a table is migrating,
// the catalog marks it so: the planner then suspends co-located join
// placement for it and prunes only on keys whose owner every active placement
// map agrees on (double-routing).
func (r *Router) PlannerCatalog() planner.Catalog {
	return func(table string) (planner.TableInfo, bool) {
		meta, err := r.meta(table)
		if err != nil {
			return planner.TableInfo{}, false
		}
		snap, err := r.TableStatistics(table)
		if err != nil {
			snap = stats.Snapshot{}
		}
		ms := r.Members()
		names := make([]string, len(ms))
		for i, m := range ms {
			names[i] = m.Name()
		}
		info := planner.TableInfo{
			Name:      types.NormalizeName(table),
			Schema:    meta.schema,
			Stats:     snap,
			DistKey:   meta.distKey,
			Shards:    len(ms),
			Migrating: meta.migrating(),
			Members:   names,
		}
		if meta.keyIdx >= 0 {
			info.PlaceKey = r.routedPlaceKey(meta)
		}
		return info, true
	}
}

// Explain plans a SELECT against the shard fleet without executing it.
func (r *Router) Explain(sel *sqlparse.SelectStmt) (*planner.Plan, error) {
	pl := planner.PlanSelect(sel, r.PlannerCatalog())
	if pl != nil {
		r.annotateVectorized(pl, sel)
	}
	return pl, nil
}

// annotateVectorized records how far the members' vectorized batch engine
// carries the statement (the members execute pruned/scattered statements, so
// the single-table eligibility rules apply shard-side too).
func (r *Router) annotateVectorized(pl *planner.Plan, sel *sqlparse.SelectStmt) {
	// Column encodings are per-member physical state; members of a healthy
	// fleet converge on the same dictionaries, so the first member's tables
	// stand in for the fleet in the plan display. Reported whether or not the
	// batch engine runs the statement.
	if ms := r.Members(); len(ms) > 0 {
		for i, scan := range pl.Scans {
			if scan.Item.Subquery != nil {
				continue
			}
			if t, err := ms[0].Table(scan.Item.Table); err == nil {
				pl.Scans[i].Encoding = accel.EncodingSummary(t)
			}
		}
	}
	if !r.VectorizedEnabled() {
		return
	}
	pl.Vectorized = true
	pl.VectorizedMode = vexec.ModeScan
	// Annotate from the planner-rewritten statement — members execute pl.Sel
	// with pl.Methods, not the original FROM order.
	if pl.Sel != nil {
		sel = pl.Sel
	}
	switch {
	case len(sel.From) == 1 && sel.From[0].Subquery == nil:
		meta, err := r.meta(sel.From[0].Table)
		if err != nil {
			return
		}
		if p, ok := vexec.PlanQuery(sel, meta.schema); ok {
			pl.VectorizedMode = p.Mode()
		}
	case len(sel.From) == 2 && sel.From[0].Subquery == nil && sel.From[1].Subquery == nil:
		// Broadcast and gather placements substitute or move relations, so the
		// members cannot run the join from column batches there.
		if pl.Placement != planner.PlacementColocated {
			return
		}
		lm, lerr := r.meta(sel.From[0].Table)
		rm, rerr := r.meta(sel.From[1].Table)
		if lerr != nil || rerr != nil {
			return
		}
		method := relalg.MethodAuto
		if len(pl.Methods) > 0 {
			method = pl.Methods[0]
		}
		if p, ok := vexec.PlanJoin(sel, lm.schema, rm.schema, method); ok {
			pl.VectorizedMode = p.Mode()
			if len(pl.Steps) > 0 {
				pl.Steps[0].Vectorized = true
			}
		}
	}
}

// ---------------------------------------------------------------------------
// Transaction coordination: every shard participates in the DB2 handshake.
// ---------------------------------------------------------------------------

// Prepare runs phase one of the commit handshake on every shard.
func (r *Router) Prepare(txnID int64) error {
	for _, m := range r.Members() {
		if err := m.Prepare(txnID); err != nil {
			return fmt.Errorf("shard %s: %w", m.Name(), err)
		}
	}
	return nil
}

// CommitTxn commits the DB2 transaction on every shard, atomically with
// respect to snapshot sets taken by concurrent queries.
func (r *Router) CommitTxn(txnID int64) {
	r.commitMu.Lock()
	defer r.commitMu.Unlock()
	for _, m := range r.Members() {
		m.CommitTxn(txnID)
	}
}

// AbortTxn aborts the DB2 transaction on every shard.
func (r *Router) AbortTxn(txnID int64) {
	r.commitMu.Lock()
	defer r.commitMu.Unlock()
	for _, m := range r.Members() {
		m.AbortTxn(txnID)
	}
}

// snapshotAll captures the member list and one snapshot per member atomically
// under the commit fence, giving a statement a consistent cross-shard view:
// no fleet-wide transaction commit and no migration batch commit can fall
// between two of the snapshots.
func (r *Router) snapshotAll(txnID int64) ([]*accel.Accelerator, []*accel.Snapshot) {
	r.commitMu.RLock()
	defer r.commitMu.RUnlock()
	ms := r.Members()
	snaps := make([]*accel.Snapshot, len(ms))
	for i, m := range ms {
		snaps[i] = m.Registry.Snapshot(txnID)
	}
	return ms, snaps
}

// ---------------------------------------------------------------------------
// DML. Every write path captures the member view and the live partitioner
// after taking the table's migration fence (shared), so it can never
// interleave with a batch move or a member detach on the same table.
// ---------------------------------------------------------------------------

// Insert partitions the rows by the table's distribution strategy and inserts
// each batch on its owning shard.
func (r *Router) Insert(txnID int64, table string, rows []types.Row) (int, error) {
	meta, err := r.meta(table)
	if err != nil {
		return 0, err
	}
	meta.migMu.RLock()
	defer meta.migMu.RUnlock()
	ms := r.Members()
	batches, _ := partitionRows(meta.partitioner(), len(ms), rows, nil)
	total := 0
	for i, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		n, err := ms[i].Insert(txnID, table, batch)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Update broadcasts the update to every shard; only shards owning matching
// rows change anything. Assigning to the hash distribution key is rejected —
// the row would have to migrate between shards mid-transaction and key-based
// shard pruning would silently miss it afterwards; the real MPP products
// restrict distribution-key updates the same way.
func (r *Router) Update(txnID int64, table string, assignments []sqlparse.Assignment, where sqlparse.Expr) (int, error) {
	meta, err := r.meta(table)
	if err != nil {
		return 0, err
	}
	if meta.keyIdx >= 0 {
		for _, as := range assignments {
			if types.NormalizeName(as.Column) == meta.distKey {
				return 0, fmt.Errorf("shard: cannot UPDATE distribution key %s of %s (delete and re-insert, or re-load to redistribute)", meta.distKey, types.NormalizeName(table))
			}
		}
	}
	meta.migMu.RLock()
	defer meta.migMu.RUnlock()
	total := 0
	for _, m := range r.Members() {
		n, err := m.Update(txnID, table, assignments, where)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Delete broadcasts the delete to every shard.
func (r *Router) Delete(txnID int64, table string, where sqlparse.Expr) (int, error) {
	meta, err := r.meta(table)
	if err != nil {
		return 0, err
	}
	meta.migMu.RLock()
	defer meta.migMu.RUnlock()
	total := 0
	for _, m := range r.Members() {
		n, err := m.Delete(txnID, table, where)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// Truncate truncates the table on every shard.
func (r *Router) Truncate(txnID int64, table string) (int, error) {
	meta, err := r.meta(table)
	if err != nil {
		return 0, err
	}
	meta.migMu.RLock()
	defer meta.migMu.RUnlock()
	total := 0
	for _, m := range r.Members() {
		n, err := m.Truncate(txnID, table)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// RowCount sums the visible row counts of every shard under one fenced
// snapshot set, so a concurrently committing transaction (or a migration
// batch) is counted on all shards or on none.
func (r *Router) RowCount(txnID int64, table string) (int, error) {
	if _, err := r.meta(table); err != nil {
		return 0, err
	}
	ms, snaps := r.snapshotAll(txnID)
	total := 0
	for i, m := range ms {
		t, err := m.Table(table)
		if err != nil {
			return total, err
		}
		total += t.VisibleRowCount(snaps[i].Visible)
	}
	return total, nil
}

// ---------------------------------------------------------------------------
// Replication fan-out: CDC batches land on the owning shard under the live
// placement map, so replication follows a rebalance as it happens.
// ---------------------------------------------------------------------------

// InsertReplicated partitions replicated rows (with their DB2 source row ids)
// and applies each batch on its owning shard, so every DB2 row is mirrored by
// exactly one shard. Each per-shard sub-batch commits independently, so a
// concurrent query may observe a CDC batch partially applied across shards —
// the usual replication-lag relaxation, one record-batch wide; transactional
// DML visibility is fenced in CommitTxn and is never partial.
func (r *Router) InsertReplicated(table string, rows []types.Row, srcIDs []int64) (int, error) {
	meta, err := r.meta(table)
	if err != nil {
		return 0, err
	}
	meta.migMu.RLock()
	defer meta.migMu.RUnlock()
	ms := r.Members()
	batches, srcBatches := partitionRows(meta.partitioner(), len(ms), rows, srcIDs)
	total := 0
	for i, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		var src []int64
		if srcBatches != nil {
			src = srcBatches[i]
		}
		n, err := ms[i].InsertReplicated(table, batch, src)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ApplyReplicatedDelete removes the shadow row wherever it lives.
func (r *Router) ApplyReplicatedDelete(table string, srcID int64) (bool, error) {
	meta, err := r.meta(table)
	if err != nil {
		return false, err
	}
	meta.migMu.RLock()
	defer meta.migMu.RUnlock()
	for _, m := range r.Members() {
		ok, err := m.ApplyReplicatedDelete(table, srcID)
		if err != nil {
			return false, err
		}
		if ok {
			return true, nil
		}
	}
	return false, nil
}

// ApplyReplicatedUpdate applies an update captured in DB2 to the shard that
// should own the new row image. When a hash-distributed key changes, the row
// migrates: the stale image is deleted from its old shard and the new image is
// inserted on the owner, so each DB2 row keeps exactly one shadow copy.
func (r *Router) ApplyReplicatedUpdate(table string, srcID int64, row types.Row) error {
	meta, err := r.meta(table)
	if err != nil {
		return err
	}
	meta.migMu.RLock()
	defer meta.migMu.RUnlock()
	ms := r.Members()
	if meta.keyIdx < 0 {
		// Round robin: update in place wherever the row lives; unseen rows are
		// placed like a fresh insert.
		for _, m := range ms {
			if m.HasReplicatedSource(table, srcID) {
				return m.ApplyReplicatedUpdate(table, srcID, row)
			}
		}
		batches, srcBatches := partitionRows(meta.partitioner(), len(ms), []types.Row{row}, []int64{srcID})
		for i, batch := range batches {
			if len(batch) == 0 {
				continue
			}
			if _, err := ms[i].InsertReplicated(table, batch, srcBatches[i]); err != nil {
				return err
			}
		}
		return nil
	}
	owner := ms[meta.partitioner().Place(row)]
	if owner.HasReplicatedSource(table, srcID) {
		return owner.ApplyReplicatedUpdate(table, srcID, row)
	}
	for _, m := range ms {
		if m == owner {
			continue
		}
		if _, err := m.ApplyReplicatedDelete(table, srcID); err != nil {
			return err
		}
	}
	_, err = owner.InsertReplicated(table, []types.Row{row}, []int64{srcID})
	return err
}

// TruncateReplicated truncates the shadow table on every shard.
func (r *Router) TruncateReplicated(table string) (int, error) {
	meta, err := r.meta(table)
	if err != nil {
		return 0, err
	}
	meta.migMu.RLock()
	defer meta.migMu.RUnlock()
	total := 0
	for _, m := range r.Members() {
		n, err := m.TruncateReplicated(table)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

// ---------------------------------------------------------------------------
// Bulk row movement (accel.Backend surface)
// ---------------------------------------------------------------------------

// ExportRows streams the committed-visible rows of every shard in shard
// order, under one fenced snapshot set — so a migration batch or fleet-wide
// commit landing mid-export can never duplicate or drop a row between shards.
func (r *Router) ExportRows(table string, fn func(row types.Row, srcID int64) error) error {
	if _, err := r.meta(table); err != nil {
		return err
	}
	ms, snaps := r.snapshotAll(0)
	for i, m := range ms {
		t, err := m.Table(table)
		if err != nil {
			return fmt.Errorf("shard %s: %w", m.Name(), err)
		}
		created, deleted, srcIDs := t.VersionMeta()
		for idx := range created {
			if !snaps[i].Visible(created[idx], deleted[idx]) {
				continue
			}
			if err := fn(t.ReadRow(idx), srcIDs[idx]); err != nil {
				return fmt.Errorf("shard %s: %w", m.Name(), err)
			}
		}
	}
	return nil
}

// ImportRows partitions the rows by the table's live distribution map and
// bulk-appends each batch on its owning shard under internal, immediately
// committed transactions.
func (r *Router) ImportRows(table string, rows []types.Row, srcIDs []int64) (int, error) {
	meta, err := r.meta(table)
	if err != nil {
		return 0, err
	}
	meta.migMu.RLock()
	defer meta.migMu.RUnlock()
	ms := r.Members()
	batches, srcBatches := partitionRows(meta.partitioner(), len(ms), rows, srcIDs)
	total := 0
	for i, batch := range batches {
		if len(batch) == 0 {
			continue
		}
		var src []int64
		if srcBatches != nil {
			src = srcBatches[i]
		}
		n, err := ms[i].ImportRows(table, batch, src)
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

var _ accel.Backend = (*Router)(nil)
