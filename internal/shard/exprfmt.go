package shard

import (
	"fmt"
	"strings"

	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

// formatExpr renders an expression tree into a canonical string so that two
// structurally identical expressions compare equal. The two-phase aggregation
// planner uses it to recognise occurrences of GROUP BY expressions inside the
// select list, HAVING and ORDER BY, and to de-duplicate identical aggregate
// calls across clauses.
func formatExpr(e sqlparse.Expr) string {
	switch n := e.(type) {
	case nil:
		return "<nil>"
	case *sqlparse.ColumnRef:
		return "col(" + types.NormalizeName(n.Table) + "." + types.NormalizeName(n.Name) + ")"
	case *sqlparse.Literal:
		return fmt.Sprintf("lit(%d:%s)", n.Val.Kind, n.Val.GroupKey())
	case *sqlparse.BinaryExpr:
		return fmt.Sprintf("bin(%d,%s,%s)", n.Op, formatExpr(n.Left), formatExpr(n.Right))
	case *sqlparse.UnaryExpr:
		return fmt.Sprintf("un(%s,%s)", n.Op, formatExpr(n.Operand))
	case *sqlparse.FuncCall:
		parts := make([]string, len(n.Args))
		for i, a := range n.Args {
			parts[i] = formatExpr(a)
		}
		return fmt.Sprintf("fn(%s,star=%t,distinct=%t,%s)", strings.ToUpper(n.Name), n.Star, n.Distinct, strings.Join(parts, ","))
	case *sqlparse.CaseExpr:
		var sb strings.Builder
		sb.WriteString("case(")
		sb.WriteString(formatExpr(n.Operand))
		for _, w := range n.Whens {
			sb.WriteString(",when(" + formatExpr(w.Cond) + "," + formatExpr(w.Result) + ")")
		}
		sb.WriteString(",else(" + formatExpr(n.Else) + "))")
		return sb.String()
	case *sqlparse.IsNullExpr:
		return fmt.Sprintf("isnull(%t,%s)", n.Negate, formatExpr(n.Operand))
	case *sqlparse.InExpr:
		parts := make([]string, len(n.List))
		for i, v := range n.List {
			parts[i] = formatExpr(v)
		}
		return fmt.Sprintf("in(%t,%s,%s)", n.Negate, formatExpr(n.Operand), strings.Join(parts, ","))
	case *sqlparse.BetweenExpr:
		return fmt.Sprintf("between(%t,%s,%s,%s)", n.Negate, formatExpr(n.Operand), formatExpr(n.Low), formatExpr(n.High))
	case *sqlparse.LikeExpr:
		return fmt.Sprintf("like(%t,%s,%s)", n.Negate, formatExpr(n.Operand), formatExpr(n.Pattern))
	case *sqlparse.CastExpr:
		return fmt.Sprintf("cast(%d,%s)", n.To, formatExpr(n.Operand))
	default:
		return fmt.Sprintf("%T", e)
	}
}

// andConjuncts flattens the top-level AND tree of a WHERE clause.
func andConjuncts(e sqlparse.Expr, out []sqlparse.Expr) []sqlparse.Expr {
	if b, ok := e.(*sqlparse.BinaryExpr); ok && b.Op == sqlparse.OpAnd {
		out = andConjuncts(b.Left, out)
		return andConjuncts(b.Right, out)
	}
	if e != nil {
		out = append(out, e)
	}
	return out
}
