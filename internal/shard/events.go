package shard

import (
	"fmt"
	"sync/atomic"

	"idaax/internal/obs/eventlog"
)

// SetEventLog wires the ops-plane event journal into the router: membership
// changes, rebalance lifecycle and batches, analytics scatter failures and
// shard scan errors are emitted into it from then on. The journal may be nil
// (every eventlog method is nil-safe), so emission points need no guards; the
// federation layer wires the coordinator's journal here when the shard group
// is attached.
func (r *Router) SetEventLog(l *eventlog.Log) {
	r.events.Store(l)
}

// eventLog returns the wired journal (nil when none).
func (r *Router) eventLog() *eventlog.Log {
	return r.events.Load()
}

// emitMember records a fleet membership transition.
func (r *Router) emitMember(typ, member, msg string) {
	r.eventLog().Emit(eventlog.Event{
		Type:     typ,
		Severity: eventlog.Info,
		Shard:    member,
		Message:  msg,
		Payload:  map[string]string{"group": r.name, "epoch": fmt.Sprint(r.Epoch())},
	})
}

// emitRebalance records a rebalance lifecycle event.
func (r *Router) emitRebalance(typ string, sev eventlog.Severity, table, msg string) {
	r.eventLog().Emit(eventlog.Event{
		Type:     typ,
		Severity: sev,
		Shard:    r.name,
		Table:    table,
		Message:  msg,
		Payload: map[string]string{
			"rows_migrated": fmt.Sprint(atomic.LoadInt64(&r.stats.RowsMigrated)),
			"batches":       fmt.Sprint(atomic.LoadInt64(&r.stats.RebalanceBatches)),
		},
	})
}

// emitScatterFailure records a failed analytics scatter partition.
func (r *Router) emitScatterFailure(member, table, proc string, err error) {
	r.eventLog().Emit(eventlog.Event{
		Type:     eventlog.TypeScatterFailed,
		Severity: eventlog.Error,
		Shard:    member,
		Table:    table,
		Message:  fmt.Sprintf("analytics scatter failed on %s: %v", member, err),
		Payload:  map[string]string{"procedure": proc},
	})
}

// emitScanError records a failed per-shard scan of a gathered statement.
func (r *Router) emitScanError(member, table string, err error) {
	r.eventLog().Emit(eventlog.Event{
		Type:     eventlog.TypeScanError,
		Severity: eventlog.Error,
		Shard:    member,
		Table:    table,
		Message:  fmt.Sprintf("shard scan failed on %s: %v", member, err),
	})
}
