package shard

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"idaax/internal/accel"
	"idaax/internal/obs"
	"idaax/internal/planner"
	"idaax/internal/relalg"
	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

// Query executes a SELECT across the shard fleet. The cost-based planner
// (internal/planner) decides among four strategies:
//
//  1. Shard pruning: distribution-key predicates (equality, IN lists, and
//     bounded integer ranges) restrict the statement to the shards that can
//     hold matching rows; when a single shard remains, the whole statement —
//     aggregation and ordering included — runs there. While a table is
//     migrating, pruning is restricted to keys whose owner every active
//     placement map agrees on (double-routing); moved keys scan all
//     candidates, so no in-flight row is ever missed.
//  2. Co-located execution: when every table is hash-distributed and joined
//     on its distribution key, the joins run entirely shard-local; grouped
//     queries additionally split into per-shard partial aggregation with
//     finalisation at the coordinator (two-phase), so only group rows travel.
//  3. Broadcast: when part of the join graph is co-located, the remaining
//     (smaller) tables are replicated to every participating shard and the
//     join still runs shard-local.
//  4. Scatter-gather: base rows of every referenced table are gathered from
//     the candidate shards in parallel (simple WHERE conjuncts pushed into
//     each shard's columnar scans) and the full statement executes on the
//     union at the coordinator — the general fallback.
//
// All plans return results identical to running the same statement on a
// single accelerator holding all rows — including while a rebalance is
// migrating rows, because batch moves commit atomically under the router's
// commit fence. If the fleet membership changes under a running statement
// (member detached, shifting shard ordinals), the statement transparently
// retries against the new view.
func (r *Router) Query(txnID int64, sel *sqlparse.SelectStmt) (*relalg.Relation, error) {
	return r.QueryTraced(txnID, sel, nil)
}

// QueryTraced is Query with a trace span (see accel.Backend.QueryTraced).
// Each rebalance-racing retry runs under its own "attempt" child so the trace
// shows the discarded execution alongside the one whose result was returned;
// the retries attribute on sp counts them. sp may be nil.
func (r *Router) QueryTraced(txnID int64, sel *sqlparse.SelectStmt, sp *obs.Span) (*relalg.Relation, error) {
	const maxRetries = 8
	for attempt := 0; ; attempt++ {
		epoch := r.Epoch()
		asp := sp
		if attempt > 0 {
			sp.Add(obs.KeyRetries, 1)
			asp = sp.Child("attempt")
		}
		rel, err := r.queryOnce(txnID, sel, asp)
		if asp != sp {
			asp.Finish()
		}
		if r.Epoch() == epoch || attempt >= maxRetries {
			return rel, err
		}
		// Membership changed while the statement ran; its shard ordinals may
		// be stale, so run it again on the settled view.
	}
}

func (r *Router) queryOnce(txnID int64, sel *sqlparse.SelectStmt, sp *obs.Span) (*relalg.Relation, error) {
	atomic.AddInt64(&r.stats.QueriesRouted, 1)
	if r.PlanningEnabled() {
		psp := sp.Child("plan")
		pl := planner.PlanSelect(sel, r.PlannerCatalog())
		psp.Finish()
		if pl != nil {
			return r.executePlanned(txnID, sel, pl, sp)
		}
	}
	return r.queryHeuristic(txnID, sel, sp)
}

// queryHeuristic is the pre-planner routing (still used when cost-based
// planning is disabled, e.g. by the benchmark harness to measure the gap).
func (r *Router) queryHeuristic(txnID int64, sel *sqlparse.SelectStmt, sp *obs.Span) (*relalg.Relation, error) {
	if len(sel.From) == 1 && sel.From[0].Subquery == nil {
		item := sel.From[0]
		if meta, err := r.meta(item.Table); err == nil {
			if shard, ok := r.pruneTarget(meta, item, sel.Where); ok {
				ms := r.Members()
				if shard >= 0 && shard < len(ms) {
					atomic.AddInt64(&r.stats.QueriesPruned, 1)
					return r.queryOneShard(txnID, sel, ms[shard], sp)
				}
			}
			if relalg.NeedsAggregation(sel) {
				if plan, ok := planTwoPhase(sel); ok {
					atomic.AddInt64(&r.stats.TwoPhaseAggregates, 1)
					return r.executeTwoPhase(txnID, plan, nil, sp)
				}
			}
		}
	}
	return r.executeGather(txnID, sel, nil, sp)
}

// queryOneShard runs the whole statement on a single member (the pruned fast
// path) under a per-shard trace span.
func (r *Router) queryOneShard(txnID int64, sel *sqlparse.SelectStmt, m *accel.Accelerator, sp *obs.Span) (*relalg.Relation, error) {
	ssp := sp.Child("shard")
	ssp.Label(obs.LabelShard, m.Name())
	rel, err := m.QueryTraced(txnID, sel, ssp)
	ssp.Finish()
	return rel, err
}

// executePlanned runs a SELECT according to the planner's placement decision.
func (r *Router) executePlanned(txnID int64, sel *sqlparse.SelectStmt, pl *planner.Plan, sp *obs.Span) (*relalg.Relation, error) {
	r.noteAvoidedScans(pl)
	switch pl.Placement {
	case planner.PlacementColocated, planner.PlacementBroadcast:
		return r.executeShardLocal(txnID, sel, pl, sp)
	default:
		// Gather; single-table statements never land here (the planner marks
		// them co-located), so no two-phase opportunity is lost.
		return r.executeGather(txnID, sel, pl, sp)
	}
}

// participantsOf maps the plan's candidate shard set to member ordinals
// (nil candidates = every member). An empty candidate set — a provably
// unsatisfiable distribution-key predicate — collapses to shard 0, which
// returns the correct empty (or zero-aggregate) result shape.
func participantsOf(total int, candidates []int, empty bool) []int {
	if empty {
		return []int{0}
	}
	if candidates == nil {
		return allOrdinals(total)
	}
	out := make([]int, 0, len(candidates))
	for _, s := range candidates {
		if s >= 0 && s < total {
			out = append(out, s)
		}
	}
	if len(out) == 0 {
		return []int{0}
	}
	return out
}

func allOrdinals(total int) []int {
	out := make([]int, total)
	for i := range out {
		out[i] = i
	}
	return out
}

// noteAvoidedScans accounts the per-table shard scans the plan's candidate
// sets eliminate.
func (r *Router) noteAvoidedScans(pl *planner.Plan) {
	total := len(r.Members())
	avoided := 0
	for _, scan := range pl.Scans {
		if !scan.Known {
			continue
		}
		if scan.EmptyCandidates {
			avoided += total - 1 // still touches one shard for the result shape
		} else if scan.Candidates != nil {
			avoided += total - len(scan.Candidates)
		}
	}
	if avoided > 0 {
		atomic.AddInt64(&r.stats.ShardScansAvoided, int64(avoided))
	}
}

// executeShardLocal runs co-located and broadcast plans: every participating
// shard builds the joined FROM relation locally (scans with pushdown, planned
// join order and methods, broadcast tables substituted by their gathered full
// content), and the coordinator executes the rest of the statement over the
// union of the per-shard join results. Grouped co-located statements take the
// cheaper two-phase route instead: shards pre-aggregate their local joins and
// only group rows travel.
func (r *Router) executeShardLocal(txnID int64, sel *sqlparse.SelectStmt, pl *planner.Plan, sp *obs.Span) (*relalg.Relation, error) {
	hasBroadcast := pl.Placement == planner.PlacementBroadcast
	multiTable := len(pl.Scans) > 1

	// Single remaining shard and nothing to broadcast: the whole statement —
	// aggregation, ordering, limits — is answerable by that shard alone (and
	// by its own snapshot), so the hot pruned path skips the fleet-wide
	// snapshot set entirely.
	if !hasBroadcast {
		ms := r.Members()
		if fast := participantsOf(len(ms), pl.Candidates, pl.EmptyCandidates); len(fast) == 1 {
			if pl.Candidates != nil || pl.EmptyCandidates {
				atomic.AddInt64(&r.stats.QueriesPruned, 1)
			}
			if multiTable {
				atomic.AddInt64(&r.stats.ColocatedJoins, 1)
			}
			return r.queryOneShard(txnID, sel, ms[fast[0]], sp)
		}
	}

	ms, snaps := r.snapshotAll(txnID)
	participants := participantsOf(len(ms), pl.Candidates, pl.EmptyCandidates)

	if !hasBroadcast && relalg.NeedsAggregation(sel) {
		if plan, ok := planTwoPhase(sel); ok {
			atomic.AddInt64(&r.stats.TwoPhaseAggregates, 1)
			if multiTable {
				atomic.AddInt64(&r.stats.ColocatedJoins, 1)
			}
			return r.executeTwoPhaseOn(txnID, plan, ms, snaps, participants, sp)
		}
	}

	if multiTable {
		atomic.AddInt64(&r.stats.ColocatedJoins, 1)
		if hasBroadcast {
			atomic.AddInt64(&r.stats.BroadcastJoins, 1)
		}
	}

	// Gather the full content of every broadcast table once; all shards share
	// the same materialised relation.
	var overrides map[string]*relalg.Relation
	for i, scan := range pl.Scans {
		if !scan.Broadcast {
			continue
		}
		item := pl.Sel.From[i]
		var from []int // empty candidates: an empty relation joins to nothing
		if !scan.EmptyCandidates {
			from = participantsOf(len(ms), scan.Candidates, false)
		}
		rows, err := r.gatherRows(ms, from, snaps, item, pl.Sel, sp)
		if err != nil {
			return nil, err
		}
		if overrides == nil {
			overrides = make(map[string]*relalg.Relation)
		}
		overrides[types.NormalizeName(item.Name())] = relalg.FromTable(item.Name(), scan.Info.Schema, rows)
	}

	// Build the joined FROM relation on every participating shard in parallel.
	results := make([]*relalg.Relation, len(participants))
	errs := make([]error, len(participants))
	var wg sync.WaitGroup
	for i, p := range participants {
		m := ms[p]
		m.NoteQuery()
		ssp := sp.Child("shard")
		ssp.Label(obs.LabelShard, m.Name())
		wg.Add(1)
		go func(i int, m *accel.Accelerator, snap *accel.Snapshot, ssp *obs.Span) {
			defer wg.Done()
			defer ssp.Finish()
			results[i], errs[i] = m.BuildFromRelationTraced(txnID, snap, pl.Sel, overrides, pl.Methods, ssp)
		}(i, m, snaps[p], ssp)
	}
	wg.Wait()
	union := &relalg.Relation{}
	for i := range participants {
		if errs[i] != nil {
			return nil, fmt.Errorf("shard %s: %w", ms[participants[i]].Name(), errs[i])
		}
		if union.Cols == nil {
			union.Cols = results[i].Cols
		}
		union.Rows = append(union.Rows, results[i].Rows...)
	}
	atomic.AddInt64(&r.stats.RowsGathered, int64(len(union.Rows)))
	msp := sp.Child("merge")
	rel, err := relalg.ExecuteSelect(union, pl.Sel, relalg.Options{Parallelism: r.Slices()})
	msp.Finish()
	return rel, err
}

// pruneTarget inspects the WHERE clause for a "distKey = literal" conjunct on
// the given FROM item and returns the single shard that can hold matching
// rows. Any such conjunct restricts every result row to one key value, so the
// whole query — including aggregation and ordering — is answerable by the
// owning shard alone. (The heuristic path only; the planner generalises this
// to IN lists and bounded ranges.) Placement goes through the routed check,
// so keys mid-migration are never pruned.
func (r *Router) pruneTarget(meta *tableMeta, item sqlparse.FromItem, where sqlparse.Expr) (int, bool) {
	if meta.keyIdx < 0 || where == nil {
		return 0, false
	}
	place := r.routedPlaceKey(meta)
	for _, conjunct := range andConjuncts(where, nil) {
		b, ok := conjunct.(*sqlparse.BinaryExpr)
		if !ok || b.Op != sqlparse.OpEq {
			continue
		}
		ref, lit := equalityOperands(b)
		if ref == nil || lit == nil || lit.Val.IsNull() {
			continue
		}
		if types.NormalizeName(ref.Name) != meta.distKey {
			continue
		}
		if ref.Table != "" && !strings.EqualFold(ref.Table, item.Name()) {
			continue
		}
		if shard, ok := place(lit.Val); ok {
			return shard, true
		}
	}
	return 0, false
}

// equalityOperands extracts (column, literal) from col = lit or lit = col.
func equalityOperands(b *sqlparse.BinaryExpr) (*sqlparse.ColumnRef, *sqlparse.Literal) {
	if ref, ok := b.Left.(*sqlparse.ColumnRef); ok {
		if lit, ok := b.Right.(*sqlparse.Literal); ok {
			return ref, lit
		}
	}
	if ref, ok := b.Right.(*sqlparse.ColumnRef); ok {
		if lit, ok := b.Left.(*sqlparse.Literal); ok {
			return ref, lit
		}
	}
	return nil, nil
}

// executeGather runs the general plan: every referenced sharded table is
// gathered from its candidate shards in parallel (all shards when pl is nil),
// subqueries recurse through the router, and the complete statement executes
// over the union — the same structure as Accelerator.Query, with the fleet
// standing in for the slices.
func (r *Router) executeGather(txnID int64, sel *sqlparse.SelectStmt, pl *planner.Plan, sp *obs.Span) (*relalg.Relation, error) {
	// One snapshot per member for the whole statement, taken under the commit
	// fence, so the scans of a multi-table join observe each shard at a
	// single, mutually consistent point in time.
	ms, snaps := r.snapshotAll(txnID)
	execSel := sel
	var methods []relalg.JoinMethod
	if pl != nil {
		execSel = pl.Sel
		methods = pl.Methods
	}

	// QueriesRun accounting: every member that gathers base rows for any
	// table did work for this statement.
	touched := map[int]bool{}
	for i, item := range execSel.From {
		if item.Subquery != nil {
			continue
		}
		members := allOrdinals(len(ms))
		if pl != nil && pl.Scans[i].Known {
			members = participantsOf(len(ms), pl.Scans[i].Candidates, pl.Scans[i].EmptyCandidates)
			if pl.Scans[i].EmptyCandidates {
				members = nil
			}
		}
		for _, m := range members {
			touched[m] = true
		}
	}
	for m := range touched {
		ms[m].NoteQuery()
	}

	from, err := r.buildFrom(txnID, ms, snaps, execSel, pl, methods, sp)
	if err != nil {
		return nil, err
	}
	esp := sp.Child("merge")
	rel, err := relalg.ExecuteSelect(from, execSel, relalg.Options{Parallelism: r.Slices()})
	esp.Finish()
	return rel, err
}

func (r *Router) buildFrom(txnID int64, ms []*accel.Accelerator, snaps []*accel.Snapshot, sel *sqlparse.SelectStmt, pl *planner.Plan, methods []relalg.JoinMethod, sp *obs.Span) (*relalg.Relation, error) {
	if len(sel.From) == 0 {
		return relalg.JoinAll(nil, nil, r.Slices())
	}
	rels := make([]*relalg.Relation, len(sel.From))
	for i, item := range sel.From {
		if item.Subquery != nil {
			ssp := sp.Child("subquery")
			sub, err := r.QueryTraced(txnID, item.Subquery, ssp)
			ssp.Finish()
			if err != nil {
				return nil, err
			}
			rels[i] = relalg.Requalify(sub, item.Name())
			continue
		}
		meta, err := r.meta(item.Table)
		if err != nil {
			return nil, err
		}
		members := allOrdinals(len(ms))
		if pl != nil && pl.Scans[i].Known {
			if pl.Scans[i].EmptyCandidates {
				members = nil
			} else {
				members = participantsOf(len(ms), pl.Scans[i].Candidates, false)
			}
		}
		rows, err := r.gatherRows(ms, members, snaps, item, sel, sp)
		if err != nil {
			return nil, err
		}
		rels[i] = relalg.FromTable(item.Name(), meta.schema, rows)
	}
	return relalg.JoinAllPlanned(rels, sel.From, methods, r.Slices())
}

// gatherRows scans one table on the given members concurrently and
// concatenates the results in shard order. Simple WHERE conjuncts are pushed
// into each shard's scan so zone maps prune on the shards, not at the
// coordinator.
func (r *Router) gatherRows(ms []*accel.Accelerator, members []int, snaps []*accel.Snapshot, item sqlparse.FromItem, sel *sqlparse.SelectStmt, sp *obs.Span) ([]types.Row, error) {
	gsp := sp.Child("gather")
	gsp.Label(obs.LabelTable, types.NormalizeName(item.Name()))
	gsp.Add(obs.KeyShards, int64(len(members)))
	defer gsp.Finish()
	results := make([][]types.Row, len(members))
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i, p := range members {
		wg.Add(1)
		go func(i int, m *accel.Accelerator, snap *accel.Snapshot) {
			defer wg.Done()
			results[i], errs[i] = m.ScanVisibleTraced(snap, item.Table, sel, item, gsp)
		}(i, ms[p], snaps[p])
	}
	wg.Wait()
	total := 0
	for i := range members {
		if errs[i] != nil {
			r.emitScanError(ms[members[i]].Name(), types.NormalizeName(item.Name()), errs[i])
			return nil, fmt.Errorf("shard %s: %w", ms[members[i]].Name(), errs[i])
		}
		total += len(results[i])
	}
	out := make([]types.Row, 0, total)
	for _, part := range results {
		out = append(out, part...)
	}
	atomic.AddInt64(&r.stats.RowsGathered, int64(total))
	return out, nil
}

// scatterQuery runs the same statement on the given members concurrently —
// each under its snapshot from the fenced set — and returns the union of the
// result relations (columns taken from the first shard; every shard produces
// the identical column layout).
func (r *Router) scatterQuery(txnID int64, sel *sqlparse.SelectStmt, ms []*accel.Accelerator, snaps []*accel.Snapshot, members []int, sp *obs.Span) (*relalg.Relation, error) {
	ssp := sp.Child("scatter")
	ssp.Add(obs.KeyShards, int64(len(members)))
	defer ssp.Finish()
	results := make([]*relalg.Relation, len(members))
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i, p := range members {
		qsp := ssp.Child("shard")
		qsp.Label(obs.LabelShard, ms[p].Name())
		wg.Add(1)
		go func(i int, m *accel.Accelerator, snap *accel.Snapshot, qsp *obs.Span) {
			defer wg.Done()
			defer qsp.Finish()
			results[i], errs[i] = m.QueryAtTraced(txnID, snap, sel, qsp)
		}(i, ms[p], snaps[p], qsp)
	}
	wg.Wait()
	union := &relalg.Relation{}
	for i := range members {
		if errs[i] != nil {
			return nil, fmt.Errorf("shard %s: %w", ms[members[i]].Name(), errs[i])
		}
		if union.Cols == nil {
			union.Cols = results[i].Cols
		}
		union.Rows = append(union.Rows, results[i].Rows...)
	}
	atomic.AddInt64(&r.stats.RowsGathered, int64(len(union.Rows)))
	return union, nil
}

// scatterPartials runs the partial-aggregate statement on the given members
// concurrently and ships each shard's result to the coordinator as a binary
// aggregation frame (frame.go): fixed-width tagged group keys and accumulator
// states, with repeated strings collapsed to int32 codes into per-column
// mini-dictionaries. The coordinator decodes the frames and concatenates them
// in member order — the same union scatterQuery would produce, at a fraction
// of the wire bytes of re-rendered text rows. The frame/byte counters record
// both the actual frame size and the estimated classic text size, so the
// saving is observable per statement.
func (r *Router) scatterPartials(txnID int64, sel *sqlparse.SelectStmt, ms []*accel.Accelerator, snaps []*accel.Snapshot, members []int, sp *obs.Span) (*relalg.Relation, error) {
	ssp := sp.Child("scatter")
	ssp.Add(obs.KeyShards, int64(len(members)))
	defer ssp.Finish()
	frames := make([][]byte, len(members))
	textBytes := make([]int64, len(members))
	errs := make([]error, len(members))
	var wg sync.WaitGroup
	for i, p := range members {
		qsp := ssp.Child("shard")
		qsp.Label(obs.LabelShard, ms[p].Name())
		wg.Add(1)
		go func(i int, m *accel.Accelerator, snap *accel.Snapshot, qsp *obs.Span) {
			defer wg.Done()
			defer qsp.Finish()
			rel, err := m.QueryAtTraced(txnID, snap, sel, qsp)
			if err != nil {
				errs[i] = err
				return
			}
			frames[i] = encodeAggFrame(rel)
			textBytes[i] = textWireBytes(rel)
		}(i, ms[p], snaps[p], qsp)
	}
	wg.Wait()
	union := &relalg.Relation{}
	var frameTotal, textTotal int64
	for i := range members {
		if errs[i] != nil {
			return nil, fmt.Errorf("shard %s: %w", ms[members[i]].Name(), errs[i])
		}
		part, err := decodeAggFrame(frames[i])
		if err != nil {
			return nil, fmt.Errorf("shard %s: %w", ms[members[i]].Name(), err)
		}
		frameTotal += int64(len(frames[i]))
		textTotal += textBytes[i]
		if union.Cols == nil {
			union.Cols = part.Cols
		}
		union.Rows = append(union.Rows, part.Rows...)
	}
	atomic.AddInt64(&r.stats.TwoPhaseFrames, int64(len(members)))
	atomic.AddInt64(&r.stats.TwoPhaseFrameBytes, frameTotal)
	atomic.AddInt64(&r.stats.TwoPhaseTextBytes, textTotal)
	atomic.AddInt64(&r.stats.RowsGathered, int64(len(union.Rows)))
	return union, nil
}

// executeTwoPhase scatters the partial-aggregate statement to the members
// (all of them when members is nil) and finalises the merged partials at the
// coordinator.
func (r *Router) executeTwoPhase(txnID int64, plan *twoPhasePlan, members []int, sp *obs.Span) (*relalg.Relation, error) {
	ms, snaps := r.snapshotAll(txnID)
	if members == nil {
		members = allOrdinals(len(ms))
	}
	return r.executeTwoPhaseOn(txnID, plan, ms, snaps, members, sp)
}

func (r *Router) executeTwoPhaseOn(txnID int64, plan *twoPhasePlan, ms []*accel.Accelerator, snaps []*accel.Snapshot, members []int, sp *obs.Span) (*relalg.Relation, error) {
	union, err := r.scatterPartials(txnID, plan.shardSel, ms, snaps, members, sp)
	if err != nil {
		return nil, err
	}
	fsp := sp.Child("finalize")
	rel, err := relalg.ExecuteSelect(union, plan.finalSel, relalg.Options{Parallelism: r.Slices()})
	fsp.Finish()
	return rel, err
}
