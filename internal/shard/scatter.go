package shard

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"

	"idaax/internal/accel"
	"idaax/internal/relalg"
	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

// Query executes a SELECT across the shard fleet. Three plans exist, picked in
// this order:
//
//  1. Shard pruning: when the query reads one hash-distributed table and an
//     equality conjunct of the WHERE clause covers the distribution key, only
//     the owning shard can hold matching rows — the whole statement runs there.
//  2. Two-phase aggregation: grouped/aggregate queries over one table are
//     rewritten so every shard computes partial aggregates (COUNT/SUM/MIN/MAX
//     and AVG split into SUM+COUNT) over its slice of the data and the
//     coordinator finalises the partials, applying HAVING/ORDER BY/LIMIT on
//     the merged groups. Only group rows travel, not base rows.
//  3. Scatter-gather: base rows of every referenced table are gathered from
//     all shards in parallel (simple WHERE conjuncts pushed into each shard's
//     columnar scans) and the full statement — joins included — executes on
//     the union at the coordinator.
//
// All plans return results identical to running the same statement on a
// single accelerator holding all rows.
func (r *Router) Query(txnID int64, sel *sqlparse.SelectStmt) (*relalg.Relation, error) {
	atomic.AddInt64(&r.stats.QueriesRouted, 1)
	if len(sel.From) == 1 && sel.From[0].Subquery == nil {
		item := sel.From[0]
		if meta, err := r.meta(item.Table); err == nil {
			if shard, ok := r.pruneTarget(meta, item, sel.Where); ok {
				atomic.AddInt64(&r.stats.QueriesPruned, 1)
				return r.members[shard].Query(txnID, sel)
			}
			if relalg.NeedsAggregation(sel) {
				if plan, ok := planTwoPhase(sel); ok {
					atomic.AddInt64(&r.stats.TwoPhaseAggregates, 1)
					return r.executeTwoPhase(txnID, plan)
				}
			}
		}
	}
	return r.executeGather(txnID, sel)
}

// pruneTarget inspects the WHERE clause for a "distKey = literal" conjunct on
// the given FROM item and returns the single shard that can hold matching
// rows. Any such conjunct restricts every result row to one key value, so the
// whole query — including aggregation and ordering — is answerable by the
// owning shard alone.
func (r *Router) pruneTarget(meta *tableMeta, item sqlparse.FromItem, where sqlparse.Expr) (int, bool) {
	if meta.keyIdx < 0 || where == nil {
		return 0, false
	}
	for _, conjunct := range andConjuncts(where, nil) {
		b, ok := conjunct.(*sqlparse.BinaryExpr)
		if !ok || b.Op != sqlparse.OpEq {
			continue
		}
		ref, lit := equalityOperands(b)
		if ref == nil || lit == nil || lit.Val.IsNull() {
			continue
		}
		if types.NormalizeName(ref.Name) != meta.distKey {
			continue
		}
		if ref.Table != "" && !strings.EqualFold(ref.Table, item.Name()) {
			continue
		}
		if shard, ok := meta.part.PlaceKey(lit.Val); ok {
			return shard, true
		}
	}
	return 0, false
}

// equalityOperands extracts (column, literal) from col = lit or lit = col.
func equalityOperands(b *sqlparse.BinaryExpr) (*sqlparse.ColumnRef, *sqlparse.Literal) {
	if ref, ok := b.Left.(*sqlparse.ColumnRef); ok {
		if lit, ok := b.Right.(*sqlparse.Literal); ok {
			return ref, lit
		}
	}
	if ref, ok := b.Right.(*sqlparse.ColumnRef); ok {
		if lit, ok := b.Left.(*sqlparse.Literal); ok {
			return ref, lit
		}
	}
	return nil, nil
}

// executeGather runs the general plan: every referenced sharded table is
// gathered from all shards in parallel, subqueries recurse through the
// router, and the complete statement executes over the union — the same
// structure as Accelerator.Query, with the fleet standing in for the slices.
func (r *Router) executeGather(txnID int64, sel *sqlparse.SelectStmt) (*relalg.Relation, error) {
	// One snapshot per member for the whole statement, taken under the commit
	// fence, so the scans of a multi-table join observe each shard at a
	// single, mutually consistent point in time.
	snaps := r.snapshotAll(txnID)
	for _, item := range sel.From {
		if item.Subquery == nil {
			// The statement gathers base rows from every shard; count it once
			// per member so QueriesRun is comparable across routing plans
			// (pruned: one shard; two-phase and gather: all shards).
			for _, m := range r.members {
				m.NoteQuery()
			}
			break
		}
	}
	from, err := r.buildFrom(txnID, snaps, sel)
	if err != nil {
		return nil, err
	}
	return relalg.ExecuteSelect(from, sel, relalg.Options{Parallelism: r.Slices()})
}

func (r *Router) buildFrom(txnID int64, snaps []*accel.Snapshot, sel *sqlparse.SelectStmt) (*relalg.Relation, error) {
	if len(sel.From) == 0 {
		return relalg.JoinAll(nil, nil, r.Slices())
	}
	rels := make([]*relalg.Relation, len(sel.From))
	for i, item := range sel.From {
		if item.Subquery != nil {
			sub, err := r.Query(txnID, item.Subquery)
			if err != nil {
				return nil, err
			}
			rels[i] = relalg.Requalify(sub, item.Name())
			continue
		}
		meta, err := r.meta(item.Table)
		if err != nil {
			return nil, err
		}
		rows, err := r.gatherRows(snaps, item, sel)
		if err != nil {
			return nil, err
		}
		rels[i] = relalg.FromTable(item.Name(), meta.schema, rows)
	}
	return relalg.JoinAll(rels, sel.From, r.Slices())
}

// gatherRows scans one table on every shard concurrently and concatenates the
// results in shard order. Simple WHERE conjuncts are pushed into each shard's
// scan so zone maps prune on the shards, not at the coordinator.
func (r *Router) gatherRows(snaps []*accel.Snapshot, item sqlparse.FromItem, sel *sqlparse.SelectStmt) ([]types.Row, error) {
	results := make([][]types.Row, len(r.members))
	errs := make([]error, len(r.members))
	var wg sync.WaitGroup
	for i, m := range r.members {
		wg.Add(1)
		go func(i int, m *accel.Accelerator) {
			defer wg.Done()
			results[i], errs[i] = m.ScanVisible(snaps[i], item.Table, sel, item)
		}(i, m)
	}
	wg.Wait()
	total := 0
	for i := range r.members {
		if errs[i] != nil {
			return nil, fmt.Errorf("shard %s: %w", r.members[i].Name(), errs[i])
		}
		total += len(results[i])
	}
	out := make([]types.Row, 0, total)
	for _, part := range results {
		out = append(out, part...)
	}
	atomic.AddInt64(&r.stats.RowsGathered, int64(total))
	return out, nil
}

// scatterQuery runs the same statement on every shard concurrently — each
// under its snapshot from the fenced set — and returns the union of the
// result relations (columns taken from the first shard; every shard produces
// the identical column layout).
func (r *Router) scatterQuery(txnID int64, sel *sqlparse.SelectStmt) (*relalg.Relation, error) {
	snaps := r.snapshotAll(txnID)
	results := make([]*relalg.Relation, len(r.members))
	errs := make([]error, len(r.members))
	var wg sync.WaitGroup
	for i, m := range r.members {
		wg.Add(1)
		go func(i int, m *accel.Accelerator) {
			defer wg.Done()
			results[i], errs[i] = m.QueryAt(txnID, snaps[i], sel)
		}(i, m)
	}
	wg.Wait()
	union := &relalg.Relation{}
	for i := range r.members {
		if errs[i] != nil {
			return nil, fmt.Errorf("shard %s: %w", r.members[i].Name(), errs[i])
		}
		if union.Cols == nil {
			union.Cols = results[i].Cols
		}
		union.Rows = append(union.Rows, results[i].Rows...)
	}
	atomic.AddInt64(&r.stats.RowsGathered, int64(len(union.Rows)))
	return union, nil
}

// executeTwoPhase scatters the partial-aggregate statement and finalises the
// merged partials at the coordinator.
func (r *Router) executeTwoPhase(txnID int64, plan *twoPhasePlan) (*relalg.Relation, error) {
	union, err := r.scatterQuery(txnID, plan.shardSel)
	if err != nil {
		return nil, err
	}
	return relalg.ExecuteSelect(union, plan.finalSel, relalg.Options{Parallelism: r.Slices()})
}
