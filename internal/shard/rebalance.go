package shard

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"idaax/internal/accel"
	"idaax/internal/colstore"
	"idaax/internal/durable"
	"idaax/internal/obs/eventlog"
	"idaax/internal/types"
)

// rebalanceBatchSize bounds how many rows one migration batch moves (and
// therefore how long the table's write fence is held per batch). Queries are
// never blocked; writers wait at most one batch.
const rebalanceBatchSize = 512

// rebalanceState is the single-flight bookkeeping of the background
// rebalancer: at most one worker goroutine runs per router, and membership
// changes that land while it runs set pending so the worker re-sweeps before
// exiting.
type rebalanceState struct {
	mu      sync.Mutex
	running bool
	pending bool
	done    chan struct{}
	lastErr error
	// passStart and rowsAtStart snapshot the moment the current worker was
	// launched, so RebalanceStatus can report a live migration rate.
	passStart   time.Time
	rowsAtStart int64
}

// RebalanceStatus is a point-in-time report of the rebalancer.
type RebalanceStatus struct {
	// Epoch is the membership epoch (see Router.Epoch).
	Epoch int64
	// Active reports whether the background rebalancer is running.
	Active bool
	// MigratingTables lists tables whose rows may still be placed by a
	// superseded map, sorted.
	MigratingTables []string
	// RowsMigrated and Batches are cumulative counters since router creation.
	RowsMigrated int64
	Batches      int64
	// RowsPerSec is the live migration rate of the running rebalance (rows
	// moved since the worker started over its elapsed time; 0 when idle).
	RowsPerSec float64
	// LastError is the last rebalance failure ("" when none).
	LastError string
}

// RebalanceStatus returns the rebalancer's current progress.
func (r *Router) RebalanceStatus() RebalanceStatus {
	migrated := atomic.LoadInt64(&r.stats.RowsMigrated)
	r.rebal.mu.Lock()
	active := r.rebal.running
	lastErr := ""
	if r.rebal.lastErr != nil {
		lastErr = r.rebal.lastErr.Error()
	}
	rate := 0.0
	if active {
		if elapsed := time.Since(r.rebal.passStart).Seconds(); elapsed > 0 {
			rate = float64(migrated-r.rebal.rowsAtStart) / elapsed
		}
	}
	r.rebal.mu.Unlock()
	return RebalanceStatus{
		Epoch:           r.Epoch(),
		Active:          active,
		MigratingTables: r.migratingTables(),
		RowsMigrated:    migrated,
		Batches:         atomic.LoadInt64(&r.stats.RebalanceBatches),
		RowsPerSec:      rate,
		LastError:       lastErr,
	}
}

func (r *Router) migratingTables() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []string
	for name, meta := range r.tables {
		if meta.migrating() {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// ---------------------------------------------------------------------------
// Membership changes
// ---------------------------------------------------------------------------

// AddMember grows the fleet: the accelerator joins the shard group, every
// sharded table is created on it, all placement maps are retargeted to the
// enlarged owner set, and a background rebalance starts migrating the keys
// the new member now owns (≈ 1/N of each hash-distributed table under
// rendezvous hashing). Queries and DML keep running throughout; use
// WaitRebalance to block until the fleet has converged.
func (r *Router) AddMember(a *accel.Accelerator) error {
	r.mu.Lock()
	for _, m := range r.members {
		if m.Name() == a.Name() {
			r.mu.Unlock()
			return fmt.Errorf("shard: %s is already a member of %s", a.Name(), r.name)
		}
	}
	// Create every sharded table on the new member before it becomes
	// routable, so placement maps can immediately target it.
	for name, meta := range r.tables {
		if !a.HasTable(name) {
			if err := a.CreateTable(name, meta.schema, meta.distKey); err != nil {
				r.mu.Unlock()
				return err
			}
		}
	}
	a.SetVectorizedExecution(r.VectorizedEnabled())
	r.members = append(append([]*accel.Accelerator(nil), r.members...), a)
	atomic.AddInt64(&r.epoch, 1)
	r.retargetLocked()
	r.mu.Unlock()
	r.emitMember(eventlog.TypeMemberAdded, a.Name(), fmt.Sprintf("%s joined shard group %s", a.Name(), r.name))
	r.StartRebalance()
	return nil
}

// RemoveMember shrinks the fleet: the member is marked as draining (placement
// maps stop targeting it), the rebalancer migrates every row off it, and once
// it is empty the member is detached from the group. The call blocks until
// the drain completes. A group never shrinks below two members — with one
// member there would be nothing left to shard over; drop the group and keep
// the accelerator standalone instead.
func (r *Router) RemoveMember(name string) error {
	name = types.NormalizeName(name)
	r.mu.Lock()
	found := false
	for _, m := range r.members {
		if m.Name() == name {
			found = true
			break
		}
	}
	if !found {
		r.mu.Unlock()
		return fmt.Errorf("shard: %s is not a member of %s", name, r.name)
	}
	if r.leaving[name] {
		r.mu.Unlock()
		return fmt.Errorf("shard: %s is already being removed from %s", name, r.name)
	}
	if len(r.members)-len(r.leaving) <= 2 {
		r.mu.Unlock()
		return fmt.Errorf("shard: cannot remove %s: shard group %s needs at least 2 members (drop the group to fold back to single-accelerator mode)", name, r.name)
	}
	r.leaving[name] = true
	atomic.AddInt64(&r.epoch, 1)
	r.retargetLocked()
	r.mu.Unlock()
	r.emitMember(eventlog.TypeMemberDraining, name, fmt.Sprintf("%s draining out of shard group %s", name, r.name))

	r.StartRebalance()
	if err := r.WaitRebalance(); err != nil {
		return err
	}
	if err := r.detach(name); err != nil {
		return err
	}
	r.emitMember(eventlog.TypeMemberDetached, name, fmt.Sprintf("%s detached from shard group %s", name, r.name))
	return nil
}

// retargetLocked installs a fresh placement map for every sharded table after
// a membership change. The superseded map is kept (the table is "migrating")
// whenever rows placed by it could now be misplaced: always for hash tables,
// and for round-robin tables only when an owner left (a pure round-robin grow
// leaves existing rows where they are — there is no key to miss). Callers
// hold r.mu exclusively.
func (r *Router) retargetLocked() {
	newNames, _ := r.ownersLocked()
	newSet := make(map[string]bool, len(newNames))
	for _, n := range newNames {
		newSet[n] = true
	}
	for _, meta := range r.tables {
		keyKind := types.KindInt
		if meta.keyIdx >= 0 {
			keyKind = meta.schema.Columns[meta.keyIdx].Kind
		}
		fresh := r.newPartitionerLocked(meta.keyIdx, keyKind)

		meta.pm.Lock()
		oldNames := meta.part.OwnerNames()
		sameOwners := len(oldNames) == len(newNames)
		shrunk := false
		for _, n := range oldNames {
			if !newSet[n] {
				sameOwners = false
				shrunk = true
			}
		}
		if sameOwners {
			// Owner set unchanged (e.g. ordinals compacted after a detach):
			// swap the map in place, nothing needs to migrate for it.
			meta.part = fresh
		} else {
			if meta.keyIdx >= 0 || shrunk {
				meta.prevs = append(meta.prevs, meta.part)
			}
			meta.part = fresh
		}
		meta.pm.Unlock()
	}
}

// detach removes a fully drained member from the group. It takes every
// table's write fence (in name order) so no writer can route by the old
// ordinals while they shift, verifies the member really holds no live rows,
// and compacts the member list.
func (r *Router) detach(name string) error {
	r.mu.RLock()
	names := make([]string, 0, len(r.tables))
	metas := make([]*tableMeta, 0, len(r.tables))
	for n := range r.tables {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		metas = append(metas, r.tables[n])
	}
	r.mu.RUnlock()

	for _, meta := range metas {
		meta.migMu.Lock()
	}
	defer func() {
		for _, meta := range metas {
			meta.migMu.Unlock()
		}
	}()

	r.mu.Lock()
	defer r.mu.Unlock()
	idx := -1
	for i, m := range r.members {
		if m.Name() == name {
			idx = i
			break
		}
	}
	if idx < 0 {
		return fmt.Errorf("shard: %s is not a member of %s", name, r.name)
	}
	leavingMember := r.members[idx]
	for tname := range r.tables {
		t, err := leavingMember.Table(tname)
		if err != nil {
			continue
		}
		if n := t.VisibleRowCount(leavingMember.Registry.Snapshot(0).Visible); n > 0 {
			return fmt.Errorf("shard: cannot detach %s from %s: %d rows of %s are still on it", name, r.name, n, tname)
		}
	}
	members := make([]*accel.Accelerator, 0, len(r.members)-1)
	for i, m := range r.members {
		if i != idx {
			members = append(members, m)
		}
	}
	r.members = members
	delete(r.leaving, name)
	atomic.AddInt64(&r.epoch, 1)
	// Owner set is unchanged (the leaving member was no owner since the drain
	// started), but ordinals shifted: rebuild every map in place.
	r.retargetLocked()
	return nil
}

// ---------------------------------------------------------------------------
// Background worker
// ---------------------------------------------------------------------------

// StartRebalance kicks the background rebalancer (idempotent: a running
// worker is told to re-sweep instead of spawning a second one). The worker
// migrates misplaced rows of every migrating table in bounded batches until
// the fleet has converged, then clears the tables' superseded maps.
func (r *Router) StartRebalance() {
	r.rebal.mu.Lock()
	defer r.rebal.mu.Unlock()
	if r.rebal.running {
		r.rebal.pending = true
		return
	}
	r.rebal.running = true
	r.rebal.done = make(chan struct{})
	r.rebal.passStart = time.Now()
	r.rebal.rowsAtStart = atomic.LoadInt64(&r.stats.RowsMigrated)
	r.emitRebalance(eventlog.TypeRebalanceStarted, eventlog.Info, "",
		fmt.Sprintf("rebalance started on %s (epoch %d)", r.name, r.Epoch()))
	go r.rebalanceWorker()
}

// WaitRebalance blocks until no rebalance is active and returns the last
// rebalance error, if any. It is the synchronisation point tests, examples
// and the drain path of RemoveMember use.
func (r *Router) WaitRebalance() error {
	for {
		r.rebal.mu.Lock()
		if !r.rebal.running {
			err := r.rebal.lastErr
			r.rebal.mu.Unlock()
			return err
		}
		done := r.rebal.done
		r.rebal.mu.Unlock()
		<-done
	}
}

func (r *Router) rebalanceWorker() {
	for {
		err := r.rebalancePass()
		r.rebal.mu.Lock()
		r.rebal.lastErr = err
		if r.rebal.pending {
			r.rebal.pending = false
			r.rebal.mu.Unlock()
			continue
		}
		r.rebal.running = false
		close(r.rebal.done)
		r.rebal.mu.Unlock()
		if err != nil {
			r.emitRebalance(eventlog.TypeRebalanceFailed, eventlog.Error, "",
				fmt.Sprintf("rebalance failed on %s: %v", r.name, err))
		} else {
			r.emitRebalance(eventlog.TypeRebalanceDone, eventlog.Info, "",
				fmt.Sprintf("rebalance completed on %s (epoch %d)", r.name, r.Epoch()))
		}
		return
	}
}

// rebalancePass sweeps every migrating table until a full sweep finds nothing
// to move and nothing pending, then finalises the tables (drops their
// superseded maps). Rows whose fate hangs on an in-flight transaction — an
// uncommitted insert on a shard that no longer owns the key, or a row an
// active transaction has delete-marked — are left alone and re-checked until
// the transaction resolves, so a rebalance completes only once concurrent
// writers have drained.
func (r *Router) rebalancePass() error {
	for {
		migrating := r.migratingTables()
		if len(migrating) == 0 {
			return nil
		}
		moved, pending := 0, 0
		for _, name := range migrating {
			m, p, err := r.sweepTable(name)
			if err != nil {
				return err
			}
			moved += m
			pending += p
		}
		if moved == 0 && pending == 0 {
			finalized := 0
			for _, name := range migrating {
				ok, err := r.finalizeTable(name)
				if err != nil {
					return err
				}
				if ok {
					finalized++
				}
			}
			if finalized == len(migrating) {
				atomic.AddInt64(&r.stats.RebalancesCompleted, 1)
				// Loop once more: a membership change may have marked tables
				// migrating again in the meantime.
				continue
			}
		}
		if moved == 0 {
			// Everything left is blocked on in-flight transactions; yield
			// briefly instead of spinning.
			time.Sleep(time.Millisecond)
		}
	}
}

// migEntry is one misplaced row scheduled for a batch move.
type migEntry struct {
	idx   int
	row   types.Row
	srcID int64
	dest  int
}

// versionFate classifies a stored row version for the migration engine.
type versionFate int

const (
	// fateDead: the version can never become visible again (creator aborted,
	// or a committed transaction deleted it). Irrelevant to migration.
	fateDead versionFate = iota
	// fateLive: a committed, undeleted row — movable if misplaced.
	fateLive
	// fatePending: the version's visibility hangs on a transaction that has
	// not settled — an in-flight insert, an in-flight delete, or a delete
	// marker whose transaction aborted but whose physical undo
	// (Accelerator.AbortTxn → UndoDeletesBy) has not landed yet. Such a row
	// can neither be moved nor declared gone; the engine re-checks it.
	fatePending
)

// fateOf is the single version-state classifier shared by the sweep and the
// finalisation check, so the two can never diverge on what counts as live.
func fateOf(reg *accel.Registry, created, deleted int64) versionFate {
	if reg.State(created) == accel.TxnAborted {
		return fateDead
	}
	if deleted != 0 {
		switch reg.State(deleted) {
		case accel.TxnCommitted:
			return fateDead
		default:
			// Active, prepared, or aborted-awaiting-undo: unsettled either way.
			return fatePending
		}
	}
	if reg.State(created) == accel.TxnCommitted {
		return fateLive
	}
	return fatePending
}

// sweepTable scans every member for rows a superseded map left behind and
// moves them to their owner under the live map in bounded batches. It returns
// how many rows moved and how many are pending on in-flight transactions.
func (r *Router) sweepTable(name string) (moved, pending int, err error) {
	meta, err := r.meta(name)
	if err != nil {
		return 0, 0, nil // dropped concurrently
	}
	ms := r.Members()
	for s, m := range ms {
		tab, terr := m.Table(name)
		if terr != nil {
			continue // member joined after the view was taken
		}
		mv, pd, serr := r.sweepMember(name, meta, ms, s, m, tab)
		moved += mv
		pending += pd
		if serr != nil {
			return moved, pending, serr
		}
	}
	return moved, pending, nil
}

func (r *Router) sweepMember(name string, meta *tableMeta, ms []*accel.Accelerator, s int, m *accel.Accelerator, tab *colstore.Table) (moved, pending int, err error) {
	part := meta.partitioner()
	ownerSet := make(map[int]bool)
	for _, o := range part.Ordinals() {
		ownerSet[o] = true
	}
	created, deleted, srcIDs := tab.VersionMeta()
	var batch []migEntry
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		n, p, ferr := r.moveBatch(name, meta, ms, s, batch)
		moved += n
		pending += p
		batch = batch[:0]
		return ferr
	}
	for idx := range created {
		switch fateOf(m.Registry, created[idx], deleted[idx]) {
		case fateDead:
			continue
		case fatePending:
			// The version's fate hangs on an unsettled transaction; if it is
			// (or would resurrect) misplaced, a later sweep picks it up.
			if r.isMisplaced(meta, part, ownerSet, tab.ReadRow(idx), s) {
				pending++
			}
			continue
		}
		row := tab.ReadRow(idx)
		if dest, bad := r.placeRow(meta, part, ownerSet, row, s); bad {
			batch = append(batch, migEntry{idx: idx, row: row, srcID: srcIDs[idx], dest: dest})
			if len(batch) >= rebalanceBatchSize {
				if err := flush(); err != nil {
					return moved, pending, err
				}
			}
		}
	}
	if err := flush(); err != nil {
		return moved, pending, err
	}
	return moved, pending, nil
}

// placeRow decides whether a row on shard ordinal `on` is misplaced under the
// live map and where it belongs. Hash tables place by key; round-robin tables
// have no wrong shard among the owners, so only rows on a non-owner (a
// draining member) are misplaced.
func (r *Router) placeRow(meta *tableMeta, part Partitioner, ownerSet map[int]bool, row types.Row, on int) (dest int, bad bool) {
	if meta.keyIdx >= 0 {
		dest = part.Place(row)
		return dest, dest != on
	}
	if ownerSet[on] {
		return on, false
	}
	return part.Place(row), true
}

func (r *Router) isMisplaced(meta *tableMeta, part Partitioner, ownerSet map[int]bool, row types.Row, on int) bool {
	_, bad := r.placeRow(meta, part, ownerSet, row, on)
	return bad
}

// moveBatch migrates one bounded batch of rows from source shard ordinal s to
// their owners. It holds the table's write fence for the duration, marks the
// source versions deleted under an internal transaction, inserts the row
// images (with their DB2 source ids, where present) on the destinations, and
// commits source and destinations together under the router's commit fence —
// so any query snapshot set sees each row either still on the source or
// already on its destination, never both and never neither.
func (r *Router) moveBatch(name string, meta *tableMeta, ms []*accel.Accelerator, s int, batch []migEntry) (moved, pending int, err error) {
	meta.migMu.Lock()
	defer meta.migMu.Unlock()

	src := ms[s]
	srcTab, err := src.Table(name)
	if err != nil {
		return 0, 0, err
	}
	srcTxn := src.NextInternalTxn()

	type destBatch struct {
		rows   []types.Row
		srcIDs []int64
		txn    int64
	}
	perDest := make(map[int]*destBatch)
	var claimed []migEntry
	for _, e := range batch {
		if !srcTab.MarkDeleted(e.idx, srcTxn) {
			// A transaction delete-marked the row since the sweep copied the
			// version metadata; it resolves later.
			pending++
			continue
		}
		claimed = append(claimed, e)
		db := perDest[e.dest]
		if db == nil {
			db = &destBatch{}
			perDest[e.dest] = db
		}
		db.rows = append(db.rows, e.row)
		db.srcIDs = append(db.srcIDs, e.srcID)
	}
	if len(claimed) == 0 {
		src.Registry.Abort(srcTxn)
		return 0, pending, nil
	}

	undo := func() {
		for _, e := range claimed {
			srcTab.UndoDelete(e.idx, srcTxn)
		}
		src.Registry.Abort(srcTxn)
	}
	for dest, db := range perDest {
		if dest < 0 || dest >= len(ms) {
			undo()
			return 0, pending, fmt.Errorf("shard: migration destination %d out of range on %s", dest, r.name)
		}
		dm := ms[dest]
		dtab, derr := dm.Table(name)
		if derr != nil {
			undo()
			return 0, pending, derr
		}
		db.txn = dm.NextInternalTxn()
		if _, ierr := dtab.InsertWithSource(db.txn, db.rows, db.srcIDs); ierr != nil {
			for d2, other := range perDest {
				if other.txn != 0 {
					ms[d2].Registry.Abort(other.txn)
				}
			}
			undo()
			return 0, pending, ierr
		}
	}

	// The atomic hand-over: source delete and destination inserts become
	// visible together, excluded against every query's snapshot set. With
	// durability on, the per-member commits are journaled as one multi-commit
	// record — all of them replay after a crash or none do, so a row is never
	// recovered deleted on the source but uncommitted on its destination.
	r.commitMu.Lock()
	if j := r.multiCommitJournal(); j != nil {
		entries := make([]durable.CommitEntry, 0, len(perDest)+1)
		entries = append(entries, durable.CommitEntry{Scope: src.Name(), Txn: srcTxn, Seq: src.Registry.CommitQuiet(srcTxn)})
		for dest, db := range perDest {
			entries = append(entries, durable.CommitEntry{Scope: ms[dest].Name(), Txn: db.txn, Seq: ms[dest].Registry.CommitQuiet(db.txn)})
		}
		j.LogMultiCommit(entries)
	} else {
		src.Registry.Commit(srcTxn)
		for dest, db := range perDest {
			ms[dest].Registry.Commit(db.txn)
		}
	}
	r.commitMu.Unlock()

	atomic.AddInt64(&r.stats.RowsMigrated, int64(len(claimed)))
	atomic.AddInt64(&r.stats.RebalanceBatches, 1)
	r.emitRebalance(eventlog.TypeRebalanceBatch, eventlog.Info, name,
		fmt.Sprintf("moved %d rows of %s off %s", len(claimed), name, src.Name()))
	return len(claimed), pending, nil
}

// finalizeTable drops a table's superseded placement maps once no misplaced
// or in-flight row remains. It re-verifies under the table's write fence so a
// writer cannot slip a misplaced row in between the check and the switch;
// afterwards pruning and co-located planning run on the live map alone.
func (r *Router) finalizeTable(name string) (bool, error) {
	meta, err := r.meta(name)
	if err != nil {
		return true, nil // dropped concurrently: nothing left to finalise
	}
	meta.migMu.Lock()
	defer meta.migMu.Unlock()

	part := meta.partitioner()
	ownerSet := make(map[int]bool)
	for _, o := range part.Ordinals() {
		ownerSet[o] = true
	}
	ms := r.Members()
	for s, m := range ms {
		tab, terr := m.Table(name)
		if terr != nil {
			continue
		}
		created, deleted, _ := tab.VersionMeta()
		for idx := range created {
			if fateOf(m.Registry, created[idx], deleted[idx]) == fateDead {
				continue
			}
			// Live or pending: either way a misplaced row blocks finalisation.
			if r.isMisplaced(meta, part, ownerSet, tab.ReadRow(idx), s) {
				return false, nil
			}
		}
	}
	meta.pm.Lock()
	meta.prevs = nil
	meta.pm.Unlock()
	return true, nil
}
