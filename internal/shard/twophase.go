package shard

import (
	"fmt"
	"strings"

	"idaax/internal/expr"
	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

// twoPhasePlan is a grouped/aggregate SELECT split into the statement each
// shard runs (grouping keys plus partial aggregates) and the statement the
// coordinator runs over the union of the shard results (re-grouping on the
// keys, merging the partials, then HAVING, projection, ORDER BY and LIMIT).
type twoPhasePlan struct {
	shardSel *sqlparse.SelectStmt
	finalSel *sqlparse.SelectStmt
}

// partialPrefix/groupPrefix name the synthesised shard-output columns. The
// names only exist between the two phases and can never collide with user
// columns because identifiers cannot start with an underscore pair here.
const groupPrefix = "__G"
const partialPrefix = "__A"

// twoPhaseBuilder rewrites expressions of the original statement into
// expressions over the shard-output columns.
type twoPhaseBuilder struct {
	groupKeys  []string // canonical forms of the GROUP BY expressions
	shardItems []sqlparse.SelectItem
	// partials maps the canonical form of an aggregate call to the aliases of
	// its partial columns (one for COUNT/SUM/MIN/MAX, two for AVG), so the
	// same aggregate appearing in the select list and in HAVING/ORDER BY is
	// computed once per shard.
	partials map[string][]string
}

// planTwoPhase decides whether the statement can run as two-phase partial
// aggregation and builds the plan. It declines (returning ok=false) when a
// select item is *, an aggregate is DISTINCT or STDDEV/VARIANCE, or a column
// is referenced outside both the GROUP BY expressions and aggregate
// arguments — those statements fall back to the scatter-gather plan, which
// handles everything.
func planTwoPhase(sel *sqlparse.SelectStmt) (*twoPhasePlan, bool) {
	for _, item := range sel.Items {
		if item.Star {
			return nil, false
		}
	}
	b := &twoPhaseBuilder{partials: make(map[string][]string)}
	finalGroupBy := make([]sqlparse.Expr, len(sel.GroupBy))
	for i, g := range sel.GroupBy {
		alias := fmt.Sprintf("%s%d", groupPrefix, i)
		b.groupKeys = append(b.groupKeys, formatExpr(g))
		b.shardItems = append(b.shardItems, sqlparse.SelectItem{Expr: g, Alias: alias})
		finalGroupBy[i] = &sqlparse.ColumnRef{Name: alias}
	}

	finalItems := make([]sqlparse.SelectItem, len(sel.Items))
	for i, item := range sel.Items {
		re, ok := b.rewrite(item.Expr)
		if !ok {
			return nil, false
		}
		alias := item.Alias
		if alias == "" {
			alias = expr.OutputName(item.Expr, i)
		}
		finalItems[i] = sqlparse.SelectItem{Expr: re, Alias: alias}
	}

	having, ok := b.rewrite(sel.Having)
	if !ok {
		return nil, false
	}

	finalOrder := make([]sqlparse.OrderItem, len(sel.OrderBy))
	for i, o := range sel.OrderBy {
		re, ok := b.rewriteOrderExpr(o.Expr, finalItems)
		if !ok {
			return nil, false
		}
		finalOrder[i] = sqlparse.OrderItem{Expr: re, Desc: o.Desc}
	}

	shardSel := &sqlparse.SelectStmt{
		Items:   b.shardItems,
		From:    sel.From,
		Where:   sel.Where,
		GroupBy: sel.GroupBy,
		Limit:   -1,
	}
	finalSel := &sqlparse.SelectStmt{
		Distinct: sel.Distinct,
		Items:    finalItems,
		GroupBy:  finalGroupBy,
		Having:   having,
		OrderBy:  finalOrder,
		Limit:    sel.Limit,
		Offset:   sel.Offset,
	}
	return &twoPhasePlan{shardSel: shardSel, finalSel: finalSel}, true
}

// rewrite maps an expression of the original statement onto the shard-output
// columns: occurrences of GROUP BY expressions become references to the
// grouping columns, aggregate calls become merge aggregates over the partial
// columns, and scalar structure is rebuilt around the rewritten children. A
// bare column reference that is neither a grouping expression nor inside an
// aggregate argument makes the rewrite fail.
func (b *twoPhaseBuilder) rewrite(e sqlparse.Expr) (sqlparse.Expr, bool) {
	if e == nil {
		return nil, true
	}
	key := formatExpr(e)
	for i, gk := range b.groupKeys {
		if key == gk {
			return &sqlparse.ColumnRef{Name: fmt.Sprintf("%s%d", groupPrefix, i)}, true
		}
	}
	if fc, ok := e.(*sqlparse.FuncCall); ok && fc.IsAggregate() {
		return b.rewriteAggregate(fc, key)
	}
	switch n := e.(type) {
	case *sqlparse.Literal:
		return n, true
	case *sqlparse.ColumnRef:
		// References the representative row of a group — semantics a sharded
		// execution cannot reproduce deterministically; decline.
		return nil, false
	case *sqlparse.BinaryExpr:
		l, ok := b.rewrite(n.Left)
		if !ok {
			return nil, false
		}
		rr, ok := b.rewrite(n.Right)
		if !ok {
			return nil, false
		}
		return &sqlparse.BinaryExpr{Op: n.Op, Left: l, Right: rr}, true
	case *sqlparse.UnaryExpr:
		op, ok := b.rewrite(n.Operand)
		if !ok {
			return nil, false
		}
		return &sqlparse.UnaryExpr{Op: n.Op, Operand: op}, true
	case *sqlparse.FuncCall:
		args := make([]sqlparse.Expr, len(n.Args))
		for i, a := range n.Args {
			ra, ok := b.rewrite(a)
			if !ok {
				return nil, false
			}
			args[i] = ra
		}
		return &sqlparse.FuncCall{Name: n.Name, Args: args, Star: n.Star, Distinct: n.Distinct}, true
	case *sqlparse.CaseExpr:
		operand, ok := b.rewrite(n.Operand)
		if !ok {
			return nil, false
		}
		whens := make([]sqlparse.WhenClause, len(n.Whens))
		for i, w := range n.Whens {
			c, ok := b.rewrite(w.Cond)
			if !ok {
				return nil, false
			}
			res, ok := b.rewrite(w.Result)
			if !ok {
				return nil, false
			}
			whens[i] = sqlparse.WhenClause{Cond: c, Result: res}
		}
		els, ok := b.rewrite(n.Else)
		if !ok {
			return nil, false
		}
		return &sqlparse.CaseExpr{Operand: operand, Whens: whens, Else: els}, true
	case *sqlparse.IsNullExpr:
		op, ok := b.rewrite(n.Operand)
		if !ok {
			return nil, false
		}
		return &sqlparse.IsNullExpr{Operand: op, Negate: n.Negate}, true
	case *sqlparse.InExpr:
		op, ok := b.rewrite(n.Operand)
		if !ok {
			return nil, false
		}
		list := make([]sqlparse.Expr, len(n.List))
		for i, v := range n.List {
			rv, ok := b.rewrite(v)
			if !ok {
				return nil, false
			}
			list[i] = rv
		}
		return &sqlparse.InExpr{Operand: op, List: list, Negate: n.Negate}, true
	case *sqlparse.BetweenExpr:
		op, ok := b.rewrite(n.Operand)
		if !ok {
			return nil, false
		}
		lo, ok := b.rewrite(n.Low)
		if !ok {
			return nil, false
		}
		hi, ok := b.rewrite(n.High)
		if !ok {
			return nil, false
		}
		return &sqlparse.BetweenExpr{Operand: op, Low: lo, High: hi, Negate: n.Negate}, true
	case *sqlparse.LikeExpr:
		op, ok := b.rewrite(n.Operand)
		if !ok {
			return nil, false
		}
		pat, ok := b.rewrite(n.Pattern)
		if !ok {
			return nil, false
		}
		return &sqlparse.LikeExpr{Operand: op, Pattern: pat, Negate: n.Negate}, true
	case *sqlparse.CastExpr:
		op, ok := b.rewrite(n.Operand)
		if !ok {
			return nil, false
		}
		return &sqlparse.CastExpr{Operand: op, To: n.To}, true
	default:
		return nil, false
	}
}

// rewriteAggregate turns one aggregate call into its merge form:
//
//	COUNT(x)/COUNT(*) -> SUM(partial counts)   (SUM of ints stays integral)
//	SUM(x)            -> SUM(partial sums)
//	MIN(x)/MAX(x)     -> MIN/MAX of partial extremes
//	AVG(x)            -> CAST(SUM(partial sums) AS DOUBLE) / SUM(partial counts)
//
// The AVG division yields NULL for all-NULL groups because SUM of the NULL
// partial sums is NULL, matching single-node AVG semantics; the CAST keeps the
// result DOUBLE like the single-node accumulator.
func (b *twoPhaseBuilder) rewriteAggregate(fc *sqlparse.FuncCall, key string) (sqlparse.Expr, bool) {
	if fc.Distinct {
		return nil, false
	}
	name := strings.ToUpper(fc.Name)
	switch name {
	case "COUNT", "SUM", "MIN", "MAX":
		aliases, ok := b.partials[key]
		if !ok {
			alias := fmt.Sprintf("%s%d", partialPrefix, len(b.shardItems))
			b.shardItems = append(b.shardItems, sqlparse.SelectItem{Expr: copyAggregate(fc), Alias: alias})
			aliases = []string{alias}
			b.partials[key] = aliases
		}
		merge := "SUM"
		if name == "MIN" || name == "MAX" {
			merge = name
		}
		return &sqlparse.FuncCall{Name: merge, Args: []sqlparse.Expr{&sqlparse.ColumnRef{Name: aliases[0]}}}, true
	case "AVG":
		aliases, ok := b.partials[key]
		if !ok {
			sumAlias := fmt.Sprintf("%s%dS", partialPrefix, len(b.shardItems))
			b.shardItems = append(b.shardItems, sqlparse.SelectItem{
				Expr:  &sqlparse.FuncCall{Name: "SUM", Args: append([]sqlparse.Expr(nil), fc.Args...)},
				Alias: sumAlias,
			})
			cntAlias := fmt.Sprintf("%s%dC", partialPrefix, len(b.shardItems))
			b.shardItems = append(b.shardItems, sqlparse.SelectItem{
				Expr:  &sqlparse.FuncCall{Name: "COUNT", Args: append([]sqlparse.Expr(nil), fc.Args...)},
				Alias: cntAlias,
			})
			aliases = []string{sumAlias, cntAlias}
			b.partials[key] = aliases
		}
		return &sqlparse.BinaryExpr{
			Op: sqlparse.OpDiv,
			Left: &sqlparse.CastExpr{
				Operand: &sqlparse.FuncCall{Name: "SUM", Args: []sqlparse.Expr{&sqlparse.ColumnRef{Name: aliases[0]}}},
				To:      types.KindFloat,
			},
			Right: &sqlparse.FuncCall{Name: "SUM", Args: []sqlparse.Expr{&sqlparse.ColumnRef{Name: aliases[1]}}},
		}, true
	default:
		// STDDEV/VARIANCE need sum-of-squares partials; the scatter-gather
		// fallback computes them exactly instead.
		return nil, false
	}
}

// rewriteOrderExpr rewrites an ORDER BY expression. Besides the regular
// rewrite it admits two forms the final ExecuteSelect resolves against the
// projected output: ordinal positions (ORDER BY 2) and bare references to a
// select-item alias.
func (b *twoPhaseBuilder) rewriteOrderExpr(e sqlparse.Expr, finalItems []sqlparse.SelectItem) (sqlparse.Expr, bool) {
	if lit, ok := e.(*sqlparse.Literal); ok && lit.Val.Kind == types.KindInt {
		return e, true
	}
	if re, ok := b.rewrite(e); ok {
		return re, true
	}
	if ref, ok := e.(*sqlparse.ColumnRef); ok && ref.Table == "" {
		name := types.NormalizeName(ref.Name)
		for _, item := range finalItems {
			if types.NormalizeName(item.Alias) == name {
				return e, true
			}
		}
	}
	return nil, false
}

// copyAggregate clones an aggregate call node so the shard statement owns a
// distinct pointer (the aggregation executor identifies calls by identity).
func copyAggregate(fc *sqlparse.FuncCall) *sqlparse.FuncCall {
	return &sqlparse.FuncCall{
		Name:     fc.Name,
		Args:     append([]sqlparse.Expr(nil), fc.Args...),
		Star:     fc.Star,
		Distinct: fc.Distinct,
	}
}
