package shard

import (
	"fmt"
	"testing"

	"idaax/internal/accel"
	"idaax/internal/types"
)

func ordersSchema() types.Schema {
	return types.NewSchema(
		types.Column{Name: "OID", Kind: types.KindInt},
		types.Column{Name: "CUSTOMER_ID", Kind: types.KindInt},
		types.Column{Name: "AMOUNT", Kind: types.KindFloat},
		types.Column{Name: "REGION", Kind: types.KindString},
	)
}

func customersSchema() types.Schema {
	return types.NewSchema(
		types.Column{Name: "ID", Kind: types.KindInt},
		types.Column{Name: "NAME", Kind: types.KindString},
		types.Column{Name: "SEGMENT", Kind: types.KindString},
	)
}

func regionsSchema() types.Schema {
	return types.NewSchema(
		types.Column{Name: "REGION", Kind: types.KindString},
		types.Column{Name: "FACTOR", Kind: types.KindFloat},
	)
}

func ordersRows(n int) []types.Row {
	regions := []string{"EU", "US", "APAC"}
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		cust := types.NewInt(int64(i % 97))
		if i%41 == 0 {
			cust = types.Null() // NULL join keys must never match on any plan
		}
		rows[i] = types.Row{
			types.NewInt(int64(i)),
			cust,
			types.NewFloat(float64(i%13) * 0.25),
			types.NewString(regions[i%len(regions)]),
		}
	}
	return rows
}

func customersRows() []types.Row {
	segments := []string{"SMB", "ENT", "GOV"}
	rows := make([]types.Row, 97)
	for i := 0; i < 97; i++ {
		rows[i] = types.Row{
			types.NewInt(int64(i)),
			types.NewString(fmt.Sprintf("C%03d", i)),
			types.NewString(segments[i%len(segments)]),
		}
	}
	return rows
}

func regionsRows() []types.Row {
	return []types.Row{
		{types.NewString("EU"), types.NewFloat(1.5)},
		{types.NewString("US"), types.NewFloat(2.0)},
		{types.NewString("APAC"), types.NewFloat(0.5)},
	}
}

// newJoinFleet builds a router over `shards` accelerators plus a reference
// accelerator, both loaded with ORDERS (hash on CUSTOMER_ID), CUSTOMERS
// (hash on ID — co-located with ORDERS) and REGIONS (round robin — the
// broadcast candidate).
func newJoinFleet(t *testing.T, shards int) (*Router, *accel.Accelerator) {
	t.Helper()
	members := make([]*accel.Accelerator, shards)
	for i := range members {
		members[i] = accel.New(fmt.Sprintf("SHARD%d", i), 2)
	}
	router, err := NewRouter("FLEET", members)
	if err != nil {
		t.Fatal(err)
	}
	ref := accel.New("REF", 2)

	load := func(name string, schema types.Schema, distKey string, rows []types.Row) {
		if err := router.CreateTable(name, schema, distKey); err != nil {
			t.Fatal(err)
		}
		if _, err := router.Insert(1, name, rows); err != nil {
			t.Fatal(err)
		}
		if err := ref.CreateTable(name, schema, distKey); err != nil {
			t.Fatal(err)
		}
		if _, err := ref.Insert(1, name, rows); err != nil {
			t.Fatal(err)
		}
	}
	load("ORDERS", ordersSchema(), "CUSTOMER_ID", ordersRows(600))
	load("CUSTOMERS", customersSchema(), "ID", customersRows())
	load("REGIONS", regionsSchema(), "", regionsRows())
	router.CommitTxn(1)
	ref.CommitTxn(1)
	return router, ref
}

// joinCases is the differential suite exercising every shard plan: co-located
// two- and three-way joins, broadcast joins, gather fallbacks (LEFT JOIN),
// and IN-list/range pruning — each must be byte-identical to the
// single-accelerator execution modulo ordering.
var joinCases = []struct {
	sql     string
	ordered bool
}{
	// Co-located: both sides hash-distributed on the join key.
	{"SELECT o.oid, c.name FROM orders o JOIN customers c ON o.customer_id = c.id ORDER BY o.oid", true},
	{"SELECT o.oid, c.name FROM orders o, customers c WHERE o.customer_id = c.id AND o.amount > 1 ORDER BY o.oid", true},
	{"SELECT c.segment, COUNT(*), SUM(o.amount) FROM orders o JOIN customers c ON o.customer_id = c.id GROUP BY c.segment ORDER BY c.segment", true},
	{"SELECT c.segment, AVG(o.amount) FROM orders o JOIN customers c ON o.customer_id = c.id WHERE o.region = 'EU' GROUP BY c.segment ORDER BY c.segment", true},
	// Broadcast: REGIONS is round robin, joined on a non-key column.
	{"SELECT o.oid, r.factor FROM orders o JOIN regions r ON o.region = r.region ORDER BY o.oid LIMIT 50", true},
	{"SELECT r.region, SUM(o.amount * r.factor) FROM orders o JOIN regions r ON o.region = r.region GROUP BY r.region ORDER BY r.region", true},
	// Three-way: co-located pair plus a broadcast table.
	{"SELECT c.segment, r.region, COUNT(*) FROM orders o JOIN customers c ON o.customer_id = c.id JOIN regions r ON o.region = r.region GROUP BY c.segment, r.region ORDER BY c.segment, r.region", true},
	// Gather fallback: LEFT JOIN keeps its semantics.
	{"SELECT c.id, COUNT(o.oid) FROM customers c LEFT JOIN orders o ON c.id = o.customer_id GROUP BY c.id ORDER BY c.id", true},
	// Pruning shapes on the distribution key.
	{"SELECT * FROM orders WHERE customer_id = 11 ORDER BY oid", true},
	{"SELECT COUNT(*), SUM(amount) FROM orders WHERE customer_id IN (3, 17, 42)", true},
	{"SELECT COUNT(*) FROM orders WHERE customer_id BETWEEN 10 AND 12", true},
	{"SELECT COUNT(*) FROM orders WHERE customer_id >= 90 AND customer_id < 93", true},
	{"SELECT COUNT(*) FROM orders WHERE customer_id = 5 AND customer_id = 80", true},
	// Pruned co-located join: the key predicate restricts every table.
	{"SELECT o.oid, c.name FROM orders o JOIN customers c ON o.customer_id = c.id WHERE o.customer_id IN (7, 8) ORDER BY o.oid", true},
}

func TestPlannedJoinsDifferential(t *testing.T) {
	router, ref := newJoinFleet(t, 3)
	for _, tc := range joinCases {
		got, err := router.Query(0, parseSelect(t, tc.sql))
		if err != nil {
			t.Fatalf("sharded %q: %v", tc.sql, err)
		}
		want, err := ref.Query(0, parseSelect(t, tc.sql))
		if err != nil {
			t.Fatalf("reference %q: %v", tc.sql, err)
		}
		assertSameResult(t, tc.sql, got, want, tc.ordered)
	}
	st := router.ShardingStats()
	if st.ColocatedJoins == 0 {
		t.Fatalf("no co-located joins recorded: %+v", st)
	}
	if st.BroadcastJoins == 0 {
		t.Fatalf("no broadcast joins recorded: %+v", st)
	}
	if st.ShardScansAvoided == 0 {
		t.Fatalf("no shard scans avoided: %+v", st)
	}
}

// TestPlannedJoinsDifferentialPlannerOff proves the heuristic fallback stays
// result-identical too (the benchmark baseline path).
func TestPlannedJoinsDifferentialPlannerOff(t *testing.T) {
	router, ref := newJoinFleet(t, 3)
	router.SetCostBasedPlanning(false)
	for _, tc := range joinCases {
		got, err := router.Query(0, parseSelect(t, tc.sql))
		if err != nil {
			t.Fatalf("sharded %q: %v", tc.sql, err)
		}
		want, err := ref.Query(0, parseSelect(t, tc.sql))
		if err != nil {
			t.Fatalf("reference %q: %v", tc.sql, err)
		}
		assertSameResult(t, tc.sql, got, want, tc.ordered)
	}
	if st := router.ShardingStats(); st.ColocatedJoins != 0 {
		t.Fatalf("planner disabled but co-located joins recorded: %+v", st)
	}
}

// TestColocatedJoinStaysShardLocal asserts the headline property: a join on
// the shared distribution key gathers no base rows — only per-shard join
// results (or aggregate partials) reach the coordinator.
func TestColocatedJoinStaysShardLocal(t *testing.T) {
	router, _ := newJoinFleet(t, 3)
	before := router.ShardingStats()
	sql := "SELECT c.segment, COUNT(*) FROM orders o JOIN customers c ON o.customer_id = c.id GROUP BY c.segment ORDER BY c.segment"
	rel, err := router.Query(0, parseSelect(t, sql))
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 3 {
		t.Fatalf("expected 3 segments, got %d", len(rel.Rows))
	}
	after := router.ShardingStats()
	if after.ColocatedJoins != before.ColocatedJoins+1 {
		t.Fatalf("co-located join not recorded: %+v", after)
	}
	if after.TwoPhaseAggregates != before.TwoPhaseAggregates+1 {
		t.Fatalf("expected the grouped co-located join to run two-phase: %+v", after)
	}
	// Two-phase over 3 shards with 3 groups each: at most 9 partial rows
	// travel, far below the ~600 base rows a gather would ship.
	moved := after.RowsGathered - before.RowsGathered
	if moved > 9 {
		t.Fatalf("co-located aggregation moved %d rows; base rows appear to have been gathered", moved)
	}
}

// TestPruningShardCounts asserts the pruned shard counts surface in the
// router stats: an IN-list over two key values touches at most two shards.
func TestPruningShardCounts(t *testing.T) {
	router, _ := newJoinFleet(t, 3)
	memberQueries := func() []int64 {
		out := make([]int64, len(router.members))
		for i, st := range router.MemberStats() {
			out[i] = st.QueriesRun
		}
		return out
	}

	before := memberQueries()
	beforeStats := router.ShardingStats()
	if _, err := router.Query(0, parseSelect(t, "SELECT COUNT(*) FROM orders WHERE customer_id IN (3, 17)")); err != nil {
		t.Fatal(err)
	}
	after := memberQueries()
	touched := 0
	for i := range after {
		if after[i] > before[i] {
			touched++
		}
	}
	if touched > 2 {
		t.Fatalf("IN-list over 2 keys touched %d of 3 shards", touched)
	}
	afterStats := router.ShardingStats()
	if afterStats.ShardScansAvoided <= beforeStats.ShardScansAvoided {
		t.Fatalf("ShardScansAvoided did not grow: %+v -> %+v", beforeStats, afterStats)
	}

	// Equality pruning routes the full statement to one shard.
	before = memberQueries()
	beforePruned := router.ShardingStats().QueriesPruned
	if _, err := router.Query(0, parseSelect(t, "SELECT COUNT(*) FROM orders WHERE customer_id = 42")); err != nil {
		t.Fatal(err)
	}
	after = memberQueries()
	touched = 0
	for i := range after {
		if after[i] > before[i] {
			touched++
		}
	}
	if touched != 1 {
		t.Fatalf("equality pruning touched %d shards, want 1", touched)
	}
	if router.ShardingStats().QueriesPruned != beforePruned+1 {
		t.Fatal("QueriesPruned not incremented")
	}
}

// TestAnalyzeImprovesPlannerInputs exercises ANALYZE on the router and the
// merged statistics snapshot.
func TestAnalyzeImprovesPlannerInputs(t *testing.T) {
	router, _ := newJoinFleet(t, 3)
	n, err := router.Analyze("ORDERS")
	if err != nil {
		t.Fatal(err)
	}
	if n != 600 {
		t.Fatalf("analyzed %d rows, want 600", n)
	}
	snap, err := router.TableStatistics("ORDERS")
	if err != nil {
		t.Fatal(err)
	}
	if snap.Rows != 600 {
		t.Fatalf("merged rows = %d", snap.Rows)
	}
	oid := snap.Column("OID")
	if oid == nil {
		t.Fatal("no OID stats")
	}
	if got, _ := oid.Min.AsInt(); got != 0 {
		t.Fatalf("merged min = %v", oid.Min)
	}
	if got, _ := oid.Max.AsInt(); got != 599 {
		t.Fatalf("merged max = %v", oid.Max)
	}
}
