package shard

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"

	"idaax/internal/accel"
	"idaax/internal/relalg"
	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

func testSchema() types.Schema {
	return types.NewSchema(
		types.Column{Name: "ID", Kind: types.KindInt},
		types.Column{Name: "DEPT", Kind: types.KindString},
		types.Column{Name: "V", Kind: types.KindFloat},
	)
}

// testRows generates deterministic rows whose float values are exactly
// representable so that differently-ordered summation cannot introduce
// floating-point drift between the sharded and the single-node execution.
func testRows(n int) []types.Row {
	depts := []string{"SALES", "ENG", "OPS", "HR"}
	rows := make([]types.Row, n)
	for i := 0; i < n; i++ {
		v := types.NewFloat(float64(i%17) * 0.5)
		if i%23 == 0 {
			v = types.Null()
		}
		rows[i] = types.Row{
			types.NewInt(int64(i)),
			types.NewString(depts[i%len(depts)]),
			v,
		}
	}
	return rows
}

// newFleet builds a router over n accelerators with table T loaded, plus a
// single reference accelerator holding the identical rows.
func newFleet(t *testing.T, shards int, distKey string, rows []types.Row) (*Router, *accel.Accelerator) {
	t.Helper()
	members := make([]*accel.Accelerator, shards)
	for i := range members {
		members[i] = accel.New(fmt.Sprintf("SHARD%d", i), 2)
	}
	router, err := NewRouter("FLEET", members)
	if err != nil {
		t.Fatal(err)
	}
	if err := router.CreateTable("T", testSchema(), distKey); err != nil {
		t.Fatal(err)
	}
	if _, err := router.Insert(1, "T", rows); err != nil {
		t.Fatal(err)
	}
	router.CommitTxn(1)

	ref := accel.New("REF", 2)
	if err := ref.CreateTable("T", testSchema(), distKey); err != nil {
		t.Fatal(err)
	}
	if _, err := ref.Insert(1, "T", rows); err != nil {
		t.Fatal(err)
	}
	ref.CommitTxn(1)
	return router, ref
}

func parseSelect(t *testing.T, sql string) *sqlparse.SelectStmt {
	t.Helper()
	sel, ok := mustParseStmt(t, sql).(*sqlparse.SelectStmt)
	if !ok {
		t.Fatalf("%q is not a SELECT", sql)
	}
	return sel
}

func mustParseStmt(t *testing.T, sql string) sqlparse.Statement {
	t.Helper()
	st, err := sqlparse.Parse(sql)
	if err != nil {
		t.Fatalf("parse %q: %v", sql, err)
	}
	return st
}

func formatRows(rel *relalg.Relation) []string {
	out := make([]string, len(rel.Rows))
	for i, row := range rel.Rows {
		parts := make([]string, len(row))
		for j, v := range row {
			parts[j] = fmt.Sprintf("%d:%s", v.Kind, v.GroupKey())
		}
		out[i] = strings.Join(parts, "|")
	}
	return out
}

func colNames(rel *relalg.Relation) []string {
	out := make([]string, len(rel.Cols))
	for i, c := range rel.Cols {
		out[i] = c.Name
	}
	return out
}

// assertSameResult compares the sharded and reference results. Ordered
// compares row-by-row (the query must have a deterministic ORDER BY);
// unordered compares as multisets.
func assertSameResult(t *testing.T, sql string, got, want *relalg.Relation, ordered bool) {
	t.Helper()
	gc, wc := colNames(got), colNames(want)
	if strings.Join(gc, ",") != strings.Join(wc, ",") {
		t.Fatalf("%s: columns %v != %v", sql, gc, wc)
	}
	gr, wr := formatRows(got), formatRows(want)
	if !ordered {
		sort.Strings(gr)
		sort.Strings(wr)
	}
	if len(gr) != len(wr) {
		t.Fatalf("%s: %d rows != %d rows", sql, len(gr), len(wr))
	}
	for i := range gr {
		if gr[i] != wr[i] {
			t.Fatalf("%s: row %d differs:\n  sharded: %s\n  single:  %s", sql, i, gr[i], wr[i])
		}
	}
}

// TestDifferentialHash is the acceptance-criterion test: a DISTRIBUTE BY
// HASH(id) table over 3 shards answers every query shape identically to a
// single accelerator holding all rows.
func TestDifferentialHash(t *testing.T) {
	runDifferential(t, 3, "ID")
}

// TestDifferentialRoundRobin covers the round-robin distribution.
func TestDifferentialRoundRobin(t *testing.T) {
	runDifferential(t, 4, "")
}

func runDifferential(t *testing.T, shards int, distKey string) {
	rows := testRows(500)
	router, ref := newFleet(t, shards, distKey, rows)

	cases := []struct {
		sql     string
		ordered bool
	}{
		{"SELECT * FROM t ORDER BY id", true},
		{"SELECT id, v FROM t WHERE v > 3 ORDER BY id", true},
		{"SELECT id, v FROM t WHERE v > 3", false},
		{"SELECT COUNT(*), COUNT(v), SUM(v), MIN(v), MAX(v), AVG(v) FROM t", true},
		{"SELECT COUNT(*) FROM t WHERE v IS NULL", true},
		{"SELECT dept, COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM t GROUP BY dept ORDER BY dept", true},
		{"SELECT dept, COUNT(*) AS c FROM t GROUP BY dept HAVING COUNT(*) > 100 ORDER BY c DESC, dept", true},
		{"SELECT dept, COUNT(*) * 2 + 1, SUM(v) / COUNT(v) FROM t GROUP BY dept ORDER BY dept", true},
		{"SELECT DISTINCT dept FROM t ORDER BY dept", true},
		{"SELECT id FROM t ORDER BY id LIMIT 10 OFFSET 5", true},
		{"SELECT id, v FROM t ORDER BY v DESC, id LIMIT 7", true},
		{"SELECT STDDEV(v), VARIANCE(v) FROM t", true},
		{"SELECT dept, STDDEV(v) FROM t GROUP BY dept ORDER BY dept", true},
		{"SELECT COUNT(DISTINCT dept) FROM t", true},
		{"SELECT * FROM t WHERE id = 7", true},
		{"SELECT COUNT(*), SUM(v) FROM t WHERE id = 7", true},
		{"SELECT dept, AVG(v) FROM t WHERE id < 100 GROUP BY dept ORDER BY 2 DESC, dept", true},
		{"SELECT a.dept, COUNT(*) FROM t a INNER JOIN t b ON a.id = b.id GROUP BY a.dept ORDER BY a.dept", true},
		{"SELECT s.dept, s.total FROM (SELECT dept, SUM(v) AS total FROM t GROUP BY dept) s ORDER BY s.dept", true},
		{"SELECT CASE WHEN v > 4 THEN 'HI' ELSE 'LO' END AS bucket, COUNT(*) FROM t WHERE v IS NOT NULL GROUP BY CASE WHEN v > 4 THEN 'HI' ELSE 'LO' END ORDER BY bucket", true},
	}
	for _, tc := range cases {
		sel := parseSelect(t, tc.sql)
		got, err := router.Query(0, sel)
		if err != nil {
			t.Fatalf("sharded %q: %v", tc.sql, err)
		}
		// Re-parse so the reference run gets fresh AST nodes (the planner must
		// not have mutated the statement).
		want, err := ref.Query(0, parseSelect(t, tc.sql))
		if err != nil {
			t.Fatalf("reference %q: %v", tc.sql, err)
		}
		assertSameResult(t, tc.sql, got, want, tc.ordered)
	}
}

func TestHashPartitionerPlacement(t *testing.T) {
	p := NewHashPartitioner(0, types.KindInt, []string{"S0", "S1", "S2", "S3"})
	row := types.Row{types.NewInt(42)}
	a := p.Place(row)
	b := p.Place(row.Clone())
	if a != b {
		t.Fatalf("same key placed on different shards: %d, %d", a, b)
	}
	// A literal of a different numeric kind must hash like the stored value.
	byKey, ok := p.PlaceKey(types.NewFloat(42))
	if !ok || byKey != a {
		t.Fatalf("coerced key placed on shard %d (ok=%t), rows on %d", byKey, ok, a)
	}
	if _, ok := NewRoundRobinPartitioner(4).PlaceKey(types.NewInt(1)); ok {
		t.Fatal("round robin must not offer key placement")
	}
}

func TestRoundRobinSpreads(t *testing.T) {
	p := NewRoundRobinPartitioner(3)
	counts := make([]int, 3)
	for i := 0; i < 99; i++ {
		counts[p.Place(nil)]++
	}
	for s, c := range counts {
		if c != 33 {
			t.Fatalf("shard %d received %d rows, want 33", s, c)
		}
	}
}

func TestInsertPartitionsByKey(t *testing.T) {
	rows := testRows(200)
	router, _ := newFleet(t, 3, "ID", rows)
	total := 0
	for _, m := range router.Members() {
		n, err := m.RowCount(0, "T")
		if err != nil {
			t.Fatal(err)
		}
		if n == 0 {
			t.Fatalf("shard %s holds no rows; distribution is degenerate", m.Name())
		}
		total += n
	}
	if total != len(rows) {
		t.Fatalf("fleet holds %d rows, want %d", total, len(rows))
	}
	// Every row with the same key lives on exactly one shard: query a key and
	// count shards holding it.
	sel := parseSelect(t, "SELECT id FROM t WHERE id = 11")
	holders := 0
	for _, m := range router.Members() {
		rel, err := m.Query(0, sel)
		if err != nil {
			t.Fatal(err)
		}
		if len(rel.Rows) > 0 {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("key 11 present on %d shards, want exactly 1", holders)
	}
}

func TestShardPruning(t *testing.T) {
	rows := testRows(100)
	router, _ := newFleet(t, 3, "ID", rows)
	before := make([]int64, 3)
	for i, st := range router.MemberStats() {
		before[i] = st.QueriesRun
	}
	rel, err := router.Query(0, parseSelect(t, "SELECT id, dept FROM t WHERE id = 42"))
	if err != nil {
		t.Fatal(err)
	}
	if len(rel.Rows) != 1 || rel.Rows[0][0].Int != 42 {
		t.Fatalf("pruned query returned %d rows", len(rel.Rows))
	}
	ran := 0
	for i, st := range router.MemberStats() {
		if st.QueriesRun > before[i] {
			ran++
		}
	}
	if ran != 1 {
		t.Fatalf("pruned query ran on %d shards, want 1", ran)
	}
	if s := router.ShardingStats(); s.QueriesPruned != 1 {
		t.Fatalf("QueriesPruned = %d, want 1", s.QueriesPruned)
	}
	// Round-robin tables cannot prune.
	rrRouter, _ := newFleet(t, 3, "", rows)
	if _, err := rrRouter.Query(0, parseSelect(t, "SELECT id FROM t WHERE id = 42")); err != nil {
		t.Fatal(err)
	}
	if s := rrRouter.ShardingStats(); s.QueriesPruned != 0 {
		t.Fatalf("round-robin pruned %d queries, want 0", s.QueriesPruned)
	}
}

func TestTwoPhaseStats(t *testing.T) {
	rows := testRows(100)
	router, _ := newFleet(t, 3, "ID", rows)
	if _, err := router.Query(0, parseSelect(t, "SELECT dept, COUNT(*) FROM t GROUP BY dept")); err != nil {
		t.Fatal(err)
	}
	s := router.ShardingStats()
	if s.TwoPhaseAggregates != 1 {
		t.Fatalf("TwoPhaseAggregates = %d, want 1", s.TwoPhaseAggregates)
	}
	// Only one partial row per (shard, dept) travels, not base rows.
	if s.RowsGathered >= int64(len(rows)) {
		t.Fatalf("two-phase aggregation gathered %d rows; expected group partials only", s.RowsGathered)
	}
}

func TestRouterDML(t *testing.T) {
	rows := testRows(60)
	router, ref := newFleet(t, 3, "ID", rows)

	for _, stmt := range []string{
		"UPDATE t SET v = v + 10 WHERE id < 30",
		"DELETE FROM t WHERE id >= 50",
	} {
		st, err := sqlparse.Parse(stmt)
		if err != nil {
			t.Fatal(err)
		}
		switch s := st.(type) {
		case *sqlparse.UpdateStmt:
			gn, err := router.Update(2, "T", s.Assignments, s.Where)
			if err != nil {
				t.Fatal(err)
			}
			wn, err := ref.Update(2, "T", s.Assignments, s.Where)
			if err != nil {
				t.Fatal(err)
			}
			if gn != wn {
				t.Fatalf("UPDATE affected %d sharded vs %d single", gn, wn)
			}
		case *sqlparse.DeleteStmt:
			gn, err := router.Delete(2, "T", s.Where)
			if err != nil {
				t.Fatal(err)
			}
			wn, err := ref.Delete(2, "T", s.Where)
			if err != nil {
				t.Fatal(err)
			}
			if gn != wn {
				t.Fatalf("DELETE affected %d sharded vs %d single", gn, wn)
			}
		}
	}
	router.CommitTxn(2)
	ref.CommitTxn(2)

	sql := "SELECT id, dept, v FROM t ORDER BY id"
	got, err := router.Query(0, parseSelect(t, sql))
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Query(0, parseSelect(t, sql))
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, sql, got, want, true)

	// Assigning to the hash distribution key is rejected: the row would have
	// to migrate between shards and key-based pruning would miss it.
	keyUpd := mustParseStmt(t, "UPDATE t SET id = 999 WHERE id = 1").(*sqlparse.UpdateStmt)
	if _, err := router.Update(3, "T", keyUpd.Assignments, keyUpd.Where); err == nil {
		t.Fatal("UPDATE of the distribution key must fail on a hash-sharded table")
	}
	// Round-robin tables have no distribution key and accept the same UPDATE.
	rrRouter, _ := newFleet(t, 2, "", testRows(10))
	if _, err := rrRouter.Update(3, "T", keyUpd.Assignments, keyUpd.Where); err != nil {
		t.Fatalf("round-robin UPDATE of ID: %v", err)
	}

	n, err := router.Truncate(3, "T")
	if err != nil {
		t.Fatal(err)
	}
	router.CommitTxn(3)
	if cnt, _ := router.RowCount(0, "T"); cnt != 0 {
		t.Fatalf("after truncate of %d rows, %d remain", n, cnt)
	}
}

func TestReplicatedFanOut(t *testing.T) {
	router, _ := newFleet(t, 3, "ID", nil)
	rows := testRows(90)
	srcIDs := make([]int64, len(rows))
	for i := range srcIDs {
		srcIDs[i] = int64(i + 1000)
	}
	if _, err := router.InsertReplicated("T", rows, srcIDs); err != nil {
		t.Fatal(err)
	}
	// Each source id must live on exactly one shard.
	for _, src := range srcIDs {
		holders := 0
		for _, m := range router.Members() {
			if m.HasReplicatedSource("T", src) {
				holders++
			}
		}
		if holders != 1 {
			t.Fatalf("source row %d mirrored on %d shards, want exactly 1", src, holders)
		}
	}
	// An update that changes the distribution key migrates the row.
	moved := types.Row{types.NewInt(987654321), types.NewString("ENG"), types.NewFloat(1)}
	if err := router.ApplyReplicatedUpdate("T", 1000, moved); err != nil {
		t.Fatal(err)
	}
	holders := 0
	for _, m := range router.Members() {
		if m.HasReplicatedSource("T", 1000) {
			holders++
		}
	}
	if holders != 1 {
		t.Fatalf("after key-changing update, source row on %d shards", holders)
	}
	if n, _ := router.RowCount(0, "T"); n != len(rows) {
		t.Fatalf("row count %d after update, want %d", n, len(rows))
	}
	// Delete removes it wherever it lives.
	ok, err := router.ApplyReplicatedDelete("T", 1000)
	if err != nil || !ok {
		t.Fatalf("replicated delete: ok=%t err=%v", ok, err)
	}
	if n, _ := router.RowCount(0, "T"); n != len(rows)-1 {
		t.Fatalf("row count %d after delete, want %d", n, len(rows)-1)
	}
}

// TestCommitVisibilityAtomicAcrossShards hammers the commit fence: a reader
// racing CommitTxn must see each transaction's rows on every shard or on
// none, never a partially committed batch.
func TestCommitVisibilityAtomicAcrossShards(t *testing.T) {
	router, _ := newFleet(t, 3, "ID", nil)
	const batch = 30
	const rounds = 50

	stop := make(chan struct{})
	var readerErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		sel := parseSelect(t, "SELECT COUNT(*) FROM t")
		for {
			select {
			case <-stop:
				return
			default:
			}
			rel, err := router.Query(0, sel)
			if err != nil {
				readerErr = err
				return
			}
			if n := rel.Rows[0][0].Int; n%batch != 0 {
				readerErr = fmt.Errorf("observed %d rows: a commit was partially visible across shards", n)
				return
			}
		}
	}()

	for round := 0; round < rounds; round++ {
		txn := int64(100 + round)
		rows := make([]types.Row, batch)
		for i := range rows {
			id := int64(round*batch + i)
			rows[i] = types.Row{types.NewInt(id), types.NewString("X"), types.NewFloat(1)}
		}
		if _, err := router.Insert(txn, "T", rows); err != nil {
			t.Fatal(err)
		}
		router.CommitTxn(txn)
	}
	close(stop)
	wg.Wait()
	if readerErr != nil {
		t.Fatal(readerErr)
	}
	if n, _ := router.RowCount(0, "T"); n != batch*rounds {
		t.Fatalf("final count %d, want %d", n, batch*rounds)
	}
}

func TestCreateTableValidation(t *testing.T) {
	members := []*accel.Accelerator{accel.New("A", 1), accel.New("B", 1)}
	router, err := NewRouter("G", members)
	if err != nil {
		t.Fatal(err)
	}
	if err := router.CreateTable("T", testSchema(), "NOPE"); err == nil {
		t.Fatal("unknown distribution key must fail")
	}
	// A failed create must not leave partial tables behind.
	for _, m := range members {
		if m.HasTable("T") {
			t.Fatalf("member %s kept a partially created table", m.Name())
		}
	}
	if err := router.CreateTable("T", testSchema(), "ID"); err != nil {
		t.Fatal(err)
	}
	if err := router.CreateTable("T", testSchema(), "ID"); err == nil {
		t.Fatal("duplicate create must fail")
	}
	if !router.HasTable("t") || len(router.TableNames()) != 1 {
		t.Fatal("router lost track of its table")
	}
	if err := router.DropTable("T"); err != nil {
		t.Fatal(err)
	}
	for _, m := range members {
		if m.HasTable("T") {
			t.Fatalf("member %s still has the dropped table", m.Name())
		}
	}
}
