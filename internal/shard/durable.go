package shard

import (
	"fmt"

	"idaax/internal/durable"
	"idaax/internal/types"
)

// Durability hooks for the shard router. Member-local mutations and commits
// are journaled by the members themselves; the router only journals what no
// single member can see — the cross-member batch hand-over of the rebalancer,
// which must commit on the source and every destination atomically (one
// multi-commit WAL record) or a crash would strand rows deleted on the source
// but uncommitted on their destination.

// MultiCommitJournal records an atomic cross-member commit.
type MultiCommitJournal interface {
	LogMultiCommit(entries []durable.CommitEntry)
}

// SetJournal attaches the multi-commit sink (nil detaches). Attach after
// recovery, before the rebalancer runs.
func (r *Router) SetJournal(j MultiCommitJournal) {
	r.mu.Lock()
	r.journal = j
	r.mu.Unlock()
}

func (r *Router) multiCommitJournal() MultiCommitJournal {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.journal
}

// AdoptTable registers a recovered table with the router without touching the
// members (their storage was already rebuilt from the checkpoint and WAL).
// The placement map is rebuilt for the current owner set; rows a crashed
// rebalance left misplaced are picked up by the next rebalance pass.
func (r *Router) AdoptTable(name string, schema types.Schema, distKey string) error {
	name = types.NormalizeName(name)
	distKey = types.NormalizeName(distKey)
	keyIdx := -1
	keyKind := types.KindInt
	if distKey != "" {
		keyIdx = schema.IndexOf(distKey)
		if keyIdx < 0 {
			return fmt.Errorf("shard: distribution key %s is not a column of %s", distKey, name)
		}
		keyKind = schema.Columns[keyIdx].Kind
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.tables[name]; ok {
		return fmt.Errorf("shard: table %s already exists on %s", name, r.name)
	}
	r.tables[name] = &tableMeta{
		schema:  schema,
		distKey: distKey,
		keyIdx:  keyIdx,
		part:    r.newPartitionerLocked(keyIdx, keyKind),
	}
	return nil
}
