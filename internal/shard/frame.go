package shard

import (
	"encoding/binary"
	"fmt"
	"math"

	"idaax/internal/expr"
	"idaax/internal/relalg"
	"idaax/internal/types"
)

// An aggregation frame is the binary wire format a shard uses to ship its
// partial-aggregation result (group keys plus partial accumulator columns) to
// the coordinator. It replaces re-encoding every value as text: numeric group
// keys and accumulator states travel as fixed-width 8-byte payloads, and
// string group keys travel as int32 codes into a per-column mini-dictionary
// that serialises each distinct string once per frame. For the typical
// low-cardinality grouped statement the frame is a small multiple of the
// group count regardless of how wide the key strings are.
//
// Layout (little-endian):
//
//	u16 ncols, u32 nrows
//	per column:
//	  u16 len + qualifier bytes, u16 len + name bytes, u8 declared kind
//	  u32 dict size, then per entry: u32 len + string bytes
//	  nrows tagged values:
//	    0x00 NULL                   (no payload)
//	    0x01 int       + u64 value
//	    0x02 float     + u64 IEEE-754 bits
//	    0x03 string    + u32 dictionary code
//	    0x04 bool      + 1 byte
//	    0x05 timestamp + u64 microseconds
//
// Frames are column-major so every value of a column lands next to its
// neighbours, which is also what makes the mini-dictionary per column (not
// per frame) the natural unit.

const (
	frameTagNull = iota
	frameTagInt
	frameTagFloat
	frameTagStr
	frameTagBool
	frameTagTimestamp
)

// encodeAggFrame serialises a partial-aggregation relation into a frame.
func encodeAggFrame(rel *relalg.Relation) []byte {
	buf := make([]byte, 0, 64+16*len(rel.Rows)*max(1, len(rel.Cols)))
	buf = appendU16(buf, uint16(len(rel.Cols)))
	buf = appendU32(buf, uint32(len(rel.Rows)))
	for ci, col := range rel.Cols {
		buf = appendFrameString16(buf, col.Qualifier)
		buf = appendFrameString16(buf, col.Name)
		buf = append(buf, byte(col.Kind))

		// One pass assigns dictionary codes in first-occurrence order, the
		// second writes the values; only string values touch the dictionary.
		var dict []string
		var codes map[string]uint32
		for _, row := range rel.Rows {
			v := row[ci]
			if v.Kind != types.KindString || v.IsNull() {
				continue
			}
			if codes == nil {
				codes = make(map[string]uint32)
			}
			if _, ok := codes[v.Str]; !ok {
				codes[v.Str] = uint32(len(dict))
				dict = append(dict, v.Str)
			}
		}
		buf = appendU32(buf, uint32(len(dict)))
		for _, s := range dict {
			buf = appendFrameString32(buf, s)
		}
		for _, row := range rel.Rows {
			v := row[ci]
			switch {
			case v.IsNull():
				buf = append(buf, frameTagNull)
			case v.Kind == types.KindInt:
				buf = append(buf, frameTagInt)
				buf = appendU64(buf, uint64(v.Int))
			case v.Kind == types.KindFloat:
				buf = append(buf, frameTagFloat)
				buf = appendU64(buf, math.Float64bits(v.Float))
			case v.Kind == types.KindString:
				buf = append(buf, frameTagStr)
				buf = appendU32(buf, codes[v.Str])
			case v.Kind == types.KindBool:
				b := byte(0)
				if v.Bool {
					b = 1
				}
				buf = append(buf, frameTagBool, b)
			default: // KindTimestamp
				buf = append(buf, frameTagTimestamp)
				buf = appendU64(buf, uint64(v.Int))
			}
		}
	}
	return buf
}

// decodeAggFrame reconstructs the relation a frame encodes. Every value
// round-trips exactly: the merge phase at the coordinator sees the same
// types.Value the shard produced.
func decodeAggFrame(buf []byte) (*relalg.Relation, error) {
	d := frameReader{buf: buf}
	ncols := int(d.u16())
	nrows := int(d.u32())
	rel := &relalg.Relation{Cols: make([]expr.InputColumn, ncols)}
	rel.Rows = make([]types.Row, nrows)
	for i := range rel.Rows {
		rel.Rows[i] = make(types.Row, ncols)
	}
	for ci := 0; ci < ncols; ci++ {
		qual := d.str16()
		name := d.str16()
		kind := types.Kind(d.u8())
		rel.Cols[ci] = expr.InputColumn{Qualifier: qual, Name: name, Kind: kind}
		dict := make([]string, d.u32())
		for i := range dict {
			dict[i] = d.str32()
		}
		for ri := 0; ri < nrows && d.err == nil; ri++ {
			switch tag := d.u8(); tag {
			case frameTagNull:
				rel.Rows[ri][ci] = types.Null()
			case frameTagInt:
				rel.Rows[ri][ci] = types.NewInt(int64(d.u64()))
			case frameTagFloat:
				rel.Rows[ri][ci] = types.NewFloat(math.Float64frombits(d.u64()))
			case frameTagStr:
				code := d.u32()
				if int(code) >= len(dict) {
					return nil, fmt.Errorf("aggregation frame: dictionary code %d out of range (dict size %d)", code, len(dict))
				}
				rel.Rows[ri][ci] = types.NewString(dict[code])
			case frameTagBool:
				rel.Rows[ri][ci] = types.NewBool(d.u8() != 0)
			case frameTagTimestamp:
				rel.Rows[ri][ci] = types.NewTimestampMicros(int64(d.u64()))
			default:
				return nil, fmt.Errorf("aggregation frame: unknown value tag %d", tag)
			}
		}
	}
	if d.err != nil {
		return nil, d.err
	}
	return rel, nil
}

// textWireBytes estimates what the same relation costs with the classic wire
// encoding — every value rendered back to text plus a separator — giving the
// bytes-moved counters a like-for-like baseline to compare frames against.
func textWireBytes(rel *relalg.Relation) int64 {
	total := int64(0)
	for _, col := range rel.Cols {
		total += int64(len(col.Qualifier) + len(col.Name) + 2)
	}
	for _, row := range rel.Rows {
		for _, v := range row {
			if v.IsNull() {
				total += 5
				continue
			}
			total += int64(len(v.String()) + 1)
		}
	}
	return total
}

// frameReader decodes with sticky bounds checking: the first short read sets
// err and every later read returns zero values, so decode loops stay linear.
type frameReader struct {
	buf []byte
	off int
	err error
}

func (d *frameReader) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.buf) {
		d.err = fmt.Errorf("aggregation frame: truncated at offset %d (need %d of %d bytes)", d.off, n, len(d.buf))
		return nil
	}
	b := d.buf[d.off : d.off+n]
	d.off += n
	return b
}

func (d *frameReader) u8() byte {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *frameReader) u16() uint16 {
	b := d.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (d *frameReader) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *frameReader) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *frameReader) str16() string { return string(d.take(int(d.u16()))) }
func (d *frameReader) str32() string { return string(d.take(int(d.u32()))) }

func appendU16(buf []byte, v uint16) []byte { return binary.LittleEndian.AppendUint16(buf, v) }
func appendU32(buf []byte, v uint32) []byte { return binary.LittleEndian.AppendUint32(buf, v) }
func appendU64(buf []byte, v uint64) []byte { return binary.LittleEndian.AppendUint64(buf, v) }

func appendFrameString16(buf []byte, s string) []byte {
	return append(appendU16(buf, uint16(len(s))), s...)
}

func appendFrameString32(buf []byte, s string) []byte {
	return append(appendU32(buf, uint32(len(s))), s...)
}
