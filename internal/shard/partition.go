// Package shard turns a fleet of accelerators into one logical backend: a
// Partitioner decides which shard owns a row, a Router implements the
// accel.Backend surface by fanning DDL/DML out to the shard set, and a
// scatter-gather executor runs SELECT statements across all shards in
// parallel, merging results at the coordinator — including two-phase partial
// aggregation and shard pruning when an equality predicate covers the
// distribution key.
package shard

import (
	"sync/atomic"

	"idaax/internal/types"
)

// Partitioner maps a row to the ordinal of the shard that owns it.
type Partitioner interface {
	// Kind names the placement strategy ("HASH" or "ROUND-ROBIN").
	Kind() string
	// Place returns the owning shard ordinal in [0, shards).
	Place(row types.Row) int
	// PlaceKey returns the owning shard for a distribution-key value, or
	// ok=false when the strategy has no key (round robin), in which case no
	// shard pruning is possible.
	PlaceKey(v types.Value) (int, bool)
}

// HashPartitioner places rows by hashing the distribution-key column, the
// strategy behind CREATE TABLE ... DISTRIBUTE BY HASH(col). Equal keys always
// land on the same shard, which is what enables shard pruning and co-located
// replication applies.
type HashPartitioner struct {
	keyIdx  int
	keyKind types.Kind
	shards  int
}

// NewHashPartitioner creates a hash partitioner over the key column at keyIdx.
func NewHashPartitioner(keyIdx int, keyKind types.Kind, shards int) *HashPartitioner {
	return &HashPartitioner{keyIdx: keyIdx, keyKind: keyKind, shards: shards}
}

// Kind implements Partitioner.
func (p *HashPartitioner) Kind() string { return "HASH" }

// Place implements Partitioner.
func (p *HashPartitioner) Place(row types.Row) int {
	if p.keyIdx < 0 || p.keyIdx >= len(row) {
		return 0
	}
	shard, _ := p.PlaceKey(row[p.keyIdx])
	return shard
}

// PlaceKey implements Partitioner. The value is coerced to the key column's
// kind first so that a literal in a predicate (e.g. an integer compared
// against a DOUBLE key) hashes identically to the stored value.
func (p *HashPartitioner) PlaceKey(v types.Value) (int, bool) {
	if v.IsNull() {
		// All NULL keys co-locate on shard 0 (like the single-node columnar
		// engine, NULL is a regular, groupable key value).
		return 0, true
	}
	if cv, err := v.Cast(p.keyKind); err == nil {
		v = cv
	}
	return int(v.Hash() % uint64(p.shards)), true
}

// RoundRobinPartitioner spreads rows evenly regardless of content
// (DISTRIBUTE BY RANDOM). It offers no pruning, but perfectly balanced load.
type RoundRobinPartitioner struct {
	shards int
	next   uint64
}

// NewRoundRobinPartitioner creates a round-robin partitioner.
func NewRoundRobinPartitioner(shards int) *RoundRobinPartitioner {
	return &RoundRobinPartitioner{shards: shards}
}

// Kind implements Partitioner.
func (p *RoundRobinPartitioner) Kind() string { return "ROUND-ROBIN" }

// Place implements Partitioner.
func (p *RoundRobinPartitioner) Place(types.Row) int {
	return int((atomic.AddUint64(&p.next, 1) - 1) % uint64(p.shards))
}

// PlaceKey implements Partitioner; round robin has no distribution key.
func (p *RoundRobinPartitioner) PlaceKey(types.Value) (int, bool) { return 0, false }

// partitionRows splits rows (and their optional source ids) into one batch per
// shard, preserving relative order within each batch.
func partitionRows(p Partitioner, shards int, rows []types.Row, srcIDs []int64) ([][]types.Row, [][]int64) {
	outRows := make([][]types.Row, shards)
	var outSrc [][]int64
	if srcIDs != nil {
		outSrc = make([][]int64, shards)
	}
	for i, row := range rows {
		s := p.Place(row)
		if s < 0 || s >= shards {
			s = 0
		}
		outRows[s] = append(outRows[s], row)
		if srcIDs != nil {
			outSrc[s] = append(outSrc[s], srcIDs[i])
		}
	}
	return outRows, outSrc
}
