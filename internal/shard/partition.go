// Package shard turns a fleet of accelerators into one logical backend: a
// Partitioner decides which shard owns a row, a Router implements the
// accel.Backend surface by fanning DDL/DML out to the shard set, and a
// scatter-gather executor runs SELECT statements across all shards in
// parallel, merging results at the coordinator — including two-phase partial
// aggregation and shard pruning when an equality predicate covers the
// distribution key. The fleet is elastic: AddMember/RemoveMember change the
// member set at runtime and a background rebalancer (rebalance.go) migrates
// affected rows in bounded batches while queries keep running.
package shard

import (
	"sync/atomic"

	"idaax/internal/types"
)

// Partitioner maps a row to the ordinal of the shard that owns it. A
// partitioner is built for one owner set; when the fleet grows or shrinks the
// router installs a fresh partitioner and the superseded one is kept only to
// decide which keys are still safely prunable mid-migration.
type Partitioner interface {
	// Kind names the placement strategy ("HASH" or "ROUND-ROBIN").
	Kind() string
	// Place returns the owning shard ordinal (an index into the router's
	// member list).
	Place(row types.Row) int
	// PlaceKey returns the owning shard for a distribution-key value, or
	// ok=false when the strategy has no key (round robin), in which case no
	// shard pruning is possible.
	PlaceKey(v types.Value) (int, bool)
	// PlaceKeyOwner is PlaceKey plus the owning member's name. Names are the
	// stable identity across membership changes — superseded maps keep their
	// pre-change ordinals, so the double-routing pruning check compares
	// owners by name, never by ordinal.
	PlaceKeyOwner(v types.Value) (ord int, owner string, ok bool)
	// OwnerNames returns the member names this partitioner places onto.
	OwnerNames() []string
	// Ordinals returns the router member ordinals backing OwnerNames, aligned
	// with it. During a drain the set excludes leaving members even though
	// they still occupy a router ordinal.
	Ordinals() []int
}

// hrwOwner is one candidate of the rendezvous election: a member name, its
// precomputed hash and the router ordinal it maps to.
type hrwOwner struct {
	name string
	hash uint64
	ord  int
}

// HashPartitioner places rows by rendezvous (highest-random-weight) hashing
// of the distribution-key column against the member names — the strategy
// behind CREATE TABLE ... DISTRIBUTE BY HASH(col). Equal keys always land on
// the same shard, which is what enables shard pruning and co-located
// replication applies; hashing against names (not a modulus of the member
// count) means growing the fleet by one member moves only the ~1/N of keys
// the new member wins, and removing a member moves only that member's keys.
type HashPartitioner struct {
	keyIdx  int
	keyKind types.Kind
	owners  []hrwOwner
}

// NewHashPartitioner creates a hash partitioner over the key column at keyIdx
// for the named members; member i is placed at shard ordinal i.
func NewHashPartitioner(keyIdx int, keyKind types.Kind, members []string) *HashPartitioner {
	ords := make([]int, len(members))
	for i := range ords {
		ords[i] = i
	}
	return NewHashPartitionerOrdinals(keyIdx, keyKind, members, ords)
}

// NewHashPartitionerOrdinals creates a hash partitioner whose owner names map
// to explicit router ordinals (ords aligns with members). The router uses it
// while a member is draining: the leaving member still occupies an ordinal but
// is no longer an owner.
func NewHashPartitionerOrdinals(keyIdx int, keyKind types.Kind, members []string, ords []int) *HashPartitioner {
	owners := make([]hrwOwner, len(members))
	for i, name := range members {
		owners[i] = hrwOwner{name: name, hash: fnv64(name), ord: ords[i]}
	}
	return &HashPartitioner{keyIdx: keyIdx, keyKind: keyKind, owners: owners}
}

// Kind implements Partitioner.
func (p *HashPartitioner) Kind() string { return "HASH" }

// OwnerNames implements Partitioner.
func (p *HashPartitioner) OwnerNames() []string {
	out := make([]string, len(p.owners))
	for i, o := range p.owners {
		out[i] = o.name
	}
	return out
}

// Ordinals implements Partitioner.
func (p *HashPartitioner) Ordinals() []int {
	out := make([]int, len(p.owners))
	for i, o := range p.owners {
		out[i] = o.ord
	}
	return out
}

// Place implements Partitioner.
func (p *HashPartitioner) Place(row types.Row) int {
	if p.keyIdx < 0 || p.keyIdx >= len(row) {
		return p.owners[0].ord
	}
	shard, _ := p.PlaceKey(row[p.keyIdx])
	return shard
}

// nullKeyHash stands in for the hash of a NULL distribution key, so NULL keys
// co-locate on one shard like any other key value (the single-node columnar
// engine treats NULL as a regular, groupable key too).
const nullKeyHash = 0x9e3779b97f4a7c15

// PlaceKey implements Partitioner. The value is coerced to the key column's
// kind first so that a literal in a predicate (e.g. an integer compared
// against a DOUBLE key) hashes identically to the stored value.
func (p *HashPartitioner) PlaceKey(v types.Value) (int, bool) {
	ord, _, ok := p.PlaceKeyOwner(v)
	return ord, ok
}

// PlaceKeyOwner implements Partitioner.
func (p *HashPartitioner) PlaceKeyOwner(v types.Value) (int, string, bool) {
	h := uint64(nullKeyHash)
	if !v.IsNull() {
		if cv, err := v.Cast(p.keyKind); err == nil {
			v = cv
		}
		h = v.Hash()
	}
	best := 0
	bestScore := mix64(h, p.owners[0].hash)
	for i := 1; i < len(p.owners); i++ {
		if score := mix64(h, p.owners[i].hash); score > bestScore {
			best, bestScore = i, score
		}
	}
	return p.owners[best].ord, p.owners[best].name, true
}

// mix64 decorrelates the key hash from a member-name hash (a murmur3-style
// finalizer), so each member draws an independent score per key and the
// highest score wins the rendezvous election.
func mix64(a, b uint64) uint64 {
	x := a ^ b
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// fnv64 is FNV-1a over a member name.
func fnv64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

// RoundRobinPartitioner spreads rows evenly regardless of content
// (DISTRIBUTE BY RANDOM). It offers no pruning, but perfectly balanced load.
type RoundRobinPartitioner struct {
	names []string
	ords  []int
	next  uint64
}

// NewRoundRobinPartitioner creates a round-robin partitioner over shards
// members with identity ordinals and positional owner names.
func NewRoundRobinPartitioner(shards int) *RoundRobinPartitioner {
	names := make([]string, shards)
	ords := make([]int, shards)
	for i := range ords {
		names[i] = ""
		ords[i] = i
	}
	return &RoundRobinPartitioner{names: names, ords: ords}
}

// NewRoundRobinPartitionerOrdinals creates a round-robin partitioner cycling
// over the given owner names/ordinals (ords aligns with members).
func NewRoundRobinPartitionerOrdinals(members []string, ords []int) *RoundRobinPartitioner {
	return &RoundRobinPartitioner{
		names: append([]string(nil), members...),
		ords:  append([]int(nil), ords...),
	}
}

// Kind implements Partitioner.
func (p *RoundRobinPartitioner) Kind() string { return "ROUND-ROBIN" }

// OwnerNames implements Partitioner.
func (p *RoundRobinPartitioner) OwnerNames() []string { return append([]string(nil), p.names...) }

// Ordinals implements Partitioner.
func (p *RoundRobinPartitioner) Ordinals() []int { return append([]int(nil), p.ords...) }

// Place implements Partitioner.
func (p *RoundRobinPartitioner) Place(types.Row) int {
	return p.ords[int((atomic.AddUint64(&p.next, 1)-1)%uint64(len(p.ords)))]
}

// PlaceKey implements Partitioner; round robin has no distribution key.
func (p *RoundRobinPartitioner) PlaceKey(types.Value) (int, bool) { return 0, false }

// PlaceKeyOwner implements Partitioner; round robin has no distribution key.
func (p *RoundRobinPartitioner) PlaceKeyOwner(types.Value) (int, string, bool) { return 0, "", false }

// partitionRows splits rows (and their optional source ids) into one batch per
// shard, preserving relative order within each batch. shards is the router's
// full member count; the partitioner only ever returns owner ordinals below it.
func partitionRows(p Partitioner, shards int, rows []types.Row, srcIDs []int64) ([][]types.Row, [][]int64) {
	outRows := make([][]types.Row, shards)
	var outSrc [][]int64
	if srcIDs != nil {
		outSrc = make([][]int64, shards)
	}
	for i, row := range rows {
		s := p.Place(row)
		if s < 0 || s >= shards {
			s = 0
		}
		outRows[s] = append(outRows[s], row)
		if srcIDs != nil {
			outSrc[s] = append(outSrc[s], srcIDs[i])
		}
	}
	return outRows, outSrc
}
