package shard

import (
	"fmt"
	"sync"
	"sync/atomic"

	"idaax/internal/accel"
	"idaax/internal/obs"
	"idaax/internal/relalg"
	"idaax/internal/sqlparse"
	"idaax/internal/types"
)

// This file is the router side of the shard-local analytics seam: a procedure
// call scatters over the members that own the table's rows, each member
// computes a partial result against only its own partition, and the
// coordinator merges the partials — the analytics twin of two-phase
// aggregation. Base rows never travel; only sufficient statistics, locally
// trained models and completion counts do.

// ShardCount implements accel.MultiShard.
func (r *Router) ShardCount() int { return len(r.Members()) }

// SetShardLocalAnalytics enables or disables shard-local procedure execution
// (enabled by default). With it off, analytics CALLs fall back to gathering
// the table to the coordinator — the pre-scatter behaviour, kept for A/B
// measurement (bench E12).
func (r *Router) SetShardLocalAnalytics(enabled bool) {
	v := int32(1)
	if enabled {
		v = 0
	}
	atomic.StoreInt32(&r.analyticsDisabled, v)
}

// ShardLocalAnalytics implements accel.MultiShard.
func (r *Router) ShardLocalAnalytics() bool {
	return atomic.LoadInt32(&r.analyticsDisabled) == 0
}

// DistributedProcCalls returns how many times each procedure scattered over
// this group, keyed by the procedure label passed to CallShardLocal.
func (r *Router) DistributedProcCalls() map[string]int64 {
	r.procMu.Lock()
	defer r.procMu.Unlock()
	out := make(map[string]int64, len(r.procCalls))
	for k, v := range r.procCalls {
		out[k] = v
	}
	return out
}

func (r *Router) noteProcScatter(proc string) {
	atomic.AddInt64(&r.stats.AnalyticsScatters, 1)
	if proc == "" {
		return
	}
	r.procMu.Lock()
	r.procCalls[types.NormalizeName(proc)]++
	r.procMu.Unlock()
}

// CallShardLocal implements the Backend analytics seam across the fleet: fn
// runs concurrently on every member, each invocation seeing only that shard's
// visible rows, and the partial results come back in shard order.
//
// Two properties make the scatter safe against a concurrent rebalance:
//
//   - the table's migration fence is held shared for the whole call, so no
//     migration batch can move rows while the partials compute — the same
//     fence DML takes; and
//   - the per-member snapshots are taken together under the router's commit
//     fence, so a batch that committed before the call is visible only on its
//     destination shard and a batch after it on none — every row is presented
//     to exactly one invocation (no double-count, no gap), which is what lets
//     scoring write predictions shard-local without ever double-scoring.
//
// Draining members still participate: their unmigrated rows are part of the
// table until the drain completes.
func (r *Router) CallShardLocal(txnID int64, table, proc string, fn accel.ShardLocalFunc) ([]any, error) {
	return r.CallShardLocalTraced(txnID, table, proc, nil, fn)
}

// CallShardLocalTraced is CallShardLocal with a trace span: every member's
// partition (scan plus partial computation) nests under sp as its own child,
// so an analytics CALL's trace shows the same per-shard fan-out a query's
// does. sp may be nil. It is the collecting form of the streaming seam below:
// the merge callback just appends (ordinal order makes that a plain append),
// so callers that genuinely need every partial at once — the multi-round
// trainers iterating over retained per-shard feature matrices — get them,
// while single-pass merges use CallShardLocalStream and never hold more than
// the out-of-order tail.
func (r *Router) CallShardLocalTraced(txnID int64, table, proc string, sp *obs.Span, fn accel.ShardLocalFunc) ([]any, error) {
	var out []any
	err := r.CallShardLocalStream(txnID, table, proc, sp, fn, func(_ int, partial any) error {
		out = append(out, partial)
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// CallShardLocalStream implements the streaming analytics seam across the
// fleet: fn runs concurrently on every member, and merge consumes each
// shard's partial at the coordinator in shard-ordinal order as soon as it
// (and every lower ordinal) has completed. Partials that finish out of order
// wait in their slot and are released right after merging, so the
// coordinator's footprint is the merge state plus the unmerged tail — not
// one partial per shard. The rebalance-safety argument of CallShardLocal
// (migration fence held shared, snapshots fenced together) applies unchanged.
func (r *Router) CallShardLocalStream(txnID int64, table, proc string, sp *obs.Span, fn accel.ShardLocalFunc, merge func(ordinal int, partial any) error) error {
	meta, err := r.meta(table)
	if err != nil {
		return err
	}
	meta.migMu.RLock()
	defer meta.migMu.RUnlock()
	r.noteProcScatter(proc)
	ms, snaps := r.snapshotAll(txnID)
	sp.Add(obs.KeyShards, int64(len(ms)))

	partials := make([]any, len(ms))
	errs := make([]error, len(ms))
	ready := make([]chan struct{}, len(ms))
	var wg sync.WaitGroup
	for i, m := range ms {
		m.NoteQuery()
		ready[i] = make(chan struct{})
		psp := sp.Child("partition")
		psp.Label(obs.LabelShard, m.Name())
		psp.Label(obs.LabelTable, types.NormalizeName(table))
		wg.Add(1)
		go func(i int, m *accel.Accelerator, snap *accel.Snapshot, psp *obs.Span) {
			defer wg.Done()
			defer close(ready[i])
			defer psp.Finish()
			rows, err := m.ScanVisibleTraced(snap, table, nil, sqlparse.FromItem{Table: types.NormalizeName(table)}, psp)
			if err != nil {
				errs[i] = err
				return
			}
			atomic.AddInt64(&r.stats.AnalyticsPartials, 1)
			partials[i], errs[i] = fn(&accel.ShardPartition{
				Member:  m.Name(),
				Ordinal: i,
				Shards:  len(ms),
				Rows:    relalg.FromTable(types.NormalizeName(table), meta.schema, rows),
				WriteLocal: func(out string, outRows []types.Row) (int, error) {
					n, err := m.ImportRows(out, outRows, nil)
					atomic.AddInt64(&r.stats.AnalyticsRowsWrittenLocal, int64(n))
					return n, err
				},
			})
		}(i, m, snaps[i], psp)
	}
	var callErr error
	for i := range ms {
		<-ready[i]
		if errs[i] != nil {
			r.emitScatterFailure(ms[i].Name(), types.NormalizeName(table), proc, errs[i])
			if callErr == nil {
				callErr = fmt.Errorf("shard %s: %w", ms[i].Name(), errs[i])
			}
			continue
		}
		if callErr == nil {
			callErr = merge(i, partials[i])
		}
		partials[i] = nil
	}
	wg.Wait()
	return callErr
}
