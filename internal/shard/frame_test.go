package shard

import (
	"math"
	"strings"
	"testing"

	"idaax/internal/accel"
	"idaax/internal/expr"
	"idaax/internal/relalg"
	"idaax/internal/types"
)

// frameTestRelation builds a relation exercising every value kind, NULLs in
// every column, repeated strings (the mini-dictionary case) and the float
// edge values whose bit patterns must survive the wire exactly.
func frameTestRelation() *relalg.Relation {
	rel := &relalg.Relation{
		Cols: []expr.InputColumn{
			{Qualifier: "T", Name: "__G0", Kind: types.KindString},
			{Qualifier: "", Name: "__A0", Kind: types.KindInt},
			{Qualifier: "T", Name: "__A1", Kind: types.KindFloat},
			{Name: "B", Kind: types.KindBool},
			{Name: "TS", Kind: types.KindTimestamp},
		},
	}
	groups := []string{"EU", "US", "EU", "APAC", "US", "EU", ""}
	for i, g := range groups {
		row := types.Row{
			types.NewString(g),
			types.NewInt(int64(i) - 3),
			types.NewFloat(float64(i) * 0.125),
			types.NewBool(i%2 == 0),
			types.NewTimestampMicros(int64(1_700_000_000_000_000 + i)),
		}
		switch i {
		case 1:
			row[0] = types.Null()
		case 2:
			row[1] = types.Null()
			row[2] = types.NewFloat(math.NaN())
		case 3:
			row[2] = types.NewFloat(math.Copysign(0, -1)) // -0.0
		case 4:
			row[2] = types.NewFloat(math.Inf(1))
			row[3] = types.Null()
		case 5:
			row[4] = types.Null()
		}
		rel.Rows = append(rel.Rows, row)
	}
	return rel
}

func TestAggFrameRoundTrip(t *testing.T) {
	rel := frameTestRelation()
	got, err := decodeAggFrame(encodeAggFrame(rel))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Cols) != len(rel.Cols) {
		t.Fatalf("column count: got %d want %d", len(got.Cols), len(rel.Cols))
	}
	for i, c := range rel.Cols {
		if got.Cols[i] != c {
			t.Errorf("col %d: got %+v want %+v", i, got.Cols[i], c)
		}
	}
	if len(got.Rows) != len(rel.Rows) {
		t.Fatalf("row count: got %d want %d", len(got.Rows), len(rel.Rows))
	}
	for ri, row := range rel.Rows {
		for ci, want := range row {
			g := got.Rows[ri][ci]
			// Bit-exact comparison: NaN must stay NaN, -0.0 must keep its
			// sign, and everything else must be the identical value.
			if g.Kind != want.Kind {
				t.Fatalf("row %d col %d: kind %v want %v", ri, ci, g.Kind, want.Kind)
			}
			if want.Kind == types.KindFloat {
				if math.Float64bits(g.Float) != math.Float64bits(want.Float) {
					t.Errorf("row %d col %d: float bits %x want %x", ri, ci,
						math.Float64bits(g.Float), math.Float64bits(want.Float))
				}
				continue
			}
			if g != want {
				t.Errorf("row %d col %d: got %+v want %+v", ri, ci, g, want)
			}
		}
	}
}

func TestAggFrameEmptyRelation(t *testing.T) {
	rel := &relalg.Relation{Cols: []expr.InputColumn{
		{Name: "__G0", Kind: types.KindString},
		{Name: "__A0", Kind: types.KindInt},
	}}
	got, err := decodeAggFrame(encodeAggFrame(rel))
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Rows) != 0 || len(got.Cols) != 2 {
		t.Fatalf("empty relation decoded to %d rows, %d cols", len(got.Rows), len(got.Cols))
	}
}

// TestAggFrameTruncated feeds every proper prefix of a valid frame to the
// decoder: each must fail cleanly (no panic, no silent partial relation).
func TestAggFrameTruncated(t *testing.T) {
	buf := encodeAggFrame(frameTestRelation())
	for n := 0; n < len(buf); n++ {
		if _, err := decodeAggFrame(buf[:n]); err == nil {
			t.Fatalf("prefix of %d/%d bytes decoded without error", n, len(buf))
		}
	}
	if _, err := decodeAggFrame(buf); err != nil {
		t.Fatalf("full frame: %v", err)
	}
}

func TestAggFrameCorruption(t *testing.T) {
	rel := &relalg.Relation{
		Cols: []expr.InputColumn{{Name: "S", Kind: types.KindString}},
		Rows: []types.Row{{types.NewString("x")}},
	}
	buf := encodeAggFrame(rel)
	// The string value is the last 5 bytes: tag 0x03 + u32 code 0. Bumping
	// the code past the dictionary must be rejected.
	bad := append([]byte(nil), buf...)
	bad[len(bad)-4] = 9
	if _, err := decodeAggFrame(bad); err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Fatalf("out-of-range dictionary code: err=%v", err)
	}
	// An unknown value tag must be rejected too.
	bad = append([]byte(nil), buf...)
	bad[len(bad)-5] = 0x7f
	if _, err := decodeAggFrame(bad); err == nil || !strings.Contains(err.Error(), "unknown value tag") {
		t.Fatalf("unknown tag: err=%v", err)
	}
}

// TestAggFrameBeatsTextForRepeatedKeys pins the point of the format: a
// grouped partial whose string keys repeat encodes each distinct string once,
// so the frame undercuts the re-encoded-text baseline.
func TestAggFrameBeatsTextForRepeatedKeys(t *testing.T) {
	rel := &relalg.Relation{Cols: []expr.InputColumn{
		{Name: "__G0", Kind: types.KindString},
		{Name: "__A0", Kind: types.KindFloat},
	}}
	keys := []string{"ENTERPRISE-ACCOUNTS", "SMB-ACCOUNTS", "CONSUMER-ACCOUNTS"}
	for i := 0; i < 300; i++ {
		rel.Rows = append(rel.Rows, types.Row{
			types.NewString(keys[i%len(keys)]),
			types.NewFloat(float64(i) * 1.5),
		})
	}
	frame := int64(len(encodeAggFrame(rel)))
	text := textWireBytes(rel)
	if frame >= text {
		t.Fatalf("frame (%d bytes) not smaller than text baseline (%d bytes)", frame, text)
	}
}

// TestCallShardLocalStreamOrdinalOrder verifies the streaming seam's merge
// contract: merge runs once per shard, in ordinal order, never concurrently,
// and sees the partial that shard's fn produced.
func TestCallShardLocalStreamOrdinalOrder(t *testing.T) {
	router, _ := newFleet(t, 3, "ID", testRows(300))

	var merged []int
	var rows []int
	err := router.CallShardLocalStream(0, "T", "ordertest", nil,
		func(p *accel.ShardPartition) (any, error) {
			return p.Ordinal*1000 + len(p.Rows.Rows), nil
		},
		func(ordinal int, partial any) error {
			merged = append(merged, ordinal)
			rows = append(rows, partial.(int))
			return nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if len(merged) != 3 {
		t.Fatalf("merge ran %d times, want 3", len(merged))
	}
	total := 0
	for i, ord := range merged {
		if ord != i {
			t.Fatalf("merge order %v not ordinal", merged)
		}
		if rows[i]/1000 != i {
			t.Fatalf("merge %d saw partial from shard %d", i, rows[i]/1000)
		}
		total += rows[i] % 1000
	}
	if total != 300 {
		t.Fatalf("shards presented %d rows in total, want 300", total)
	}
}
