package wal

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"idaax/internal/testutil/crashfs"
	"idaax/internal/vfs"
)

func openTest(t *testing.T, fs vfs.FS, policy Policy) *Log {
	t.Helper()
	l, err := Open(fs, "wal", 1, policy, time.Millisecond)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	return l
}

func TestAppendReplayRoundTrip(t *testing.T) {
	fs := crashfs.New()
	l := openTest(t, fs, SyncAlways)
	var want []string
	for i := 0; i < 100; i++ {
		p := fmt.Sprintf("record-%d", i)
		want = append(want, p)
		if err := l.Append([]byte(p), i%10 == 9); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	var got []string
	err := Replay(fs, "wal", 1, func(seq uint64, p []byte) error {
		got = append(got, string(p))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestTornTailTolerated(t *testing.T) {
	fs := crashfs.New()
	l := openTest(t, fs, SyncNever)
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("r%d", i)), false); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Sync(); err != nil {
		t.Fatal(err)
	}
	// Append more without syncing, then crash: the tail is torn.
	for i := 5; i < 8; i++ {
		if err := l.Append([]byte(fmt.Sprintf("r%d", i)), false); err != nil {
			t.Fatal(err)
		}
	}
	fs.Crash()
	n := 0
	if err := Replay(fs, "wal", 1, func(seq uint64, p []byte) error { n++; return nil }); err != nil {
		t.Fatalf("replay after crash: %v", err)
	}
	if n < 5 {
		t.Fatalf("lost synced records: replayed %d, want >= 5", n)
	}
}

func TestTornFrameBeforeLaterFileIsError(t *testing.T) {
	fs := crashfs.New()
	l := openTest(t, fs, SyncAlways)
	if err := l.Append([]byte("a"), true); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Corrupt file 1 in place, then add file 2.
	name := "wal/" + fileName(1)
	data, err := fs.ReadFile(name)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	f, err := fs.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(data); err != nil {
		t.Fatal(err)
	}
	f.Close()
	l2, err := Open(fs, "wal", 2, SyncAlways, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := l2.Append([]byte("b"), true); err != nil {
		t.Fatal(err)
	}
	l2.Close()
	err = Replay(fs, "wal", 1, func(seq uint64, p []byte) error { return nil })
	if err == nil {
		t.Fatal("replay accepted a corrupt frame with later wal files present")
	}
}

func TestRotatePruneFiles(t *testing.T) {
	fs := crashfs.New()
	l := openTest(t, fs, SyncAlways)
	if err := l.Append([]byte("a"), true); err != nil {
		t.Fatal(err)
	}
	seq, err := l.Rotate()
	if err != nil {
		t.Fatal(err)
	}
	if seq != 2 {
		t.Fatalf("rotate -> %d, want 2", seq)
	}
	if err := l.Append([]byte("b"), true); err != nil {
		t.Fatal(err)
	}
	if err := Prune(fs, "wal", seq); err != nil {
		t.Fatal(err)
	}
	seqs, err := Files(fs, "wal")
	if err != nil {
		t.Fatal(err)
	}
	if len(seqs) != 1 || seqs[0] != 2 {
		t.Fatalf("after prune files = %v, want [2]", seqs)
	}
	n := 0
	if err := Replay(fs, "wal", seq, func(s uint64, p []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("replayed %d records from file 2, want 1", n)
	}
	l.Close()
}

func TestWriteFailurePoisonsLog(t *testing.T) {
	fs := crashfs.New()
	l := openTest(t, fs, SyncNever)
	if err := l.Append([]byte("ok"), false); err != nil {
		t.Fatal(err)
	}
	fs.Arm(1, crashfs.Fail)
	if err := l.Append([]byte("boom"), false); err == nil {
		t.Fatal("append during injected failure succeeded")
	}
	fs.Disarm()
	if err := l.Append([]byte("after"), false); !errors.Is(err, ErrBroken) {
		t.Fatalf("append after poison = %v, want ErrBroken", err)
	}
	if err := l.Sync(); !errors.Is(err, ErrBroken) {
		t.Fatalf("sync after poison = %v, want ErrBroken", err)
	}
}

func TestGroupedPolicyEventuallySyncs(t *testing.T) {
	fs := crashfs.New()
	l := openTest(t, fs, SyncGrouped)
	if err := l.Append([]byte("r"), true); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	n := 0
	if err := Replay(fs, "wal", 1, func(seq uint64, p []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("record not durable after close: replayed %d", n)
	}
}

func TestConcurrentDurableAppends(t *testing.T) {
	fs := crashfs.New()
	l := openTest(t, fs, SyncAlways)
	const writers, each = 8, 25
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			for i := 0; i < each; i++ {
				if err := l.Append([]byte(fmt.Sprintf("w%d-%d", w, i)), true); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(w)
	}
	for w := 0; w < writers; w++ {
		if err := <-errs; err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	n := 0
	if err := Replay(fs, "wal", 1, func(seq uint64, p []byte) error { n++; return nil }); err != nil {
		t.Fatal(err)
	}
	if n != writers*each {
		t.Fatalf("replayed %d durable records, want %d", n, writers*each)
	}
	st := l.Stats()
	if st.Fsyncs >= int64(writers*each) {
		t.Logf("group commit did not batch (fsyncs=%d for %d appends)", st.Fsyncs, writers*each)
	}
}

func TestParsePolicy(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Policy
		ok   bool
	}{
		{"always", SyncAlways, true},
		{"grouped", SyncGrouped, true},
		{"never", SyncNever, true},
		{"sometimes", 0, false},
	} {
		got, err := ParsePolicy(tc.in)
		if tc.ok && (err != nil || got != tc.want) {
			t.Fatalf("ParsePolicy(%q) = %v, %v", tc.in, got, err)
		}
		if !tc.ok && err == nil {
			t.Fatalf("ParsePolicy(%q) accepted", tc.in)
		}
	}
}

func FuzzReadFrames(f *testing.F) {
	fs := crashfs.New()
	l, _ := Open(fs, "wal", 1, SyncAlways, 0)
	l.Append([]byte("seed-a"), false)
	l.Append([]byte("seed-b"), true)
	l.Close()
	if data, err := fs.ReadFile("wal/" + fileName(1)); err == nil {
		f.Add(data)
		f.Add(data[:len(data)-3])
	}
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		consumed, _, err := ReadFrames(data, func(p []byte) error { return nil })
		if err != nil {
			t.Fatalf("callback-free ReadFrames errored: %v", err)
		}
		if consumed < 0 || consumed > len(data) {
			t.Fatalf("consumed %d of %d bytes", consumed, len(data))
		}
	})
}
