// Package wal implements the append-only write-ahead log underneath the
// durability layer: length+CRC32-framed records in numbered files
// (wal-<seq>.log), group commit with a configurable fsync policy, and a
// reader that tolerates a torn tail after a crash but never silently skips
// a record in the middle of the committed sequence.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"idaax/internal/vfs"
)

// Policy is the fsync policy for durable appends.
type Policy int

const (
	// SyncAlways fsyncs before a durable append returns. Concurrent
	// committers share one fsync (group commit).
	SyncAlways Policy = iota
	// SyncGrouped fsyncs on a background interval; a durable append returns
	// as soon as the record is in the OS buffer, bounding loss to the group
	// interval.
	SyncGrouped
	// SyncNever fsyncs only on Rotate, Sync and Close.
	SyncNever
)

// ParsePolicy maps the config strings to a Policy.
func ParsePolicy(s string) (Policy, error) {
	switch strings.ToLower(strings.TrimSpace(s)) {
	case "", "always":
		return SyncAlways, nil
	case "grouped", "group":
		return SyncGrouped, nil
	case "never", "off":
		return SyncNever, nil
	}
	return 0, fmt.Errorf("wal: unknown fsync policy %q (want always, grouped or never)", s)
}

const (
	frameHeader = 8       // uint32 length + uint32 crc
	maxRecord   = 1 << 28 // 256 MiB sanity bound on one record
)

// ErrBroken is wrapped by every operation after a write or sync failure has
// poisoned the log; the process must treat the store as crashed.
var ErrBroken = errors.New("wal: log poisoned by earlier write failure")

// Stats are cumulative counters for observability.
type Stats struct {
	Records   int64
	Bytes     int64
	Fsyncs    int64
	Rotations int64
}

// Log is an open write-ahead log.
type Log struct {
	fs       vfs.FS
	dir      string
	policy   Policy
	interval time.Duration

	mu     sync.Mutex
	f      vfs.File
	seq    uint64
	offset int64
	broken error

	// Group commit: appends get a monotonically increasing ticket; a
	// durable append waits until syncedTo covers its ticket, electing
	// itself leader if no sync is in flight.
	ticket   int64
	syncedTo int64
	syncing  bool
	cond     *sync.Cond

	stopGroup chan struct{}
	groupDone chan struct{}

	records   atomic.Int64
	bytes     atomic.Int64
	fsyncs    atomic.Int64
	rotations atomic.Int64
}

func fileName(seq uint64) string { return fmt.Sprintf("wal-%020d.log", seq) }

// parseSeq extracts the sequence number from a wal file name.
func parseSeq(name string) (uint64, bool) {
	if !strings.HasPrefix(name, "wal-") || !strings.HasSuffix(name, ".log") {
		return 0, false
	}
	n, err := strconv.ParseUint(strings.TrimSuffix(strings.TrimPrefix(name, "wal-"), ".log"), 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// Open creates a fresh log file with sequence seq in dir and returns the
// log. Any pre-existing file with the same sequence is truncated, so callers
// must pass a sequence beyond every file that still holds committed data.
func Open(fs vfs.FS, dir string, seq uint64, policy Policy, groupInterval time.Duration) (*Log, error) {
	if err := fs.MkdirAll(dir); err != nil {
		return nil, err
	}
	f, err := fs.Create(dir + "/" + fileName(seq))
	if err != nil {
		return nil, err
	}
	if err := fs.SyncDir(dir); err != nil {
		return nil, err
	}
	l := &Log{fs: fs, dir: dir, policy: policy, interval: groupInterval, f: f, seq: seq}
	l.cond = sync.NewCond(&l.mu)
	if policy == SyncGrouped {
		if l.interval <= 0 {
			l.interval = 2 * time.Millisecond
		}
		l.stopGroup = make(chan struct{})
		l.groupDone = make(chan struct{})
		go l.groupLoop()
	}
	return l, nil
}

func (l *Log) groupLoop() {
	defer close(l.groupDone)
	t := time.NewTicker(l.interval)
	defer t.Stop()
	for {
		select {
		case <-l.stopGroup:
			return
		case <-t.C:
			l.mu.Lock()
			dirty := l.broken == nil && l.ticket > l.syncedTo
			l.mu.Unlock()
			if dirty {
				_ = l.Sync()
			}
		}
	}
}

// Seq returns the current file's sequence number.
func (l *Log) Seq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Stats returns cumulative counters.
func (l *Log) Stats() Stats {
	return Stats{
		Records:   l.records.Load(),
		Bytes:     l.bytes.Load(),
		Fsyncs:    l.fsyncs.Load(),
		Rotations: l.rotations.Load(),
	}
}

// Append frames and writes one record. If durable is true the call honours
// the fsync policy before returning: under SyncAlways it waits for a (group)
// fsync covering the record; under SyncGrouped and SyncNever it returns once
// the record is written.
func (l *Log) Append(payload []byte, durable bool) error {
	if len(payload) > maxRecord {
		return fmt.Errorf("wal: record of %d bytes exceeds limit", len(payload))
	}
	var hdr [frameHeader]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))

	l.mu.Lock()
	if l.broken != nil {
		err := l.broken
		l.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrBroken, err)
	}
	if err := l.writeLocked(hdr[:]); err != nil {
		l.mu.Unlock()
		return err
	}
	if err := l.writeLocked(payload); err != nil {
		l.mu.Unlock()
		return err
	}
	l.ticket++
	ticket := l.ticket
	l.records.Add(1)
	l.bytes.Add(int64(frameHeader + len(payload)))
	if !durable || l.policy != SyncAlways {
		l.mu.Unlock()
		return nil
	}
	return l.waitDurableLocked(ticket) // unlocks l.mu
}

// writeLocked writes to the current file, poisoning the log on failure.
func (l *Log) writeLocked(p []byte) error {
	n, err := l.f.Write(p)
	if err == nil && n != len(p) {
		err = fmt.Errorf("wal: short write (%d of %d bytes)", n, len(p))
	}
	if err != nil {
		l.broken = err
		l.cond.Broadcast()
		return err
	}
	l.offset += int64(len(p))
	return nil
}

// waitDurableLocked blocks until an fsync covers the ticket, running the
// fsync itself if no other committer is already doing one. Called with l.mu
// held; always unlocks it.
func (l *Log) waitDurableLocked(ticket int64) error {
	for {
		if l.broken != nil {
			err := l.broken
			l.mu.Unlock()
			return fmt.Errorf("%w: %v", ErrBroken, err)
		}
		if l.syncedTo >= ticket {
			l.mu.Unlock()
			return nil
		}
		if !l.syncing {
			break
		}
		l.cond.Wait()
	}
	// Leader: sync everything appended so far on behalf of the group.
	l.syncing = true
	upTo := l.ticket
	f := l.f
	l.mu.Unlock()

	err := f.Sync()

	l.mu.Lock()
	l.syncing = false
	if err != nil {
		l.broken = err
		l.cond.Broadcast()
		l.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrBroken, err)
	}
	l.fsyncs.Add(1)
	if upTo > l.syncedTo {
		l.syncedTo = upTo
	}
	l.cond.Broadcast()
	l.mu.Unlock()
	return nil
}

// CommitBarrier makes a commit durable per the fsync policy: under
// SyncAlways it is a group-shared fsync of everything appended so far; under
// SyncGrouped and SyncNever it only surfaces a latched write failure — the
// policy's contract bounds the loss window instead.
func (l *Log) CommitBarrier() error {
	if l.policy == SyncAlways {
		return l.Sync()
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.broken != nil {
		return fmt.Errorf("%w: %v", ErrBroken, l.broken)
	}
	return nil
}

// Sync forces an fsync of everything appended so far.
func (l *Log) Sync() error {
	l.mu.Lock()
	if l.broken != nil {
		err := l.broken
		l.mu.Unlock()
		return fmt.Errorf("%w: %v", ErrBroken, err)
	}
	ticket := l.ticket
	if l.syncedTo >= ticket {
		l.mu.Unlock()
		return nil
	}
	return l.waitDurableLocked(ticket)
}

// Rotate syncs and closes the current file and starts a new one with the
// next sequence number. Appends block only for the handoff, not the fsync of
// segment data elsewhere.
func (l *Log) Rotate() (uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.syncing && l.broken == nil {
		l.cond.Wait() // let an in-flight group fsync finish with this file
	}
	if l.broken != nil {
		return 0, fmt.Errorf("%w: %v", ErrBroken, l.broken)
	}
	if err := l.f.Sync(); err != nil {
		l.broken = err
		l.cond.Broadcast()
		return 0, err
	}
	l.fsyncs.Add(1)
	l.syncedTo = l.ticket
	l.cond.Broadcast()
	if err := l.f.Close(); err != nil {
		l.broken = err
		return 0, err
	}
	next := l.seq + 1
	f, err := l.fs.Create(l.dir + "/" + fileName(next))
	if err != nil {
		l.broken = err
		return 0, err
	}
	if err := l.fs.SyncDir(l.dir); err != nil {
		l.broken = err
		return 0, err
	}
	l.f = f
	l.seq = next
	l.offset = 0
	l.rotations.Add(1)
	return next, nil
}

// Close syncs and closes the log. The log must not be used afterwards.
func (l *Log) Close() error {
	if l.stopGroup != nil {
		close(l.stopGroup)
		<-l.groupDone
		l.stopGroup = nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	for l.syncing && l.broken == nil {
		l.cond.Wait()
	}
	if l.broken != nil {
		return fmt.Errorf("%w: %v", ErrBroken, l.broken)
	}
	if err := l.f.Sync(); err != nil {
		l.broken = err
		return err
	}
	l.fsyncs.Add(1)
	l.syncedTo = l.ticket
	return l.f.Close()
}

// Prune removes wal files with sequence numbers strictly below keep.
func Prune(fs vfs.FS, dir string, keep uint64) error {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return err
	}
	removed := false
	for _, name := range names {
		if seq, ok := parseSeq(name); ok && seq < keep {
			if err := fs.Remove(dir + "/" + name); err != nil {
				return err
			}
			removed = true
		}
	}
	if removed {
		return fs.SyncDir(dir)
	}
	return nil
}

// Files lists the wal file sequences present in dir, ascending.
func Files(fs vfs.FS, dir string) ([]uint64, error) {
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var seqs []uint64
	for _, name := range names {
		if seq, ok := parseSeq(name); ok {
			seqs = append(seqs, seq)
		}
	}
	sort.Slice(seqs, func(i, j int) bool { return seqs[i] < seqs[j] })
	return seqs, nil
}

// ReadFrames parses one wal file's bytes and calls fn for each complete,
// checksummed record. It returns the number of clean payload bytes consumed
// and whether the file ended with a torn/invalid frame (the crash tail).
func ReadFrames(data []byte, fn func(payload []byte) error) (consumed int, torn bool, err error) {
	off := 0
	for {
		if len(data)-off < frameHeader {
			return off, len(data)-off > 0, nil
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		crc := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxRecord || n > len(data)-off-frameHeader {
			return off, true, nil
		}
		payload := data[off+frameHeader : off+frameHeader+n]
		if crc32.ChecksumIEEE(payload) != crc {
			return off, true, nil
		}
		if err := fn(payload); err != nil {
			return off, false, err
		}
		off += frameHeader + n
	}
}

// Replay reads every record in the wal files of dir with sequence >=
// fromSeq, in order, invoking fn for each. A torn tail in the newest file is
// tolerated (the crash point); a torn frame followed by a later wal file
// means committed records were lost and is an error.
func Replay(fs vfs.FS, dir string, fromSeq uint64, fn func(seq uint64, payload []byte) error) error {
	return ReplayRange(fs, dir, fromSeq, ^uint64(0), fn)
}

// ReplayRange is Replay bounded to files with sequence in [fromSeq, toSeq].
// The bound lets recovery open a fresh wal file for new writes before
// replaying the old ones without the fresh file masking a torn tail.
func ReplayRange(fs vfs.FS, dir string, fromSeq, toSeq uint64, fn func(seq uint64, payload []byte) error) error {
	all, err := Files(fs, dir)
	if err != nil {
		return err
	}
	var seqs []uint64
	for _, seq := range all {
		if seq <= toSeq {
			seqs = append(seqs, seq)
		}
	}
	for i, seq := range seqs {
		if seq < fromSeq {
			continue
		}
		data, err := fs.ReadFile(dir + "/" + fileName(seq))
		if err != nil {
			return fmt.Errorf("wal: read %s: %w", fileName(seq), err)
		}
		_, torn, err := ReadFrames(data, func(p []byte) error { return fn(seq, p) })
		if err != nil {
			return err
		}
		if torn && i != len(seqs)-1 {
			return fmt.Errorf("wal: corrupt frame in %s with later wal files present", fileName(seq))
		}
	}
	return nil
}
