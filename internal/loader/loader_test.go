package loader

import (
	"strings"
	"testing"

	"idaax/internal/types"
)

func targetSchema() types.Schema {
	return types.NewSchema(
		types.Column{Name: "ID", Kind: types.KindInt, NotNull: true},
		types.Column{Name: "NAME", Kind: types.KindString},
		types.Column{Name: "SCORE", Kind: types.KindFloat},
		types.Column{Name: "ACTIVE", Kind: types.KindBool},
	)
}

func collectSink(dst *[]types.Row) RowSink {
	return func(rows []types.Row) (int, error) {
		for _, r := range rows {
			*dst = append(*dst, r.Clone())
		}
		return len(rows), nil
	}
}

func TestLoadCSVPositional(t *testing.T) {
	csv := "1,alice,2.5,true\n2,bob,3.5,false\n"
	var got []types.Row
	l := New(Options{BatchSize: 1})
	rep, err := l.LoadCSV(strings.NewReader(csv), targetSchema(), collectSink(&got))
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsLoaded != 2 || rep.Batches != 2 || len(got) != 2 {
		t.Fatalf("report: %+v", rep)
	}
	if got[0][0].Int != 1 || got[0][1].Str != "alice" || got[0][2].Float != 2.5 || !got[0][3].Bool {
		t.Fatalf("row: %+v", got[0])
	}
}

func TestLoadCSVHeaderMappingAndNulls(t *testing.T) {
	csv := "SCORE,ID,IGNORED,NAME\n7.5,10,zzz,carol\n\\N,11,zzz,\\N\n"
	var got []types.Row
	l := New(Options{HasHeader: true, MapByHeader: true, NullToken: `\N`})
	rep, err := l.LoadCSV(strings.NewReader(csv), targetSchema(), collectSink(&got))
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsLoaded != 2 {
		t.Fatalf("loaded %d", rep.RowsLoaded)
	}
	if got[0][0].Int != 10 || got[0][1].Str != "carol" || got[0][2].Float != 7.5 {
		t.Fatalf("mapped row: %+v", got[0])
	}
	if !got[1][2].IsNull() || !got[1][1].IsNull() {
		t.Fatalf("null token not honoured: %+v", got[1])
	}
	// ACTIVE was never provided: NULL.
	if !got[0][3].IsNull() {
		t.Fatal("missing column should be NULL")
	}
}

func TestLoadCSVMalformedHandling(t *testing.T) {
	csv := "1,alice,notanumber,true\n2,bob,1.5,false\n"
	l := New(Options{})
	var got []types.Row
	if _, err := l.LoadCSV(strings.NewReader(csv), targetSchema(), collectSink(&got)); err == nil {
		t.Fatal("malformed value should fail without SkipMalformed")
	}
	got = nil
	l = New(Options{SkipMalformed: true})
	rep, err := l.LoadCSV(strings.NewReader(csv), targetSchema(), collectSink(&got))
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsLoaded != 1 || rep.RowsSkipped != 1 {
		t.Fatalf("report: %+v", rep)
	}
}

func TestLoadJSONLines(t *testing.T) {
	jsonl := `{"id": 1, "name": "ann", "score": 4.5, "active": true}
	{"ID": 2, "NAME": "bea", "extra": "ignored"}
	`
	var got []types.Row
	l := New(Options{})
	rep, err := l.LoadJSONLines(strings.NewReader(jsonl), targetSchema(), collectSink(&got))
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsLoaded != 2 {
		t.Fatalf("loaded %d", rep.RowsLoaded)
	}
	if got[0][2].Float != 4.5 || got[1][0].Int != 2 || !got[1][2].IsNull() {
		t.Fatalf("rows: %+v", got)
	}
}

func TestLoadRowsBatches(t *testing.T) {
	rows := make([]types.Row, 23)
	for i := range rows {
		rows[i] = types.Row{types.NewInt(int64(i)), types.NewString("x"), types.NewFloat(1), types.NewBool(true)}
	}
	var got []types.Row
	l := New(Options{BatchSize: 10})
	rep, err := l.LoadRows(rows, collectSink(&got))
	if err != nil || rep.Batches != 3 || rep.RowsLoaded != 23 {
		t.Fatalf("report: %+v, %v", rep, err)
	}
}

func TestSinkErrorStopsLoad(t *testing.T) {
	csv := "1,a,1.0,true\n2,b,2.0,true\n"
	l := New(Options{BatchSize: 1})
	calls := 0
	sink := func(rows []types.Row) (int, error) {
		calls++
		if calls == 2 {
			return 0, errSink
		}
		return len(rows), nil
	}
	if _, err := l.LoadCSV(strings.NewReader(csv), targetSchema(), sink); err == nil {
		t.Fatal("sink error should propagate")
	}
}

var errSink = &sinkError{}

type sinkError struct{}

func (*sinkError) Error() string { return "sink failed" }

func TestParseField(t *testing.T) {
	v, err := ParseField("42", types.KindInt, "")
	if err != nil || v.Int != 42 {
		t.Fatalf("%v %v", v, err)
	}
	v, err = ParseField("", types.KindInt, "")
	if err != nil || !v.IsNull() {
		t.Fatalf("empty as default null token: %v %v", v, err)
	}
	if _, err := ParseField("x", types.KindFloat, ""); err == nil {
		t.Fatal("bad float should fail")
	}
}
