// Package loader implements the "IDAA Loader" component referenced by the
// paper (its citation [2]): bulk ingestion of external data — data that never
// lived in DB2, e.g. files produced off the mainframe or social-media extracts
// — directly into accelerator-only tables, accelerated tables, or regular DB2
// tables. The loader parses CSV or JSON-lines input, validates and coerces
// values against the target schema, and hands batches to a RowSink supplied by
// the caller (the federation layer provides sinks that write to DB2 storage or
// straight to the accelerator).
package loader

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"time"

	"idaax/internal/types"
)

// RowSink consumes one batch of parsed rows and returns how many were written.
type RowSink func(rows []types.Row) (int, error)

// Options control parsing behaviour.
type Options struct {
	// BatchSize is the number of rows per sink call (default 5000).
	BatchSize int
	// HasHeader skips the first CSV record (and uses it to map columns when
	// MapByHeader is set).
	HasHeader bool
	// MapByHeader maps CSV columns to schema columns by header name instead of
	// position.
	MapByHeader bool
	// Delimiter is the CSV field separator (default ',').
	Delimiter rune
	// NullToken is the literal string treated as NULL (default empty string).
	NullToken string
	// Skipmalformed records instead of failing the load.
	SkipMalformed bool
}

func (o Options) withDefaults() Options {
	if o.BatchSize <= 0 {
		o.BatchSize = 5000
	}
	if o.Delimiter == 0 {
		o.Delimiter = ','
	}
	return o
}

// Report summarises one load.
type Report struct {
	RowsRead    int
	RowsLoaded  int
	RowsSkipped int
	Batches     int
	Elapsed     time.Duration
}

// Loader parses external data into rows of a target schema.
type Loader struct {
	opts Options
}

// New creates a loader with the given options.
func New(opts Options) *Loader { return &Loader{opts: opts.withDefaults()} }

// LoadCSV reads CSV data and feeds it to the sink in batches.
func (l *Loader) LoadCSV(r io.Reader, schema types.Schema, sink RowSink) (*Report, error) {
	start := time.Now()
	report := &Report{}
	reader := csv.NewReader(r)
	reader.Comma = l.opts.Delimiter
	reader.FieldsPerRecord = -1
	reader.TrimLeadingSpace = true

	// positions[i] is the schema column index for CSV field i (-1 = ignored).
	var positions []int
	headerDone := !l.opts.HasHeader
	if headerDone {
		positions = identityPositions(schema.Len())
	}

	batch := make([]types.Row, 0, l.opts.BatchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		n, err := sink(batch)
		if err != nil {
			return err
		}
		report.RowsLoaded += n
		report.Batches++
		batch = batch[:0]
		return nil
	}

	for {
		record, err := reader.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			if l.opts.SkipMalformed {
				report.RowsSkipped++
				continue
			}
			return report, fmt.Errorf("loader: csv parse error: %w", err)
		}
		if !headerDone {
			headerDone = true
			if l.opts.MapByHeader {
				positions = headerPositions(record, schema)
			} else {
				positions = identityPositions(schema.Len())
			}
			continue
		}
		report.RowsRead++
		row, err := l.recordToRow(record, positions, schema)
		if err != nil {
			if l.opts.SkipMalformed {
				report.RowsSkipped++
				continue
			}
			return report, fmt.Errorf("loader: row %d: %w", report.RowsRead, err)
		}
		batch = append(batch, row)
		if len(batch) >= l.opts.BatchSize {
			if err := flush(); err != nil {
				return report, err
			}
		}
	}
	if err := flush(); err != nil {
		return report, err
	}
	report.Elapsed = time.Since(start)
	return report, nil
}

// LoadJSONLines reads newline-delimited JSON objects and feeds them to the
// sink. Object keys are matched to schema columns case-insensitively; missing
// keys become NULL.
func (l *Loader) LoadJSONLines(r io.Reader, schema types.Schema, sink RowSink) (*Report, error) {
	start := time.Now()
	report := &Report{}
	scanner := bufio.NewScanner(r)
	scanner.Buffer(make([]byte, 1024*1024), 16*1024*1024)

	batch := make([]types.Row, 0, l.opts.BatchSize)
	flush := func() error {
		if len(batch) == 0 {
			return nil
		}
		n, err := sink(batch)
		if err != nil {
			return err
		}
		report.RowsLoaded += n
		report.Batches++
		batch = batch[:0]
		return nil
	}

	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		if line == "" {
			continue
		}
		report.RowsRead++
		var obj map[string]any
		if err := json.Unmarshal([]byte(line), &obj); err != nil {
			if l.opts.SkipMalformed {
				report.RowsSkipped++
				continue
			}
			return report, fmt.Errorf("loader: json parse error on line %d: %w", report.RowsRead, err)
		}
		row, err := jsonToRow(obj, schema)
		if err != nil {
			if l.opts.SkipMalformed {
				report.RowsSkipped++
				continue
			}
			return report, fmt.Errorf("loader: row %d: %w", report.RowsRead, err)
		}
		batch = append(batch, row)
		if len(batch) >= l.opts.BatchSize {
			if err := flush(); err != nil {
				return report, err
			}
		}
	}
	if err := scanner.Err(); err != nil {
		return report, err
	}
	if err := flush(); err != nil {
		return report, err
	}
	report.Elapsed = time.Since(start)
	return report, nil
}

// LoadRows feeds already-materialised rows (e.g. from a generator) to the sink
// in batches; it exists so synthetic-workload ingestion measures the same
// batching path as file loads.
func (l *Loader) LoadRows(rows []types.Row, sink RowSink) (*Report, error) {
	start := time.Now()
	report := &Report{RowsRead: len(rows)}
	for lo := 0; lo < len(rows); lo += l.opts.BatchSize {
		hi := lo + l.opts.BatchSize
		if hi > len(rows) {
			hi = len(rows)
		}
		n, err := sink(rows[lo:hi])
		if err != nil {
			return report, err
		}
		report.RowsLoaded += n
		report.Batches++
	}
	report.Elapsed = time.Since(start)
	return report, nil
}

func identityPositions(n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	return out
}

func headerPositions(header []string, schema types.Schema) []int {
	out := make([]int, len(header))
	for i, h := range header {
		out[i] = schema.IndexOf(strings.TrimSpace(h))
	}
	return out
}

func (l *Loader) recordToRow(record []string, positions []int, schema types.Schema) (types.Row, error) {
	row := make(types.Row, schema.Len())
	for i := range row {
		row[i] = types.Null()
	}
	for i, field := range record {
		if i >= len(positions) {
			break
		}
		pos := positions[i]
		if pos < 0 || pos >= schema.Len() {
			continue
		}
		v, err := ParseField(field, schema.Columns[pos].Kind, l.opts.NullToken)
		if err != nil {
			return nil, fmt.Errorf("column %s: %w", schema.Columns[pos].Name, err)
		}
		row[pos] = v
	}
	return row, nil
}

// ParseField converts one textual field into a value of the target kind.
func ParseField(field string, kind types.Kind, nullToken string) (types.Value, error) {
	if field == nullToken {
		return types.Null(), nil
	}
	v := types.NewString(field)
	return v.Cast(kind)
}

func jsonToRow(obj map[string]any, schema types.Schema) (types.Row, error) {
	row := make(types.Row, schema.Len())
	for i := range row {
		row[i] = types.Null()
	}
	for key, raw := range obj {
		idx := schema.IndexOf(key)
		if idx < 0 {
			continue
		}
		v, err := jsonValue(raw, schema.Columns[idx].Kind)
		if err != nil {
			return nil, fmt.Errorf("column %s: %w", schema.Columns[idx].Name, err)
		}
		row[idx] = v
	}
	return row, nil
}

func jsonValue(raw any, kind types.Kind) (types.Value, error) {
	if raw == nil {
		return types.Null(), nil
	}
	switch x := raw.(type) {
	case float64:
		if kind == types.KindInt {
			return types.NewInt(int64(x)), nil
		}
		return types.NewFloat(x).Cast(kind)
	case string:
		return types.NewString(x).Cast(kind)
	case bool:
		return types.NewBool(x).Cast(kind)
	default:
		return types.Null(), fmt.Errorf("loader: unsupported JSON value %T", raw)
	}
}
