package obs

// Resource accounting types shared by the storage layers: colstore and
// rowstore report per-table/per-column memory footprints, an accelerator
// aggregates its tables into a StoreResources, and shard.Router gathers the
// members' stores into a FleetResources so capacity skew across the fleet is
// visible to the ops plane (/fleet endpoint, fleet gauges). Defined here —
// the one package every storage layer already imports — so the reports cross
// the Backend seam without new dependencies.

// ColumnResources is one column's storage footprint.
type ColumnResources struct {
	Name  string `json:"name"`
	Kind  string `json:"kind"`
	Bytes int64  `json:"bytes"`
	// Blocks is the number of ZoneBlockSize row blocks the column spans.
	Blocks int `json:"blocks"`
	// ZoneMapEntries counts the zone-map slots maintained for the column
	// (numeric min/max per block, plus string min/max per block for string
	// columns).
	ZoneMapEntries int `json:"zone_map_entries"`
}

// TableResources is one table's storage footprint.
type TableResources struct {
	Table string `json:"table"`
	// Rows counts row versions (colstore: including not-yet-swept deleted
	// versions; rowstore: live rows).
	Rows           int64             `json:"rows"`
	Bytes          int64             `json:"bytes"`
	Blocks         int               `json:"blocks"`
	ZoneMapEntries int               `json:"zone_map_entries"`
	Columns        []ColumnResources `json:"columns,omitempty"`
}

// StoreResources is one store's (accelerator member's or the DB2 rowstore's)
// aggregate footprint.
type StoreResources struct {
	// Member names the accelerator or shard member ("DB2" for the rowstore).
	Member         string           `json:"member"`
	Tables         int              `json:"tables"`
	Rows           int64            `json:"rows"`
	Bytes          int64            `json:"bytes"`
	Blocks         int              `json:"blocks"`
	ZoneMapEntries int              `json:"zone_map_entries"`
	TableDetail    []TableResources `json:"table_detail,omitempty"`
}

// AddTable folds one table into the store aggregate.
func (s *StoreResources) AddTable(t TableResources) {
	s.Tables++
	s.Rows += t.Rows
	s.Bytes += t.Bytes
	s.Blocks += t.Blocks
	s.ZoneMapEntries += t.ZoneMapEntries
	s.TableDetail = append(s.TableDetail, t)
}

// FleetResources is the fleet-wide view: per-member stores plus the skew
// summary the capacity gauges export.
type FleetResources struct {
	Members    []StoreResources `json:"members"`
	TotalBytes int64            `json:"total_bytes"`
	TotalRows  int64            `json:"total_rows"`
	// MaxMemberBytes/MinMemberBytes bound the per-member footprints.
	MaxMemberBytes int64 `json:"max_member_bytes"`
	MinMemberBytes int64 `json:"min_member_bytes"`
	// SkewPct is how far the largest member sits above the per-member mean,
	// in percent (0 = perfectly balanced; 100 = the largest member holds twice
	// the mean). The fleet_capacity_skew_pct gauge exports it.
	SkewPct float64 `json:"skew_pct"`
}

// AggregateFleet folds per-member stores into the fleet view.
func AggregateFleet(members []StoreResources) FleetResources {
	f := FleetResources{Members: members}
	for i, m := range members {
		f.TotalBytes += m.Bytes
		f.TotalRows += m.Rows
		if i == 0 || m.Bytes > f.MaxMemberBytes {
			f.MaxMemberBytes = m.Bytes
		}
		if i == 0 || m.Bytes < f.MinMemberBytes {
			f.MinMemberBytes = m.Bytes
		}
	}
	if n := len(members); n > 0 && f.TotalBytes > 0 {
		mean := float64(f.TotalBytes) / float64(n)
		f.SkewPct = 100 * (float64(f.MaxMemberBytes) - mean) / mean
	}
	return f
}
