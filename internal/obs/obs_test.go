package obs

import (
	"strings"
	"sync"
	"testing"
	"time"
)

func TestSpanNilSafe(t *testing.T) {
	var s *Span
	s.Add(KeyRows, 5)
	s.Label(LabelTable, "T")
	s.Finish()
	if c := s.Child("x"); c != nil {
		t.Fatalf("nil span Child = %v, want nil", c)
	}
	if d := s.Duration(); d != 0 {
		t.Fatalf("nil span Duration = %v, want 0", d)
	}
	if got := s.Format(); got != "" {
		t.Fatalf("nil span Format = %q, want empty", got)
	}
	if n := s.Aggregate(KeyRows, nil); n != 0 {
		t.Fatalf("nil span Aggregate = %d, want 0", n)
	}
}

func TestSpanTree(t *testing.T) {
	root := NewSpan("statement")
	exec := root.Child("execute")
	for i := 0; i < 3; i++ {
		sc := exec.Child("scan")
		sc.Label(LabelTable, "T")
		sc.Add(KeyRows, 10)
		sc.Finish()
	}
	exec.Finish()
	root.Finish()

	if got := root.Aggregate(KeyRows, func(n string) bool { return n == "scan" }); got != 30 {
		t.Fatalf("Aggregate rows = %d, want 30", got)
	}
	var names []string
	root.Walk(func(sp *Span, depth int) { names = append(names, sp.Name) })
	if len(names) != 5 || names[0] != "statement" || names[1] != "execute" {
		t.Fatalf("walk order = %v", names)
	}
	text := root.Format()
	if !strings.Contains(text, "scan table=T rows=10") {
		t.Fatalf("Format missing scan line:\n%s", text)
	}
	if root.Duration() <= 0 {
		t.Fatalf("root duration = %v", root.Duration())
	}
}

func TestSpanConcurrentChildren(t *testing.T) {
	root := NewSpan("fanout")
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := root.Child("shard")
			c.Add(KeyRows, 1)
			c.Finish()
		}()
	}
	wg.Wait()
	root.Finish()
	if n := len(root.Children()); n != 16 {
		t.Fatalf("children = %d, want 16", n)
	}
	if got := root.Aggregate(KeyRows, nil); got != 16 {
		t.Fatalf("rows = %d, want 16", got)
	}
}

func TestRegistryInstruments(t *testing.T) {
	r := NewRegistry()
	r.Counter("q_total").Add(3)
	r.Counter("q_total").Inc()
	r.Gauge("inflight").Set(2)
	r.GaugeFunc("cb", func() int64 { return 42 })
	h := r.Histogram("lat")
	for i := 0; i < 100; i++ {
		h.Observe(time.Duration(i+1) * time.Millisecond)
	}

	rep := r.Snapshot()
	if rep.Counters["q_total"] != 4 {
		t.Fatalf("counter = %d, want 4", rep.Counters["q_total"])
	}
	if rep.Gauges["inflight"] != 2 || rep.Gauges["cb"] != 42 {
		t.Fatalf("gauges = %v", rep.Gauges)
	}
	hs := rep.Histograms["lat"]
	if hs.Count != 100 {
		t.Fatalf("hist count = %d", hs.Count)
	}
	if hs.P50 < 25*time.Millisecond || hs.P50 > 75*time.Millisecond {
		t.Fatalf("p50 = %v out of range", hs.P50)
	}
	if hs.P99 < hs.P50 || hs.P95 < hs.P50 {
		t.Fatalf("quantiles not ordered: p50=%v p95=%v p99=%v", hs.P50, hs.P95, hs.P99)
	}
	if hs.Mean < 40*time.Millisecond || hs.Mean > 60*time.Millisecond {
		t.Fatalf("mean = %v, want ~50.5ms", hs.Mean)
	}
}

func TestRegistryNilSafe(t *testing.T) {
	var r *Registry
	r.Counter("x").Inc()
	r.Gauge("y").Set(1)
	r.GaugeFunc("z", func() int64 { return 1 })
	r.Histogram("h").Observe(time.Millisecond)
	if rep := r.Snapshot(); len(rep.Counters) != 0 {
		t.Fatalf("nil registry snapshot = %v", rep)
	}
	if r.Text() != "" {
		t.Fatalf("nil registry text non-empty")
	}
}

func TestRegistryText(t *testing.T) {
	r := NewRegistry()
	r.Counter("idaax_queries_total").Add(7)
	r.Gauge("idaax_inflight").Set(1)
	r.Histogram("idaax_select_seconds").Observe(10 * time.Millisecond)
	text := r.Text()
	for _, want := range []string{
		"# TYPE idaax_queries_total counter",
		"idaax_queries_total 7",
		"# TYPE idaax_inflight gauge",
		"idaax_inflight 1",
		"# TYPE idaax_select_seconds summary",
		`idaax_select_seconds{quantile="0.99"}`,
		"idaax_select_seconds_count 1",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("text missing %q:\n%s", want, text)
		}
	}
}

func TestHistoryRing(t *testing.T) {
	h := NewHistory(4, 2)
	h.SetSlowThreshold(50 * time.Millisecond)
	for i := 0; i < 6; i++ {
		elapsed := time.Duration(i) * 20 * time.Millisecond // 0,20,40,60,80,100ms
		h.Record(QueryRecord{SQL: "q", Elapsed: elapsed, Trace: "trace"})
	}
	recent := h.Recent(0)
	if len(recent) != 4 {
		t.Fatalf("recent = %d records, want 4", len(recent))
	}
	if recent[0].Seq != 6 || recent[3].Seq != 3 {
		t.Fatalf("recent seqs = %d..%d, want 6..3", recent[0].Seq, recent[3].Seq)
	}
	// Statements 4,5,6 (60,80,100ms) were slow; ring keeps last 2.
	slow := h.SlowQueries(0)
	if len(slow) != 2 {
		t.Fatalf("slow = %d records, want 2", len(slow))
	}
	if !slow[0].Slow() || slow[0].Trace == "" {
		t.Fatalf("slow record lost its trace: %+v", slow[0])
	}
	// Fast statements must have their trace dropped.
	for _, rec := range recent {
		if rec.Elapsed < 50*time.Millisecond && rec.Trace != "" {
			t.Fatalf("fast record kept trace: %+v", rec)
		}
	}
}

func TestHistoryDisabledSlowLog(t *testing.T) {
	h := NewHistory(2, 2)
	h.Record(QueryRecord{SQL: "q", Elapsed: time.Hour, Trace: "t"})
	if len(h.SlowQueries(0)) != 0 {
		t.Fatalf("slow log recorded with zero threshold")
	}
	var nilH *History
	nilH.Record(QueryRecord{})
	nilH.SetSlowThreshold(time.Second)
	if nilH.Recent(1) != nil || nilH.SlowQueries(1) != nil {
		t.Fatalf("nil history returned records")
	}
}
