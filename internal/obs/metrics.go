package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	v atomic.Int64
}

// Add increments the counter by delta.
func (c *Counter) Add(delta int64) {
	if c == nil {
		return
	}
	c.v.Add(delta)
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Load returns the current value.
func (c *Counter) Load() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is a point-in-time value: either set directly (Set/Add) or backed by
// a callback sampled at report time (registered via Registry.GaugeFunc).
type Gauge struct {
	v  atomic.Int64
	fn func() int64
}

// Set stores the gauge value.
func (g *Gauge) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta (use for in-flight style gauges).
func (g *Gauge) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Load returns the gauge value, sampling the callback when one is set.
func (g *Gauge) Load() int64 {
	if g == nil {
		return 0
	}
	if g.fn != nil {
		return g.fn()
	}
	return g.v.Load()
}

// histBounds are the histogram bucket upper bounds. Latencies are observed in
// nanoseconds; the bounds cover 100µs to 10s, which spans everything from a
// pruned single-shard point query to a full-fleet analytics CALL. The array
// length must stay histBuckets-1 (the final bucket is +Inf).
const histBuckets = 16

var histBounds = [histBuckets - 1]time.Duration{
	100 * time.Microsecond,
	250 * time.Microsecond,
	500 * time.Microsecond,
	1 * time.Millisecond,
	2500 * time.Microsecond,
	5 * time.Millisecond,
	10 * time.Millisecond,
	25 * time.Millisecond,
	50 * time.Millisecond,
	100 * time.Millisecond,
	250 * time.Millisecond,
	500 * time.Millisecond,
	1 * time.Second,
	2500 * time.Millisecond,
	10 * time.Second,
}

// Histogram is a fixed-bucket latency histogram. Observations are lock-free
// atomic adds; quantiles are estimated by linear interpolation inside the
// containing bucket, which is accurate enough for p50/p95/p99 reporting.
type Histogram struct {
	buckets [histBuckets]atomic.Int64 // last bucket is +Inf
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	i := 0
	for i < len(histBounds) && d > histBounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(d))
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the total observed time.
func (h *Histogram) Sum() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.sum.Load())
}

// Mean returns the average observation (0 when empty).
func (h *Histogram) Mean() time.Duration {
	n := h.Count()
	if n == 0 {
		return 0
	}
	return h.Sum() / time.Duration(n)
}

// Quantile estimates the q-quantile (0 < q <= 1) from the buckets.
func (h *Histogram) Quantile(q float64) time.Duration {
	if h == nil {
		return 0
	}
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	rank := int64(q*float64(total) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > total {
		rank = total
	}
	var seen int64
	for i := range h.buckets {
		n := h.buckets[i].Load()
		if n == 0 {
			continue
		}
		if seen+n >= rank {
			lo := time.Duration(0)
			if i > 0 {
				lo = histBounds[i-1]
			}
			hi := lo * 2
			if i < len(histBounds) {
				hi = histBounds[i]
			}
			// Linear interpolation of the rank inside the bucket.
			frac := float64(rank-seen) / float64(n)
			return lo + time.Duration(frac*float64(hi-lo))
		}
		seen += n
	}
	return histBounds[len(histBounds)-1]
}

// HistogramSnapshot is a histogram's summary at report time.
type HistogramSnapshot struct {
	Count int64
	Sum   time.Duration
	Mean  time.Duration
	P50   time.Duration
	P95   time.Duration
	P99   time.Duration
	Max   time.Duration // upper bound of the highest non-empty bucket
}

// Snapshot summarises the histogram.
func (h *Histogram) Snapshot() HistogramSnapshot {
	if h == nil {
		return HistogramSnapshot{}
	}
	snap := HistogramSnapshot{
		Count: h.Count(),
		Sum:   h.Sum(),
		Mean:  h.Mean(),
		P50:   h.Quantile(0.50),
		P95:   h.Quantile(0.95),
		P99:   h.Quantile(0.99),
	}
	for i := len(histBounds); i >= 0; i-- {
		if h.buckets[i].Load() > 0 {
			if i < len(histBounds) {
				snap.Max = histBounds[i]
			} else {
				snap.Max = 2 * histBounds[len(histBounds)-1]
			}
			break
		}
	}
	return snap
}

// Registry holds named counters, gauges and histograms. Instrument lookup
// (Counter/Gauge/Histogram) takes a read lock only on the hot path; the
// instruments themselves are lock-free atomics. The zero Registry is not
// usable; create one with NewRegistry. All methods are nil-safe so callers
// holding an optional registry need no guards.
type Registry struct {
	mu       sync.RWMutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
	helps    map[string]string
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
		helps:    make(map[string]string),
	}
}

// Help registers the descriptive text emitted as the metric's # HELP line.
// Metrics without registered help get a generic line derived from the name,
// so the exposition always carries a HELP/TYPE pair per family.
func (r *Registry) Help(name, text string) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.helps[name] = text
	r.mu.Unlock()
}

// helpFor returns the registered help for name, or a generic fallback.
func (r *Registry) helpFor(name, kind string) string {
	r.mu.RLock()
	h := r.helps[name]
	r.mu.RUnlock()
	if h == "" {
		h = "idaax " + kind + " " + name + "."
	}
	return h
}

// escapeHelp escapes backslashes and newlines per the exposition format.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	c := r.counters[name]
	r.mu.RUnlock()
	if c != nil {
		return c
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if c = r.counters[name]; c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named settable gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	g := r.gauges[name]
	r.mu.RUnlock()
	if g != nil {
		return g
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if g = r.gauges[name]; g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// GaugeFunc registers (or replaces) a callback-backed gauge, sampled whenever
// the registry is read. Use for values that already live elsewhere —
// rebalance progress, replication backlog — so reporting needs no push path.
func (r *Registry) GaugeFunc(name string, fn func() int64) {
	if r == nil {
		return
	}
	r.mu.Lock()
	r.gauges[name] = &Gauge{fn: fn}
	r.mu.Unlock()
}

// Histogram returns the named histogram, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.RLock()
	h := r.hists[name]
	r.mu.RUnlock()
	if h != nil {
		return h
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if h = r.hists[name]; h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// Report is a point-in-time snapshot of every instrument, keyed by name.
type Report struct {
	Counters   map[string]int64
	Gauges     map[string]int64
	Histograms map[string]HistogramSnapshot
}

// Snapshot reads every instrument.
func (r *Registry) Snapshot() Report {
	rep := Report{
		Counters:   map[string]int64{},
		Gauges:     map[string]int64{},
		Histograms: map[string]HistogramSnapshot{},
	}
	if r == nil {
		return rep
	}
	r.mu.RLock()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.RUnlock()
	for k, c := range counters {
		rep.Counters[k] = c.Load()
	}
	for k, g := range gauges {
		rep.Gauges[k] = g.Load()
	}
	for k, h := range hists {
		rep.Histograms[k] = h.Snapshot()
	}
	return rep
}

// Text renders the registry in Prometheus exposition format: a # HELP/# TYPE
// pair per family, counters and gauges as single samples, histograms as
// _count/_sum plus quantile samples. Names are emitted in sorted order so the
// output is stable; ValidateExposition (exposition.go) pins the format.
func (r *Registry) Text() string {
	rep := r.Snapshot()
	var sb strings.Builder
	names := make([]string, 0, len(rep.Counters))
	for k := range rep.Counters {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			k, escapeHelp(r.helpFor(k, "counter")), k, k, rep.Counters[k])
	}
	names = names[:0]
	for k := range rep.Gauges {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		fmt.Fprintf(&sb, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
			k, escapeHelp(r.helpFor(k, "gauge")), k, k, rep.Gauges[k])
	}
	names = names[:0]
	for k := range rep.Histograms {
		names = append(names, k)
	}
	sort.Strings(names)
	for _, k := range names {
		h := rep.Histograms[k]
		fmt.Fprintf(&sb, "# HELP %s %s\n", k, escapeHelp(r.helpFor(k, "latency summary")))
		fmt.Fprintf(&sb, "# TYPE %s summary\n", k)
		fmt.Fprintf(&sb, "%s{quantile=\"0.5\"} %.6f\n", k, h.P50.Seconds())
		fmt.Fprintf(&sb, "%s{quantile=\"0.95\"} %.6f\n", k, h.P95.Seconds())
		fmt.Fprintf(&sb, "%s{quantile=\"0.99\"} %.6f\n", k, h.P99.Seconds())
		fmt.Fprintf(&sb, "%s_sum %.6f\n", k, h.Sum.Seconds())
		fmt.Fprintf(&sb, "%s_count %d\n", k, h.Count)
	}
	return sb.String()
}
