package obs

import (
	"strings"
	"testing"
	"time"
)

func TestRegistryTextConforms(t *testing.T) {
	r := NewRegistry()
	r.Counter("idaax_stmt_select_total").Add(42)
	r.Help("idaax_stmt_select_total", "SELECT statements executed.")
	r.Gauge("idaax_fleet_members").Set(3)
	r.GaugeFunc("idaax_rebalance_active", func() int64 { return 1 })
	h := r.Histogram("idaax_stmt_seconds")
	h.Observe(3 * time.Millisecond)
	h.Observe(40 * time.Millisecond)

	text := r.Text()
	if err := ValidateExposition(text); err != nil {
		t.Fatalf("Registry.Text does not conform: %v\n%s", err, text)
	}
	if !strings.Contains(text, "# HELP idaax_stmt_select_total SELECT statements executed.") {
		t.Fatalf("registered help missing:\n%s", text)
	}
	if !strings.Contains(text, "# HELP idaax_fleet_members ") {
		t.Fatalf("fallback help missing:\n%s", text)
	}
	if !strings.Contains(text, `idaax_stmt_seconds{quantile="0.95"}`) {
		t.Fatalf("summary quantiles missing:\n%s", text)
	}
}

func TestRegistryTextHelpEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("x_total").Inc()
	r.Help("x_total", "line one\nwith a \\ backslash")
	text := r.Text()
	if err := ValidateExposition(text); err != nil {
		t.Fatalf("escaped help rejected: %v\n%s", err, text)
	}
	if !strings.Contains(text, `line one\nwith a \\ backslash`) {
		t.Fatalf("help not escaped:\n%s", text)
	}
}

func TestValidateExpositionAccepts(t *testing.T) {
	for name, text := range map[string]string{
		"empty":              "",
		"counter":            "# HELP a_total does things\n# TYPE a_total counter\na_total 1\n",
		"gauge no help text": "# HELP g\n# TYPE g gauge\ng -2.5\n",
		"labeled series": "# HELP req reqs\n# TYPE req counter\n" +
			"req{method=\"get\",code=\"200\"} 3\nreq{method=\"post\",code=\"200\"} 1\n",
		"escaped label value": "# HELP e x\n# TYPE e gauge\ne{msg=\"a\\\"b\\\\c\\nd\"} 1\n",
		"summary":             "# HELP s x\n# TYPE s summary\ns{quantile=\"0.5\"} 0.1\ns_sum 2.0\ns_count 7\n",
		"histogram": "# HELP h x\n# TYPE h histogram\n" +
			"h_bucket{le=\"0.1\"} 1\nh_bucket{le=\"+Inf\"} 2\nh_sum 0.3\nh_count 2\n",
		"special values": "# HELP v x\n# TYPE v gauge\nv{k=\"a\"} NaN\nv{k=\"b\"} +Inf\nv{k=\"c\"} 1e-9\n",
	} {
		if err := ValidateExposition(text); err != nil {
			t.Errorf("%s: rejected valid exposition: %v", name, err)
		}
	}
}

func TestValidateExpositionRejects(t *testing.T) {
	for name, text := range map[string]string{
		"sample without family":  "a_total 1\n",
		"type without help":      "# TYPE a counter\na 1\n",
		"help without type":      "# HELP a x\na 1\n",
		"family without samples": "# HELP a x\n# TYPE a counter\n",
		"duplicate type":         "# HELP a x\n# TYPE a counter\n# TYPE a counter\na 1\n",
		"duplicate help":         "# HELP a x\n# HELP a y\n# TYPE a counter\na 1\n",
		"type after sample":      "# HELP a x\na 1\n# TYPE a counter\n",
		"unknown type":           "# HELP a x\n# TYPE a meter\na 1\n",
		"bad metric name":        "# HELP 1a x\n# TYPE 1a counter\n1a 1\n",
		"bad value":              "# HELP a x\n# TYPE a counter\na one\n",
		"duplicate series":       "# HELP a x\n# TYPE a counter\na 1\na 2\n",
		"duplicate labeled series": "# HELP a x\n# TYPE a counter\n" +
			"a{x=\"1\",y=\"2\"} 1\na{y=\"2\",x=\"1\"} 1\n",
		"unquoted label":         "# HELP a x\n# TYPE a counter\na{x=1} 1\n",
		"bad escape":             "# HELP a x\n# TYPE a counter\na{x=\"\\t\"} 1\n",
		"unterminated labels":    "# HELP a x\n# TYPE a counter\na{x=\"1\" 1\n",
		"duplicate label names":  "# HELP a x\n# TYPE a counter\na{x=\"1\",x=\"2\"} 1\n",
		"reserved label name":    "# HELP a x\n# TYPE a counter\na{__x=\"1\"} 1\n",
		"bad quantile":           "# HELP s x\n# TYPE s summary\ns{quantile=\"p95\"} 1\n",
		"summary base unlabeled": "# HELP s x\n# TYPE s summary\ns 1\n",
		"histogram base sample":  "# HELP h x\n# TYPE h histogram\nh 1\n",
		"bucket without le":      "# HELP h x\n# TYPE h histogram\nh_bucket 1\n",
		"empty interior line":    "# HELP a x\n# TYPE a counter\n\na 1\n",
		"trailing timestamp":     "# HELP a x\n# TYPE a counter\na 1 1234567\n",
		"raw newline in help":    "# HELP a x\ny\n# TYPE a counter\na 1\n",
		"bad help escape":        "# HELP a x\\t\n# TYPE a counter\na 1\n",
	} {
		if err := ValidateExposition(text); err == nil {
			t.Errorf("%s: accepted invalid exposition:\n%s", name, text)
		}
	}
}
