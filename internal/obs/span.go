// Package obs is the observability layer: distributed trace spans that follow
// a statement from parse through shard fan-out to gather/merge, a metrics
// registry of atomic counters, gauges and latency histograms, and a query
// history ring buffer with a slow-query log.
//
// The package deliberately depends only on the standard library so every
// internal package (accel, shard, federation, replication, vexec) can import
// it without cycles.
package obs

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// Span is one timed node of a statement's trace tree. Spans are created with
// Child (or NewSpan for a root), carry integer attributes (rows, batches,
// blocks pruned) and string labels (table, shard), and are closed with Finish.
//
// All methods are safe on a nil *Span and do nothing, so tracing can be
// switched off by handing the query path a nil root: the per-operation cost
// of disabled tracing is one nil check. Child creation and attribute updates
// are safe for concurrent use — per-shard workers attach children to the same
// fan-out span from separate goroutines.
type Span struct {
	Name  string
	Start time.Time

	mu       sync.Mutex
	end      time.Time
	ints     map[string]int64
	labels   map[string]string
	children []*Span
}

// NewSpan starts a root span. Use (*Span).Child for everything below it.
func NewSpan(name string) *Span {
	return &Span{Name: name, Start: time.Now()}
}

// Child starts a sub-span under s. Returns nil when s is nil.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	c := &Span{Name: name, Start: time.Now()}
	s.mu.Lock()
	s.children = append(s.children, c)
	s.mu.Unlock()
	return c
}

// Finish stamps the span's end time. Finishing twice keeps the first stamp.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.end.IsZero() {
		s.end = time.Now()
	}
	s.mu.Unlock()
}

// Add accumulates delta into the named integer attribute.
func (s *Span) Add(key string, delta int64) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.ints == nil {
		s.ints = make(map[string]int64, 4)
	}
	s.ints[key] += delta
	s.mu.Unlock()
}

// Label sets a string label (table name, shard name, execution mode).
func (s *Span) Label(key, val string) {
	if s == nil {
		return
	}
	s.mu.Lock()
	if s.labels == nil {
		s.labels = make(map[string]string, 2)
	}
	s.labels[key] = val
	s.mu.Unlock()
}

// Int returns the named integer attribute (0 when absent or s is nil).
func (s *Span) Int(key string) int64 {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.ints[key]
}

// GetLabel returns the named string label ("" when absent or s is nil).
func (s *Span) GetLabel(key string) string {
	if s == nil {
		return ""
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.labels[key]
}

// Duration returns the span's wall time; an unfinished span reads as
// elapsed-so-far.
func (s *Span) Duration() time.Duration {
	if s == nil {
		return 0
	}
	s.mu.Lock()
	end := s.end
	s.mu.Unlock()
	if end.IsZero() {
		return time.Since(s.Start)
	}
	return end.Sub(s.Start)
}

// Children returns a snapshot of the span's direct children.
func (s *Span) Children() []*Span {
	if s == nil {
		return nil
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]*Span(nil), s.children...)
}

// Walk visits the span and every descendant depth-first.
func (s *Span) Walk(fn func(sp *Span, depth int)) {
	if s == nil {
		return
	}
	s.walk(fn, 0)
}

func (s *Span) walk(fn func(sp *Span, depth int), depth int) {
	fn(s, depth)
	for _, c := range s.Children() {
		c.walk(fn, depth+1)
	}
}

// Aggregate sums the named integer attribute over the span and all
// descendants whose name matches the predicate (nil predicate matches all).
func (s *Span) Aggregate(key string, match func(name string) bool) int64 {
	var total int64
	s.Walk(func(sp *Span, _ int) {
		if match == nil || match(sp.Name) {
			total += sp.Int(key)
		}
	})
	return total
}

// Format renders the span tree as indented text, one line per span, with
// durations and attributes — the shape shown by the observability example and
// stored in the slow-query log.
func (s *Span) Format() string {
	if s == nil {
		return ""
	}
	var sb strings.Builder
	s.Walk(func(sp *Span, depth int) {
		sb.WriteString(strings.Repeat("  ", depth))
		sb.WriteString(sp.Name)
		sp.mu.Lock()
		labels := make([]string, 0, len(sp.labels))
		for k, v := range sp.labels {
			labels = append(labels, fmt.Sprintf("%s=%s", k, v))
		}
		ints := make([]string, 0, len(sp.ints))
		for k, v := range sp.ints {
			ints = append(ints, fmt.Sprintf("%s=%d", k, v))
		}
		sp.mu.Unlock()
		sort.Strings(labels)
		sort.Strings(ints)
		for _, l := range labels {
			sb.WriteString(" ")
			sb.WriteString(l)
		}
		for _, a := range ints {
			sb.WriteString(" ")
			sb.WriteString(a)
		}
		fmt.Fprintf(&sb, " (%.3fms)", float64(sp.Duration())/float64(time.Millisecond))
		sb.WriteString("\n")
	})
	return sb.String()
}

// Common attribute keys used across the query path. Kept here so producers
// (accel, shard) and consumers (EXPLAIN ANALYZE, metrics) agree on names.
const (
	KeyRows         = "rows"
	KeyBatches      = "batches"
	KeyBlocksPruned = "blocks_pruned"
	KeyVersions     = "versions"
	KeyRetries      = "retries"
	KeyShards       = "shards"
	LabelTable      = "table"
	LabelShard      = "shard"
	LabelMode       = "mode"
)
