package eventlog

import (
	"encoding/json"
	"fmt"
	"sync"
	"testing"
)

func TestEmitAndRecentOrder(t *testing.T) {
	l := New(8)
	for i := 0; i < 5; i++ {
		l.Emitf(TypeRebalanceBatch, Info, "SHARDS", "T", fmt.Sprintf("batch %d", i))
	}
	recs := l.Recent(0, Filter{})
	if len(recs) != 5 {
		t.Fatalf("got %d events, want 5", len(recs))
	}
	for i, e := range recs {
		if e.Seq != int64(5-i) {
			t.Fatalf("event %d has seq %d, want %d (newest first)", i, e.Seq, 5-i)
		}
		if e.Time.IsZero() {
			t.Fatalf("event %d has no timestamp", i)
		}
	}
	if got := l.Recent(2, Filter{}); len(got) != 2 || got[0].Seq != 5 {
		t.Fatalf("Recent(2) = %v, want the 2 newest", got)
	}
}

func TestRingWrapKeepsNewest(t *testing.T) {
	l := New(4)
	for i := 1; i <= 10; i++ {
		l.Emitf(TypeSlowQuery, Warn, "", "", fmt.Sprintf("q%d", i))
	}
	recs := l.Recent(0, Filter{})
	if len(recs) != 4 {
		t.Fatalf("ring of 4 retained %d", len(recs))
	}
	if recs[0].Seq != 10 || recs[3].Seq != 7 {
		t.Fatalf("ring kept seqs %d..%d, want 10..7", recs[0].Seq, recs[3].Seq)
	}
	if l.Total() != 10 {
		t.Fatalf("Total = %d, want 10", l.Total())
	}
}

func TestFilters(t *testing.T) {
	l := New(16)
	l.Emitf(TypeMemberAdded, Info, "SHARDS", "", "IDAA4 joined")
	l.Emitf(TypeCDCLagHigh, Warn, "", "ORDERS", "lag 6s")
	l.Emitf(TypeScatterFailed, Error, "SHARDS", "ORDERS", "boom")

	if got := l.Recent(0, Filter{MinSeverity: Warn}); len(got) != 2 {
		t.Fatalf("MinSeverity WARN kept %d, want 2", len(got))
	}
	if got := l.Recent(0, Filter{MinSeverity: Error}); len(got) != 1 || got[0].Type != TypeScatterFailed {
		t.Fatalf("MinSeverity ERROR = %v", got)
	}
	if got := l.Recent(0, Filter{Type: "CDC_LAG_HIGH"}); len(got) != 1 || got[0].Table != "ORDERS" {
		t.Fatalf("type filter (case-insensitive) = %v", got)
	}
	if l.Count(Warn) != 1 || l.Count(Error) != 1 || l.Count(Info) != 1 {
		t.Fatalf("severity counts = %d/%d/%d", l.Count(Info), l.Count(Warn), l.Count(Error))
	}
}

func TestSeverityParseAndJSON(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Severity
		ok   bool
	}{
		{"info", Info, true}, {"WARN", Warn, true}, {"Warning", Warn, true},
		{"error", Error, true}, {"", Info, true}, {"bogus", Info, false},
	} {
		got, ok := ParseSeverity(tc.in)
		if got != tc.want || ok != tc.ok {
			t.Fatalf("ParseSeverity(%q) = %v,%v want %v,%v", tc.in, got, ok, tc.want, tc.ok)
		}
	}
	e := Event{Type: TypeSlowQuery, Severity: Warn, Message: "m"}
	b, err := json.Marshal(e)
	if err != nil {
		t.Fatal(err)
	}
	var back Event
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Severity != Warn {
		t.Fatalf("severity did not round-trip through JSON: %s", b)
	}
}

func TestSubscribeTapAndDrop(t *testing.T) {
	l := New(8)
	ch, cancel := l.Subscribe(2)
	l.Emitf(TypeMemberAdded, Info, "S", "", "a")
	l.Emitf(TypeMemberAdded, Info, "S", "", "b")
	// Buffer is full: this one is dropped for the subscriber, kept in the ring.
	l.Emitf(TypeMemberAdded, Info, "S", "", "c")
	if got := (<-ch).Message; got != "a" {
		t.Fatalf("first tapped event = %q", got)
	}
	if got := (<-ch).Message; got != "b" {
		t.Fatalf("second tapped event = %q", got)
	}
	if l.Dropped() != 1 {
		t.Fatalf("Dropped = %d, want 1", l.Dropped())
	}
	if len(l.Recent(0, Filter{})) != 3 {
		t.Fatal("ring lost the dropped event")
	}
	cancel()
	cancel() // idempotent
	if _, open := <-ch; open {
		t.Fatal("channel still open after cancel")
	}
	l.Emitf(TypeMemberAdded, Info, "S", "", "d") // must not panic or block
}

func TestNilLogIsSafe(t *testing.T) {
	var l *Log
	l.Emitf(TypeSlowQuery, Warn, "", "", "x")
	if l.Recent(5, Filter{}) != nil || l.Count(Warn) != 0 || l.Total() != 0 {
		t.Fatal("nil log leaked data")
	}
	ch, cancel := l.Subscribe(1)
	cancel()
	if _, open := <-ch; open {
		t.Fatal("nil log subscription channel should be closed")
	}
}

func TestConcurrentEmitters(t *testing.T) {
	l := New(64)
	ch, cancel := l.Subscribe(1024)
	defer cancel()
	var wg sync.WaitGroup
	const emitters, each = 8, 200
	for g := 0; g < emitters; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				l.Emitf(TypeRebalanceBatch, Info, fmt.Sprintf("S%d", g), "T", "b")
			}
		}(g)
	}
	done := make(chan struct{})
	var tapped int
	go func() {
		for range ch {
			tapped++
		}
		close(done)
	}()
	wg.Wait()
	if l.Total() != emitters*each {
		t.Fatalf("Total = %d, want %d", l.Total(), emitters*each)
	}
	cancel()
	<-done
	if int64(tapped)+l.Dropped() != int64(emitters*each) {
		t.Fatalf("tapped %d + dropped %d != emitted %d", tapped, l.Dropped(), emitters*each)
	}
	types := l.Types()
	if len(types) != 1 || types[0] != TypeRebalanceBatch {
		t.Fatalf("Types = %v", types)
	}
}
