// Package eventlog is the structured event journal of the operations plane: a
// bounded, concurrency-safe ring of typed events that the subsystems emit into
// — fleet membership changes, rebalance progress and stalls, CDC lag threshold
// crossings, slow queries, analytics scatter failures, transaction aborts —
// plus a subscription tap for live consumers (the ops server's /events
// endpoint reads the ring; a future push exporter would subscribe).
//
// Like the rest of internal/obs, the package depends only on the standard
// library so every internal package can import it without cycles, and every
// method is safe on a nil *Log so emission points need no "is the journal
// wired" guards.
package eventlog

import (
	"sort"
	"strings"
	"sync"
	"time"
)

// Severity classifies an event's operational urgency.
type Severity int

const (
	// Info events record normal lifecycle progress (member joined, rebalance
	// completed, batch moved).
	Info Severity = iota
	// Warn events record conditions an operator should look at but that the
	// system tolerates (slow query, CDC lag crossing its threshold).
	Warn
	// Error events record failures (scatter failure, scan error, rebalance
	// stall, transaction abort on error paths).
	Error
)

// String renders the severity in the upper-case form the SQL and HTTP
// surfaces filter by.
func (s Severity) String() string {
	switch s {
	case Warn:
		return "WARN"
	case Error:
		return "ERROR"
	default:
		return "INFO"
	}
}

// MarshalJSON renders the severity as its string form, so the JSON of an
// Event reads "WARN" rather than a bare ordinal.
func (s Severity) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON accepts the string form produced by MarshalJSON.
func (s *Severity) UnmarshalJSON(b []byte) error {
	sev, _ := ParseSeverity(strings.Trim(string(b), `"`))
	*s = sev
	return nil
}

// ParseSeverity parses "INFO"/"WARN"/"ERROR" (any case; "WARNING" accepted).
func ParseSeverity(s string) (Severity, bool) {
	switch strings.ToUpper(strings.TrimSpace(s)) {
	case "INFO", "":
		return Info, true
	case "WARN", "WARNING":
		return Warn, true
	case "ERROR", "ERR":
		return Error, true
	default:
		return Info, false
	}
}

// Event types emitted by the built-in subsystems. Kept here so producers
// (shard, federation, the watchdog) and consumers (ops endpoints, tests,
// ARCHITECTURE.md's taxonomy table) agree on names.
const (
	TypeMemberAdded      = "member_added"
	TypeMemberDraining   = "member_draining"
	TypeMemberDetached   = "member_detached"
	TypeRebalanceStarted = "rebalance_started"
	TypeRebalanceBatch   = "rebalance_batch"
	TypeRebalanceDone    = "rebalance_completed"
	TypeRebalanceStalled = "rebalance_stalled"
	TypeRebalanceFailed  = "rebalance_failed"
	TypeCDCLagHigh       = "cdc_lag_high"
	TypeCDCLagRecovered  = "cdc_lag_recovered"
	TypeSlowQuery        = "slow_query"
	TypeSlowQuerySpike   = "slow_query_spike"
	TypeScatterFailed    = "analytics_scatter_failed"
	TypeScanError        = "shard_scan_error"
	TypeTxnAborted       = "txn_aborted"
	TypeHealthChanged    = "health_changed"
	TypeOpsServer        = "ops_server"
	TypeCheckpoint       = "checkpoint"
	TypeRecovered        = "recovered"
	TypeWireServer       = "wire_server"
	TypeSessionReaped    = "wire_session_reaped"
	TypeAdmissionShed    = "admission_shed"
	TypeAdmissionSat     = "admission_saturated"
)

// Event is one entry of the journal.
type Event struct {
	// Seq numbers events in emission order (1-based, monotonic per log).
	Seq int64 `json:"seq"`
	// Time is when the event was emitted.
	Time time.Time `json:"time"`
	// Type is the event's kind (one of the Type* constants, or any string for
	// application events).
	Type string `json:"type"`
	// Severity is the operational urgency.
	Severity Severity `json:"severity"`
	// Shard labels the member accelerator or shard group concerned ("" when
	// not shard-scoped).
	Shard string `json:"shard,omitempty"`
	// Table labels the table concerned ("" when not table-scoped).
	Table string `json:"table,omitempty"`
	// Message is the human-readable one-liner.
	Message string `json:"message"`
	// Payload carries extra structured fields (row counts, lag durations,
	// thresholds) as rendered strings.
	Payload map[string]string `json:"payload,omitempty"`
}

// Log is the bounded journal: a fixed-capacity ring of the most recent events
// plus a set of subscriber channels. Emission is O(1) amortised and never
// blocks — a subscriber that cannot keep up has events dropped (and counted),
// so a stuck consumer cannot stall the hot paths that emit.
type Log struct {
	mu      sync.Mutex
	seq     int64
	ring    []Event
	next    int
	full    bool
	subs    map[int]chan Event
	nextSub int
	dropped int64
	// bySev counts emissions per severity since creation (feeds gauges and the
	// watchdog's rate rules without draining the ring).
	bySev [3]int64
}

// New creates a journal retaining the last capacity events.
func New(capacity int) *Log {
	if capacity < 1 {
		capacity = 1
	}
	return &Log{
		ring: make([]Event, capacity),
		subs: make(map[int]chan Event),
	}
}

// Emit stamps the event (sequence + time, when unset) and appends it to the
// ring, fanning it out to subscribers without blocking. It returns the stamped
// event. Emit on a nil log is a no-op.
func (l *Log) Emit(e Event) Event {
	if l == nil {
		return e
	}
	if e.Time.IsZero() {
		e.Time = time.Now()
	}
	l.mu.Lock()
	l.seq++
	e.Seq = l.seq
	l.ring[l.next] = e
	l.next++
	if l.next == len(l.ring) {
		l.next = 0
		l.full = true
	}
	if e.Severity >= Info && int(e.Severity) < len(l.bySev) {
		l.bySev[e.Severity]++
	}
	for _, ch := range l.subs {
		select {
		case ch <- e:
		default:
			l.dropped++
		}
	}
	l.mu.Unlock()
	return e
}

// Emitf is the convenience form for call sites without payloads.
func (l *Log) Emitf(typ string, sev Severity, shard, table, message string) Event {
	return l.Emit(Event{Type: typ, Severity: sev, Shard: shard, Table: table, Message: message})
}

// Filter restricts what Recent returns.
type Filter struct {
	// MinSeverity keeps only events at or above the severity.
	MinSeverity Severity
	// Type keeps only events of the exact type ("" = all types).
	Type string
}

// Recent returns up to n of the most recent events matching the filter,
// newest first (n <= 0 returns every retained match).
func (l *Log) Recent(n int, f Filter) []Event {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	size := l.next
	if l.full {
		size = len(l.ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]Event, 0, n)
	for i := 0; i < size && len(out) < n; i++ {
		idx := l.next - 1 - i
		for idx < 0 {
			idx += len(l.ring)
		}
		e := l.ring[idx]
		if e.Severity < f.MinSeverity {
			continue
		}
		if f.Type != "" && !strings.EqualFold(e.Type, f.Type) {
			continue
		}
		out = append(out, e)
	}
	return out
}

// Count returns how many events of the severity have been emitted since the
// log was created (not bounded by the ring).
func (l *Log) Count(sev Severity) int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if sev < Info || int(sev) >= len(l.bySev) {
		return 0
	}
	return l.bySev[sev]
}

// Total returns how many events have been emitted since creation.
func (l *Log) Total() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.seq
}

// Dropped returns how many events were not delivered to a subscriber because
// its buffer was full.
func (l *Log) Dropped() int64 {
	if l == nil {
		return 0
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.dropped
}

// Subscribe registers a tap: every subsequent emission is sent to the returned
// channel (buffered with buf slots; emissions that find it full are dropped,
// never blocked on). The cancel function removes the tap and closes the
// channel. Subscribe on a nil log returns a closed channel.
func (l *Log) Subscribe(buf int) (<-chan Event, func()) {
	if buf < 1 {
		buf = 16
	}
	ch := make(chan Event, buf)
	if l == nil {
		close(ch)
		return ch, func() {}
	}
	l.mu.Lock()
	id := l.nextSub
	l.nextSub++
	l.subs[id] = ch
	l.mu.Unlock()
	var once sync.Once
	cancel := func() {
		once.Do(func() {
			l.mu.Lock()
			delete(l.subs, id)
			l.mu.Unlock()
			close(ch)
		})
	}
	return ch, cancel
}

// Types returns the distinct event types currently retained in the ring,
// sorted — the ops /events endpoint offers them as filter hints.
func (l *Log) Types() []string {
	if l == nil {
		return nil
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	size := l.next
	if l.full {
		size = len(l.ring)
	}
	seen := make(map[string]bool, 8)
	for i := 0; i < size; i++ {
		seen[l.ring[i].Type] = true
	}
	out := make([]string, 0, len(seen))
	for t := range seen {
		out = append(out, t)
	}
	sort.Strings(out)
	return out
}
