package health

import (
	"encoding/json"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestReportAggregatesWorst(t *testing.T) {
	tr := NewTracker()
	tr.Register("a", func() Probe { return Ok("fine") })
	tr.Register("b", func() Probe { return Ok("fine") })

	rep := tr.Report()
	if rep.Status != Healthy || !rep.Healthy() || !rep.Ready() {
		t.Fatalf("all-ok fleet reported %v", rep.Status)
	}
	if len(rep.Components) != 2 || rep.Components[0].Name != "a" {
		t.Fatalf("components = %v", rep.Components)
	}

	tr.Register("b", func() Probe { return Degrade("lagging") })
	rep = tr.Report()
	if rep.Status != Degraded || !rep.Healthy() || rep.Ready() {
		t.Fatalf("degraded fleet reported %v", rep.Status)
	}

	tr.Register("c", func() Probe { return Fail("stalled") })
	rep = tr.Report()
	if rep.Status != Unhealthy || rep.Healthy() {
		t.Fatalf("unhealthy fleet reported %v", rep.Status)
	}
	if c, ok := rep.Component("c"); !ok || c.Status != Unhealthy || c.Detail != "stalled" {
		t.Fatalf("component c = %v,%v", c, ok)
	}
}

func TestOverridesWorseWins(t *testing.T) {
	tr := NewTracker()
	tr.Register("rebalancer", func() Probe { return Ok("idle") })

	// Override worse than the check: override wins and is flagged.
	tr.SetOverride("rebalancer", Fail("no progress for 3 intervals"))
	rep := tr.Report()
	c, _ := rep.Component("rebalancer")
	if c.Status != Unhealthy || !c.Watchdog || rep.Healthy() {
		t.Fatalf("override not applied: %+v", c)
	}

	// Check worse than the override: check wins, not flagged as watchdog.
	tr.Register("rebalancer", func() Probe { return Fail("broken") })
	tr.SetOverride("rebalancer", Degrade("slow"))
	c, _ = tr.Report().Component("rebalancer")
	if c.Status != Unhealthy || c.Watchdog || c.Detail != "broken" {
		t.Fatalf("check should win over milder override: %+v", c)
	}

	tr.Register("rebalancer", func() Probe { return Ok("idle") })
	tr.ClearOverride("rebalancer")
	if rep := tr.Report(); rep.Status != Healthy {
		t.Fatalf("clear did not restore health: %v", rep.Status)
	}

	// Override on a component with no check creates a synthetic component.
	tr.SetOverride("query-latency", Degrade("slow-query spike"))
	c, ok := tr.Report().Component("query-latency")
	if !ok || c.Status != Degraded || !c.Watchdog {
		t.Fatalf("synthetic component = %+v,%v", c, ok)
	}

	tr.Deregister("query-latency")
	if _, ok := tr.Report().Component("query-latency"); ok {
		t.Fatal("deregister left the synthetic component")
	}
}

func TestStatusJSONAndWorse(t *testing.T) {
	if Worse(Healthy, Degraded) != Degraded || Worse(Unhealthy, Degraded) != Unhealthy {
		t.Fatal("Worse ordering broken")
	}
	b, err := json.Marshal(Report{Status: Degraded, Components: []ComponentHealth{{Name: "x", Status: Unhealthy}}})
	if err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Status != Degraded || back.Components[0].Status != Unhealthy {
		t.Fatalf("report did not round-trip: %s", b)
	}
}

func TestNilTrackerAndWatchdog(t *testing.T) {
	var tr *Tracker
	tr.Register("x", func() Probe { return Fail("x") })
	tr.SetOverride("x", Fail("x"))
	tr.ClearOverride("x")
	tr.Deregister("x")
	if rep := tr.Report(); rep.Status != Healthy || len(rep.Components) != 0 {
		t.Fatalf("nil tracker report = %+v", rep)
	}
	var w *Watchdog
	w.AddRule(Rule{Name: "r", Evaluate: func() *Probe { return nil }})
	w.Tick()
	w.Start()
	w.Stop()
	if w.Ticks() != 0 || w.Running() {
		t.Fatal("nil watchdog leaked state")
	}
}

func TestWatchdogFireAndRecover(t *testing.T) {
	tr := NewTracker()
	tr.Register("rebalancer", func() Probe { return Ok("idle") })
	w := NewWatchdog(tr, time.Hour) // background loop unused; we Tick manually

	var stalled atomic.Bool
	w.AddRule(Rule{
		Name:      "rebalance-stall",
		Component: "rebalancer",
		Evaluate: func() *Probe {
			if stalled.Load() {
				p := Fail("no progress")
				return &p
			}
			return nil
		},
	})
	var mu sync.Mutex
	var seen []Transition
	w.OnTransition(func(tr Transition) {
		mu.Lock()
		seen = append(seen, tr)
		mu.Unlock()
	})

	w.Tick()
	if rep := tr.Report(); rep.Status != Healthy {
		t.Fatalf("rule fired while condition false: %v", rep.Status)
	}

	stalled.Store(true)
	w.Tick()
	w.Tick() // still firing: no second transition
	if rep := tr.Report(); rep.Status != Unhealthy {
		t.Fatalf("rule did not flip component: %v", rep.Status)
	}
	mu.Lock()
	if len(seen) != 1 || seen[0].Rule != "rebalance-stall" || seen[0].Probe == nil {
		t.Fatalf("transitions = %+v", seen)
	}
	mu.Unlock()

	stalled.Store(false)
	w.Tick()
	if rep := tr.Report(); rep.Status != Healthy {
		t.Fatalf("recovery did not clear override: %v", rep.Status)
	}
	mu.Lock()
	if len(seen) != 2 || seen[1].Probe != nil {
		t.Fatalf("recovery transition = %+v", seen)
	}
	mu.Unlock()
	if w.Ticks() != 4 {
		t.Fatalf("Ticks = %d, want 4", w.Ticks())
	}
}

func TestWatchdogStartStopIdempotent(t *testing.T) {
	tr := NewTracker()
	w := NewWatchdog(tr, time.Millisecond)
	var evals atomic.Int64
	w.AddRule(Rule{Name: "count", Component: "c", Evaluate: func() *Probe {
		evals.Add(1)
		return nil
	}})
	w.Start()
	w.Start() // idempotent
	if !w.Running() {
		t.Fatal("not running after Start")
	}
	deadline := time.Now().Add(2 * time.Second)
	for evals.Load() < 3 && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if evals.Load() < 3 {
		t.Fatalf("background loop evaluated %d times", evals.Load())
	}
	w.Stop()
	w.Stop() // idempotent
	if w.Running() {
		t.Fatal("still running after Stop")
	}
	n := evals.Load()
	time.Sleep(10 * time.Millisecond)
	if evals.Load() != n {
		t.Fatal("loop still evaluating after Stop")
	}
	// Restart works.
	w.Start()
	deadline = time.Now().Add(2 * time.Second)
	for evals.Load() == n && time.Now().Before(deadline) {
		time.Sleep(time.Millisecond)
	}
	if evals.Load() == n {
		t.Fatal("restart did not resume evaluation")
	}
	w.Stop()
}

func TestWatchdogConcurrentTickAndReport(t *testing.T) {
	tr := NewTracker()
	for _, name := range []string{"a", "b", "c"} {
		n := name
		tr.Register(n, func() Probe { return Ok(n) })
	}
	w := NewWatchdog(tr, time.Millisecond)
	var flip atomic.Bool
	w.AddRule(Rule{Name: "flap", Component: "b", Evaluate: func() *Probe {
		if flip.Load() {
			p := Degrade("flap")
			return &p
		}
		return nil
	}})
	w.Start()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				flip.Store(i%2 == 0)
				rep := tr.Report()
				if rep.Status == Unhealthy {
					t.Error("flapping degrade must never read unhealthy")
					return
				}
				w.Tick()
			}
		}()
	}
	wg.Wait()
	w.Stop()
}
