// Package health is the fleet health model of the operations plane:
// per-component health checks (each shard backend, the replication apply
// loop, the rebalancer, planner statistics freshness) aggregated into one
// fleet verdict, plus a background watchdog (watchdog.go) that evaluates
// temporal rules — conditions only visible across time, like a rebalance
// making no progress — and flips components to degraded or unhealthy.
//
// The package is generic: components are registered as closures by the
// federation layer, so health itself (like the rest of internal/obs) depends
// only on the standard library.
package health

import (
	"sort"
	"strings"
	"sync"
)

// Status is a component's (or the fleet's) health verdict. Order matters:
// higher is worse, and the aggregate verdict is the worst component.
type Status int

const (
	// Healthy: the component operates normally.
	Healthy Status = iota
	// Degraded: the component works but an operator should look (CDC lag over
	// threshold, stale planner statistics, elevated slow-query rate).
	Degraded
	// Unhealthy: the component does not make progress (stalled rebalance,
	// persistent scan errors). An unhealthy component fails /healthz.
	Unhealthy
)

// String renders the status in the form the HTTP and SQL surfaces report.
func (s Status) String() string {
	switch s {
	case Degraded:
		return "DEGRADED"
	case Unhealthy:
		return "UNHEALTHY"
	default:
		return "HEALTHY"
	}
}

// MarshalJSON renders the status as its string form.
func (s Status) MarshalJSON() ([]byte, error) {
	return []byte(`"` + s.String() + `"`), nil
}

// UnmarshalJSON accepts the string form produced by MarshalJSON.
func (s *Status) UnmarshalJSON(b []byte) error {
	switch strings.ToUpper(strings.Trim(string(b), `"`)) {
	case "DEGRADED":
		*s = Degraded
	case "UNHEALTHY":
		*s = Unhealthy
	default:
		*s = Healthy
	}
	return nil
}

// Worse returns the worse of two statuses.
func Worse(a, b Status) Status {
	if b > a {
		return b
	}
	return a
}

// Probe is one check's result.
type Probe struct {
	Status Status `json:"status"`
	// Detail is the human-readable reason ("apply lag 12s over threshold 5s").
	Detail string `json:"detail,omitempty"`
}

// Ok builds a healthy probe.
func Ok(detail string) Probe { return Probe{Status: Healthy, Detail: detail} }

// Degrade builds a degraded probe.
func Degrade(detail string) Probe { return Probe{Status: Degraded, Detail: detail} }

// Fail builds an unhealthy probe.
func Fail(detail string) Probe { return Probe{Status: Unhealthy, Detail: detail} }

// CheckFunc evaluates one component's instantaneous health. Checks run on
// every Report call (a /healthz request, a watchdog tick), so they must be
// cheap and must not block.
type CheckFunc func() Probe

// ComponentHealth is one component's line in a report.
type ComponentHealth struct {
	Name   string `json:"name"`
	Status Status `json:"status"`
	Detail string `json:"detail,omitempty"`
	// Watchdog marks a verdict imposed by a watchdog rule rather than (or on
	// top of) the component's own check.
	Watchdog bool `json:"watchdog,omitempty"`
}

// Report is the aggregated fleet verdict: the worst component wins.
type Report struct {
	Status     Status            `json:"status"`
	Components []ComponentHealth `json:"components"`
}

// Healthy reports whether no component is Unhealthy (the /healthz criterion).
func (r Report) Healthy() bool { return r.Status != Unhealthy }

// Ready reports whether every component is Healthy (the /readyz criterion).
func (r Report) Ready() bool { return r.Status == Healthy }

// Component returns the named component's line (zero value when absent).
func (r Report) Component(name string) (ComponentHealth, bool) {
	for _, c := range r.Components {
		if c.Name == name {
			return c, true
		}
	}
	return ComponentHealth{}, false
}

// Tracker holds the registered component checks plus the overrides watchdog
// rules impose. All methods are safe for concurrent use and safe on a nil
// receiver (reporting an empty, healthy fleet), matching the obs idiom.
type Tracker struct {
	mu        sync.Mutex
	checks    map[string]CheckFunc
	overrides map[string]Probe
}

// NewTracker creates an empty tracker.
func NewTracker() *Tracker {
	return &Tracker{
		checks:    make(map[string]CheckFunc),
		overrides: make(map[string]Probe),
	}
}

// Register installs (or replaces) a component's check.
func (t *Tracker) Register(name string, fn CheckFunc) {
	if t == nil || fn == nil {
		return
	}
	t.mu.Lock()
	t.checks[name] = fn
	t.mu.Unlock()
}

// Deregister removes a component (a detached shard member) and any override
// on it.
func (t *Tracker) Deregister(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	delete(t.checks, name)
	delete(t.overrides, name)
	t.mu.Unlock()
}

// SetOverride imposes a watchdog verdict on a component. The override is
// folded into reports (the worse of check and override wins) until cleared.
// Components without a registered check may be overridden too — the watchdog
// can degrade a purely synthetic component like "query-latency".
func (t *Tracker) SetOverride(name string, p Probe) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.overrides[name] = p
	t.mu.Unlock()
}

// ClearOverride lifts a watchdog verdict.
func (t *Tracker) ClearOverride(name string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	delete(t.overrides, name)
	t.mu.Unlock()
}

// Override returns the current watchdog verdict on a component, if any.
func (t *Tracker) Override(name string) (Probe, bool) {
	if t == nil {
		return Probe{}, false
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p, ok := t.overrides[name]
	return p, ok
}

// Report runs every registered check, folds in the watchdog overrides and
// aggregates the fleet verdict. Checks run outside the tracker lock so a slow
// check cannot block Register/SetOverride callers.
func (t *Tracker) Report() Report {
	if t == nil {
		return Report{Status: Healthy}
	}
	t.mu.Lock()
	names := make([]string, 0, len(t.checks))
	checks := make([]CheckFunc, 0, len(t.checks))
	for n, fn := range t.checks {
		names = append(names, n)
		checks = append(checks, fn)
	}
	overrides := make(map[string]Probe, len(t.overrides))
	for n, p := range t.overrides {
		overrides[n] = p
	}
	t.mu.Unlock()

	byName := make(map[string]ComponentHealth, len(names)+len(overrides))
	for i, n := range names {
		p := checks[i]()
		byName[n] = ComponentHealth{Name: n, Status: p.Status, Detail: p.Detail}
	}
	for n, p := range overrides {
		c, ok := byName[n]
		if !ok {
			c = ComponentHealth{Name: n}
		}
		if p.Status >= c.Status {
			c.Status = p.Status
			c.Detail = p.Detail
			c.Watchdog = true
		}
		byName[n] = c
	}

	rep := Report{Status: Healthy, Components: make([]ComponentHealth, 0, len(byName))}
	for _, c := range byName {
		rep.Components = append(rep.Components, c)
		rep.Status = Worse(rep.Status, c.Status)
	}
	sort.Slice(rep.Components, func(i, j int) bool {
		return rep.Components[i].Name < rep.Components[j].Name
	})
	return rep
}
