package health

import (
	"sync"
	"time"
)

// Rule is one watchdog rule: a named condition evaluated every tick against a
// component. Evaluate returns nil when the condition does not hold (any
// override the rule imposed earlier is lifted) and a probe when it does (the
// probe is imposed as the component's watchdog override). Rules that need
// memory across ticks — "no rebalance progress for N intervals", "error count
// grew since last tick" — keep it in the closure.
type Rule struct {
	// Name identifies the rule in events ("rebalance-stall").
	Name string
	// Component is the tracker component the rule's verdict lands on.
	Component string
	// Evaluate runs once per tick. It must be cheap and must not block.
	Evaluate func() *Probe
}

// Transition describes a rule changing state on a tick: firing (Probe set) or
// recovering (Probe nil, after having fired).
type Transition struct {
	Rule      string
	Component string
	// Probe is the imposed verdict when firing, nil on recovery.
	Probe *Probe
}

// Watchdog periodically evaluates rules against a tracker. It owns one
// background goroutine between Start and Stop; Tick is exported so tests (and
// the federation layer's deterministic paths) can evaluate synchronously
// without the goroutine.
type Watchdog struct {
	tracker  *Tracker
	interval time.Duration

	mu      sync.Mutex
	rules   []Rule
	firing  map[string]bool // rule name -> fired on the previous evaluation
	onEvent func(Transition)
	ticks   int64

	runMu   sync.Mutex
	stop    chan struct{}
	done    chan struct{}
	running bool
}

// NewWatchdog creates a stopped watchdog over the tracker. interval <= 0
// defaults to one second.
func NewWatchdog(t *Tracker, interval time.Duration) *Watchdog {
	if interval <= 0 {
		interval = time.Second
	}
	return &Watchdog{
		tracker:  t,
		interval: interval,
		firing:   make(map[string]bool),
	}
}

// AddRule installs a rule. Rules added while running take effect on the next
// tick.
func (w *Watchdog) AddRule(r Rule) {
	if w == nil || r.Evaluate == nil {
		return
	}
	w.mu.Lock()
	w.rules = append(w.rules, r)
	w.mu.Unlock()
}

// OnTransition installs the callback invoked (outside the watchdog lock)
// whenever a rule starts or stops firing — the federation layer bridges it to
// the event journal.
func (w *Watchdog) OnTransition(fn func(Transition)) {
	if w == nil {
		return
	}
	w.mu.Lock()
	w.onEvent = fn
	w.mu.Unlock()
}

// Tick evaluates every rule once, imposing or lifting overrides on the
// tracker and reporting transitions. Safe to call whether or not the
// background loop is running.
func (w *Watchdog) Tick() {
	if w == nil {
		return
	}
	w.mu.Lock()
	rules := make([]Rule, len(w.rules))
	copy(rules, w.rules)
	onEvent := w.onEvent
	w.ticks++
	w.mu.Unlock()

	var transitions []Transition
	for _, r := range rules {
		p := r.Evaluate()
		w.mu.Lock()
		was := w.firing[r.Name]
		w.firing[r.Name] = p != nil
		w.mu.Unlock()
		if p != nil {
			w.tracker.SetOverride(r.Component, *p)
			if !was {
				transitions = append(transitions, Transition{Rule: r.Name, Component: r.Component, Probe: p})
			}
		} else if was {
			// Lift only if no other currently-firing rule targets the component;
			// otherwise that rule's next evaluation re-imposes its own verdict.
			w.tracker.ClearOverride(r.Component)
			transitions = append(transitions, Transition{Rule: r.Name, Component: r.Component})
		}
	}
	if onEvent != nil {
		for _, tr := range transitions {
			onEvent(tr)
		}
	}
}

// Ticks returns how many evaluations have run (background or explicit).
func (w *Watchdog) Ticks() int64 {
	if w == nil {
		return 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.ticks
}

// Running reports whether the background loop is active.
func (w *Watchdog) Running() bool {
	if w == nil {
		return false
	}
	w.runMu.Lock()
	defer w.runMu.Unlock()
	return w.running
}

// Start launches the background evaluation loop. Idempotent.
func (w *Watchdog) Start() {
	if w == nil {
		return
	}
	w.runMu.Lock()
	defer w.runMu.Unlock()
	if w.running {
		return
	}
	w.running = true
	w.stop = make(chan struct{})
	w.done = make(chan struct{})
	go func(stop, done chan struct{}) {
		defer close(done)
		ticker := time.NewTicker(w.interval)
		defer ticker.Stop()
		for {
			select {
			case <-stop:
				return
			case <-ticker.C:
				w.Tick()
			}
		}
	}(w.stop, w.done)
}

// Stop halts the background loop and waits for it to exit. Idempotent; safe
// when never started.
func (w *Watchdog) Stop() {
	if w == nil {
		return
	}
	w.runMu.Lock()
	if !w.running {
		w.runMu.Unlock()
		return
	}
	w.running = false
	stop, done := w.stop, w.done
	w.runMu.Unlock()
	close(stop)
	<-done
}
