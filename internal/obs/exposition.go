package obs

import (
	"fmt"
	"strconv"
	"strings"
)

// ValidateExposition is a strict checker for the Prometheus text exposition
// format (version 0.0.4) as produced by Registry.Text. It enforces more than
// a scraper would tolerate so the /metrics endpoint cannot drift invalid:
//
//   - every line is a well-formed comment (# HELP / # TYPE) or sample
//   - metric and label names match the Prometheus grammar
//   - each family has exactly one # HELP and one # TYPE line, HELP first,
//     both before any of the family's samples
//   - # TYPE declares a known type (counter, gauge, histogram, summary,
//     untyped)
//   - every sample belongs to a declared family (base name, or _sum/_count/
//     _bucket for summary/histogram families)
//   - label values are properly quoted and escaped; summary quantile and
//     histogram le labels parse as floats
//   - sample values parse as Go floats (NaN/+Inf/-Inf allowed)
//   - no duplicate series (same sample name + identical label set)
//
// It returns nil when the text conforms, or an error naming the first
// offending line.
func ValidateExposition(text string) error {
	families := make(map[string]*expoFamily)
	seenSeries := make(map[string]bool)

	lines := strings.Split(text, "\n")
	for i, line := range lines {
		lineNo := i + 1
		if line == "" {
			// Only the trailing newline may produce an empty slot.
			if i != len(lines)-1 {
				return fmt.Errorf("line %d: empty line inside exposition", lineNo)
			}
			continue
		}
		if strings.HasPrefix(line, "#") {
			fields := strings.SplitN(line, " ", 4)
			if len(fields) < 3 || fields[0] != "#" {
				return fmt.Errorf("line %d: malformed comment %q", lineNo, line)
			}
			keyword, name := fields[1], fields[2]
			switch keyword {
			case "HELP":
				if !validMetricName(name) {
					return fmt.Errorf("line %d: invalid metric name %q in HELP", lineNo, name)
				}
				f := families[name]
				if f == nil {
					f = &expoFamily{}
					families[name] = f
				}
				if f.hasHelp {
					return fmt.Errorf("line %d: duplicate HELP for %q", lineNo, name)
				}
				if f.typ != "" || f.samples > 0 {
					return fmt.Errorf("line %d: HELP for %q must precede its TYPE and samples", lineNo, name)
				}
				f.hasHelp = true
				if len(fields) >= 4 {
					if err := checkHelpEscaping(fields[3]); err != nil {
						return fmt.Errorf("line %d: %v", lineNo, err)
					}
				}
			case "TYPE":
				if !validMetricName(name) {
					return fmt.Errorf("line %d: invalid metric name %q in TYPE", lineNo, name)
				}
				if len(fields) != 4 {
					return fmt.Errorf("line %d: TYPE line needs exactly a name and a type", lineNo)
				}
				switch fields[3] {
				case "counter", "gauge", "histogram", "summary", "untyped":
				default:
					return fmt.Errorf("line %d: unknown metric type %q", lineNo, fields[3])
				}
				f := families[name]
				if f == nil {
					f = &expoFamily{}
					families[name] = f
				}
				if f.typ != "" {
					return fmt.Errorf("line %d: duplicate TYPE for %q", lineNo, name)
				}
				if f.samples > 0 {
					return fmt.Errorf("line %d: TYPE for %q after its samples", lineNo, name)
				}
				if !f.hasHelp {
					return fmt.Errorf("line %d: TYPE for %q without a preceding HELP", lineNo, name)
				}
				f.typ = fields[3]
			default:
				return fmt.Errorf("line %d: unknown comment keyword %q", lineNo, keyword)
			}
			continue
		}

		name, labels, value, err := parseSample(line)
		if err != nil {
			return fmt.Errorf("line %d: %v", lineNo, err)
		}
		if _, err := strconv.ParseFloat(value, 64); err != nil {
			return fmt.Errorf("line %d: sample value %q is not a float", lineNo, value)
		}
		f, _ := familyOf(name, labels, families)
		if f == nil {
			return fmt.Errorf("line %d: sample %q belongs to no declared family", lineNo, name)
		}
		if f.typ == "" {
			return fmt.Errorf("line %d: sample %q before its family's TYPE line", lineNo, name)
		}
		f.samples++
		// Quantile / le label values must be floats.
		for _, lbl := range labels {
			if lbl.name == "quantile" || lbl.name == "le" {
				if lbl.value != "+Inf" {
					if _, err := strconv.ParseFloat(lbl.value, 64); err != nil {
						return fmt.Errorf("line %d: %s=%q is not a float", lineNo, lbl.name, lbl.value)
					}
				}
			}
		}
		series := name + "\x00" + canonicalLabels(labels)
		if seenSeries[series] {
			return fmt.Errorf("line %d: duplicate series %q", lineNo, strings.TrimSpace(line))
		}
		seenSeries[series] = true
	}

	for name, f := range families {
		if f.typ == "" {
			return fmt.Errorf("family %q has HELP but no TYPE", name)
		}
		if f.samples == 0 {
			return fmt.Errorf("family %q declared but has no samples", name)
		}
	}
	return nil
}

type expoFamily struct {
	typ     string
	hasHelp bool
	samples int
}

type label struct {
	name  string
	value string
}

// parseSample splits `name{l="v",...} value` (labels optional) into parts.
func parseSample(line string) (string, []label, string, error) {
	rest := line
	end := strings.IndexAny(rest, "{ ")
	if end <= 0 {
		return "", nil, "", fmt.Errorf("malformed sample %q", line)
	}
	name := rest[:end]
	if !validMetricName(name) {
		return "", nil, "", fmt.Errorf("invalid sample metric name %q", name)
	}
	rest = rest[end:]
	var labels []label
	if rest[0] == '{' {
		close := -1
		inQuote := false
		for i := 1; i < len(rest); i++ {
			switch {
			case inQuote && rest[i] == '\\':
				i++ // skip escaped char
			case rest[i] == '"':
				inQuote = !inQuote
			case !inQuote && rest[i] == '}':
				close = i
			}
			if close >= 0 {
				break
			}
		}
		if close < 0 {
			return "", nil, "", fmt.Errorf("unterminated label set in %q", line)
		}
		var err error
		labels, err = parseLabels(rest[1:close])
		if err != nil {
			return "", nil, "", err
		}
		rest = rest[close+1:]
	}
	if len(rest) == 0 || rest[0] != ' ' {
		return "", nil, "", fmt.Errorf("missing space before value in %q", line)
	}
	value := strings.TrimSpace(rest[1:])
	if value == "" || strings.ContainsAny(value, " \t") {
		// A second field would be a timestamp; Registry.Text never emits one,
		// and we keep the checker strict.
		return "", nil, "", fmt.Errorf("expected exactly one value in %q", line)
	}
	return name, labels, value, nil
}

// parseLabels parses the inside of a {...} label set.
func parseLabels(s string) ([]label, error) {
	var out []label
	for len(s) > 0 {
		eq := strings.IndexByte(s, '=')
		if eq <= 0 {
			return nil, fmt.Errorf("malformed label in %q", s)
		}
		lname := s[:eq]
		if !validLabelName(lname) {
			return nil, fmt.Errorf("invalid label name %q", lname)
		}
		s = s[eq+1:]
		if len(s) == 0 || s[0] != '"' {
			return nil, fmt.Errorf("label %q value not quoted", lname)
		}
		var sb strings.Builder
		i := 1
		closed := false
		for i < len(s) {
			c := s[i]
			if c == '\\' {
				if i+1 >= len(s) {
					return nil, fmt.Errorf("dangling escape in label %q", lname)
				}
				switch s[i+1] {
				case '\\', '"':
					sb.WriteByte(s[i+1])
				case 'n':
					sb.WriteByte('\n')
				default:
					return nil, fmt.Errorf("invalid escape \\%c in label %q", s[i+1], lname)
				}
				i += 2
				continue
			}
			if c == '"' {
				closed = true
				i++
				break
			}
			if c == '\n' {
				return nil, fmt.Errorf("raw newline in label %q", lname)
			}
			sb.WriteByte(c)
			i++
		}
		if !closed {
			return nil, fmt.Errorf("unterminated value for label %q", lname)
		}
		out = append(out, label{name: lname, value: sb.String()})
		s = s[i:]
		if len(s) > 0 {
			if s[0] != ',' {
				return nil, fmt.Errorf("expected ',' between labels, got %q", s)
			}
			s = s[1:]
		}
	}
	// Duplicate label names within one series are invalid.
	seen := make(map[string]bool, len(out))
	for _, l := range out {
		if seen[l.name] {
			return nil, fmt.Errorf("duplicate label name %q", l.name)
		}
		seen[l.name] = true
	}
	return out, nil
}

// familyOf resolves which declared family a sample belongs to, honouring the
// _sum/_count suffixes of summaries and histograms and _bucket of histograms.
func familyOf(name string, labels []label, families map[string]*expoFamily) (*expoFamily, string) {
	if f, ok := families[name]; ok {
		// A bare summary/histogram base sample must carry quantile/le.
		switch f.typ {
		case "summary":
			if !hasLabel(labels, "quantile") {
				return nil, ""
			}
		case "histogram":
			return nil, "" // base histogram samples must be *_bucket
		}
		return f, name
	}
	for _, suf := range []string{"_sum", "_count", "_bucket"} {
		base, ok := strings.CutSuffix(name, suf)
		if !ok {
			continue
		}
		f, ok := families[base]
		if !ok {
			continue
		}
		switch f.typ {
		case "summary":
			if suf == "_bucket" {
				return nil, ""
			}
			return f, base
		case "histogram":
			if suf == "_bucket" && !hasLabel(labels, "le") {
				return nil, ""
			}
			return f, base
		}
	}
	return nil, ""
}

func hasLabel(labels []label, name string) bool {
	for _, l := range labels {
		if l.name == name {
			return true
		}
	}
	return false
}

// canonicalLabels renders a label set order-insensitively for duplicate
// detection.
func canonicalLabels(labels []label) string {
	parts := make([]string, len(labels))
	for i, l := range labels {
		parts[i] = l.name + "=" + l.value
	}
	// Insertion sort: label sets are tiny.
	for i := 1; i < len(parts); i++ {
		for j := i; j > 0 && parts[j] < parts[j-1]; j-- {
			parts[j], parts[j-1] = parts[j-1], parts[j]
		}
	}
	return strings.Join(parts, "\x00")
}

// checkHelpEscaping rejects raw control characters and bad escapes in HELP
// docstrings (the format requires \\ and \n escaping).
func checkHelpEscaping(s string) error {
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '\\':
			if i+1 >= len(s) || (s[i+1] != '\\' && s[i+1] != 'n') {
				return fmt.Errorf("invalid escape in HELP text %q", s)
			}
			i++
		case '\n', '\r':
			return fmt.Errorf("raw newline in HELP text %q", s)
		}
	}
	return nil
}

func validMetricName(s string) bool {
	if s == "" {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' || c == ':' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}

func validLabelName(s string) bool {
	if s == "" || strings.HasPrefix(s, "__") {
		return false
	}
	for i := 0; i < len(s); i++ {
		c := s[i]
		ok := c == '_' ||
			(c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
			(i > 0 && c >= '0' && c <= '9')
		if !ok {
			return false
		}
	}
	return true
}
