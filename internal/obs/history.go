package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// QueryRecord is one statement's entry in the query history.
type QueryRecord struct {
	// Seq numbers statements in execution order (1-based, monotonic).
	Seq int64
	// SQL is the statement text as submitted.
	SQL string
	// User is the authorization id that ran it.
	User string
	// Class groups statements for latency accounting: "select", "dml",
	// "ddl", "call", "explain", "other".
	Class string
	// Routed names where the statement ran ("DB2", an accelerator, a group).
	Routed string
	// Start is when execution began; Elapsed its wall time.
	Start   time.Time
	Elapsed time.Duration
	// Rows counts result rows (queries) or affected rows (DML).
	Rows int
	// Err is the failure message ("" on success).
	Err string
	// Trace is the rendered span tree; captured only for slow statements so
	// the ring buffer stays cheap.
	Trace string
}

// Slow reports whether the record crossed the slow-query threshold in force
// when it was recorded (equivalently: whether a trace was captured).
func (r QueryRecord) Slow() bool { return r.Trace != "" }

// History is a fixed-capacity ring buffer of the most recent statements plus
// a separate ring of slow statements (those at or above the configurable
// threshold, with their full trace attached). A zero threshold disables the
// slow log.
type History struct {
	seq  atomic.Int64
	slow atomic.Int64 // threshold, nanoseconds; 0 = disabled

	mu      sync.Mutex
	recent  []QueryRecord
	next    int
	full    bool
	slowLog []QueryRecord
	slowIdx int
	slowFul bool
}

// NewHistory creates a history keeping the last capacity statements and the
// last slowCap slow statements.
func NewHistory(capacity, slowCap int) *History {
	if capacity < 1 {
		capacity = 1
	}
	if slowCap < 1 {
		slowCap = 1
	}
	return &History{
		recent:  make([]QueryRecord, capacity),
		slowLog: make([]QueryRecord, slowCap),
	}
}

// SetSlowThreshold sets the slow-query threshold; zero or negative disables
// the slow log.
func (h *History) SetSlowThreshold(d time.Duration) {
	if h == nil {
		return
	}
	if d < 0 {
		d = 0
	}
	h.slow.Store(int64(d))
}

// SlowThreshold returns the current threshold (0 = disabled).
func (h *History) SlowThreshold() time.Duration {
	if h == nil {
		return 0
	}
	return time.Duration(h.slow.Load())
}

// Record appends one statement. The trace is attached (rendered) only when
// the statement crossed the slow threshold; rec.Trace as passed is the
// already-rendered tree (pass "" when no trace was collected).
func (h *History) Record(rec QueryRecord) QueryRecord {
	if h == nil {
		return rec
	}
	rec.Seq = h.seq.Add(1)
	thresh := time.Duration(h.slow.Load())
	isSlow := thresh > 0 && rec.Elapsed >= thresh
	if !isSlow {
		rec.Trace = ""
	}
	h.mu.Lock()
	h.recent[h.next] = rec
	h.next++
	if h.next == len(h.recent) {
		h.next = 0
		h.full = true
	}
	if isSlow {
		h.slowLog[h.slowIdx] = rec
		h.slowIdx++
		if h.slowIdx == len(h.slowLog) {
			h.slowIdx = 0
			h.slowFul = true
		}
	}
	h.mu.Unlock()
	return rec
}

// Recent returns up to n of the most recent statements, newest first.
// n <= 0 returns everything retained.
func (h *History) Recent(n int) []QueryRecord {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return drain(h.recent, h.next, h.full, n)
}

// SlowQueries returns up to n of the most recent slow statements, newest
// first, each with its trace attached.
func (h *History) SlowQueries(n int) []QueryRecord {
	if h == nil {
		return nil
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	return drain(h.slowLog, h.slowIdx, h.slowFul, n)
}

// drain reads a ring (next = index of the oldest slot once full) newest
// first. Caller holds the lock.
func drain(ring []QueryRecord, next int, full bool, n int) []QueryRecord {
	size := next
	if full {
		size = len(ring)
	}
	if n <= 0 || n > size {
		n = size
	}
	out := make([]QueryRecord, 0, n)
	for i := 0; i < n; i++ {
		idx := next - 1 - i
		for idx < 0 {
			idx += len(ring)
		}
		out = append(out, ring[idx])
	}
	return out
}
