package obs

import "testing"

func TestAggregateFleet(t *testing.T) {
	f := AggregateFleet(nil)
	if f.TotalBytes != 0 || f.SkewPct != 0 {
		t.Fatalf("empty fleet = %+v", f)
	}

	a := StoreResources{Member: "A"}
	a.AddTable(TableResources{Table: "T", Rows: 100, Bytes: 3000, Blocks: 1, ZoneMapEntries: 2})
	b := StoreResources{Member: "B"}
	b.AddTable(TableResources{Table: "T", Rows: 50, Bytes: 1000, Blocks: 1, ZoneMapEntries: 2})
	if a.Tables != 1 || a.Bytes != 3000 || a.Rows != 100 {
		t.Fatalf("AddTable aggregate = %+v", a)
	}

	f = AggregateFleet([]StoreResources{a, b})
	if f.TotalBytes != 4000 || f.TotalRows != 150 {
		t.Fatalf("totals = %+v", f)
	}
	if f.MaxMemberBytes != 3000 || f.MinMemberBytes != 1000 {
		t.Fatalf("bounds = %+v", f)
	}
	// Mean is 2000; the largest member is 50% above it.
	if f.SkewPct < 49.9 || f.SkewPct > 50.1 {
		t.Fatalf("SkewPct = %v, want 50", f.SkewPct)
	}

	// Balanced fleet has zero skew.
	f = AggregateFleet([]StoreResources{a, a})
	if f.SkewPct != 0 {
		t.Fatalf("balanced SkewPct = %v", f.SkewPct)
	}
}
