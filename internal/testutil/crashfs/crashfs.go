// Package crashfs is an in-memory vfs.FS that models what a real filesystem
// guarantees across a crash — and injects failures to prove the durability
// layer honours exactly those guarantees.
//
// Every file tracks two byte ranges: what has been written, and what has been
// fsynced. Directory entries (creates, renames, removals) likewise stay
// volatile until the directory is synced. Crash() discards everything
// volatile, leaving only the durable image — the state a machine would find
// on disk after power loss.
//
// An injection point arms the filesystem to fail at the Nth mutating
// operation (write, sync, rename, ...). Depending on the mode the operation
// fails cleanly, applies a short prefix of the write, or tears the write into
// the volatile image; in every case the filesystem then enters the crashed
// state where all further operations fail with ErrCrashed, exactly as if the
// process had been killed. Tests then call Crash() and reopen the store on
// the surviving image.
package crashfs

import (
	"errors"
	"fmt"
	"path"
	"sort"
	"strings"
	"sync"

	"idaax/internal/vfs"
)

// ErrCrashed is returned by every operation after the injection point fires.
var ErrCrashed = errors.New("crashfs: filesystem crashed")

// ErrInjected is returned by the operation the injection point fails.
var ErrInjected = errors.New("crashfs: injected fault")

// Mode selects what the armed operation does before the crash.
type Mode int

const (
	// Fail makes the Nth operation fail with no effect, then crash.
	Fail Mode = iota
	// ShortWrite applies roughly half of the Nth write durably-invisibly
	// (volatile), returns an error, then crashes. Non-write operations armed
	// with ShortWrite behave like Fail.
	ShortWrite
	// TornWrite applies a prefix of the Nth write to the volatile image and
	// crashes without returning control to the writer's error handling —
	// i.e. the write reports success but only part of it survives unsynced.
	// The crash state is entered on the NEXT operation, modelling a kill
	// between syscalls.
	TornWrite
)

func (m Mode) String() string {
	switch m {
	case Fail:
		return "fail"
	case ShortWrite:
		return "short"
	case TornWrite:
		return "torn"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

type memFile struct {
	written []byte // full volatile content
	synced  int    // prefix length guaranteed to survive a crash
}

type dirEntry struct {
	durable bool // survives a crash only if the parent dir was synced
}

// FS is the crash-injecting filesystem. The zero value is not usable; call
// New.
type FS struct {
	mu      sync.Mutex
	files   map[string]*memFile
	entries map[string]*dirEntry // file name -> entry state
	removed map[string]*memFile  // durable content of files removed but not dir-synced

	ops     int64 // mutating operations performed
	armAt   int64 // fail when ops reaches this (0 = disarmed)
	armMode Mode
	crashed bool
	fired   bool
}

// New returns an empty, disarmed crash filesystem.
func New() *FS {
	return &FS{
		files:   make(map[string]*memFile),
		entries: make(map[string]*dirEntry),
		removed: make(map[string]*memFile),
	}
}

// Arm schedules a fault at the nth (1-based) mutating operation from now,
// with the given mode. Arming resets the operation counter.
func (f *FS) Arm(n int64, mode Mode) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.ops = 0
	f.armAt = n
	f.armMode = mode
	f.fired = false
}

// Disarm clears any pending fault without clearing crash state.
func (f *FS) Disarm() {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.armAt = 0
}

// Fired reports whether the armed fault has triggered.
func (f *FS) Fired() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.fired
}

// Ops returns how many mutating operations have run since the last Arm.
func (f *FS) Ops() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.ops
}

// step advances the operation counter and reports what the current operation
// should do: proceed normally, fail (Fail/ShortWrite), or tear (TornWrite).
// It must be called with f.mu held.
func (f *FS) step() (mode Mode, inject bool, err error) {
	if f.crashed {
		return 0, false, ErrCrashed
	}
	f.ops++
	if f.armAt > 0 && f.ops == f.armAt && !f.fired {
		f.fired = true
		if f.armMode == TornWrite {
			// Tear now, crash on the next op.
			f.armAt = -1 // sentinel: crash next op
			return TornWrite, true, nil
		}
		f.crashed = true
		return f.armMode, true, nil
	}
	if f.armAt == -1 {
		f.crashed = true
		return 0, false, ErrCrashed
	}
	return 0, false, nil
}

// Crash discards all volatile state, leaving the durable image, and clears
// the crashed flag so the filesystem can be reopened.
func (f *FS) Crash() {
	f.mu.Lock()
	defer f.mu.Unlock()
	// Files whose directory entry never became durable vanish entirely.
	for name, e := range f.entries {
		if !e.durable {
			delete(f.files, name)
			delete(f.entries, name)
		}
	}
	// Removals that were not dir-synced come back with their durable bytes.
	for name, old := range f.removed {
		f.files[name] = old
		f.entries[name] = &dirEntry{durable: true}
	}
	f.removed = make(map[string]*memFile)
	// Surviving files keep only their synced prefix.
	for _, mf := range f.files {
		mf.written = mf.written[:mf.synced]
	}
	f.crashed = false
	f.armAt = 0
}

// DurableBytes returns the total bytes that would survive a crash right now.
func (f *FS) DurableBytes() int64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	var n int64
	for name, mf := range f.files {
		if f.entries[name] != nil && f.entries[name].durable {
			n += int64(mf.synced)
		}
	}
	return n
}

// --- vfs.FS implementation ---

type fileHandle struct {
	fs   *FS
	name string
}

func (f *FS) Create(name string) (vfs.File, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, inject, err := f.step(); err != nil {
		return nil, err
	} else if inject {
		return nil, fmt.Errorf("create %s: %w", name, ErrInjected)
	}
	name = path.Clean(name)
	prev := f.files[name]
	if e := f.entries[name]; e != nil && e.durable && prev != nil {
		// Truncating a durable file: until the new content is synced, a
		// crash may surface the old durable bytes.
		if _, pending := f.removed[name]; !pending {
			f.removed[name] = &memFile{written: append([]byte(nil), prev.written[:prev.synced]...), synced: prev.synced}
		}
	}
	f.files[name] = &memFile{}
	f.entries[name] = &dirEntry{}
	return &fileHandle{fs: f, name: name}, nil
}

func (h *fileHandle) Write(p []byte) (int, error) {
	f := h.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	mode, inject, err := f.step()
	if err != nil {
		return 0, err
	}
	mf := f.files[h.name]
	if mf == nil {
		return 0, fmt.Errorf("crashfs: write to removed file %s", h.name)
	}
	if inject {
		switch mode {
		case ShortWrite:
			n := len(p) / 2
			mf.written = append(mf.written, p[:n]...)
			return n, fmt.Errorf("write %s: %w", h.name, ErrInjected)
		case TornWrite:
			n := len(p) / 2
			if n == 0 && len(p) > 0 {
				n = len(p)
			}
			mf.written = append(mf.written, p[:n]...)
			// Report success; the crash happens before the rest lands.
			return len(p), nil
		default:
			return 0, fmt.Errorf("write %s: %w", h.name, ErrInjected)
		}
	}
	mf.written = append(mf.written, p...)
	return len(p), nil
}

func (h *fileHandle) Sync() error {
	f := h.fs
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, inject, err := f.step(); err != nil {
		return err
	} else if inject {
		return fmt.Errorf("sync %s: %w", h.name, ErrInjected)
	}
	mf := f.files[h.name]
	if mf == nil {
		return fmt.Errorf("crashfs: sync of removed file %s", h.name)
	}
	mf.synced = len(mf.written)
	return nil
}

func (h *fileHandle) Close() error { return nil }

func (f *FS) ReadFile(name string) ([]byte, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	mf := f.files[path.Clean(name)]
	if mf == nil {
		return nil, fmt.Errorf("crashfs: %s: file does not exist", name)
	}
	out := make([]byte, len(mf.written))
	copy(out, mf.written)
	return out, nil
}

func (f *FS) MkdirAll(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return ErrCrashed
	}
	return nil
}

func (f *FS) ReadDir(dir string) ([]string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return nil, ErrCrashed
	}
	dir = path.Clean(dir)
	seen := make(map[string]bool)
	var names []string
	for name := range f.files {
		if path.Dir(name) == dir {
			base := path.Base(name)
			if !seen[base] {
				seen[base] = true
				names = append(names, base)
			}
		} else if strings.HasPrefix(name, dir+"/") {
			rest := strings.TrimPrefix(name, dir+"/")
			if i := strings.IndexByte(rest, '/'); i >= 0 {
				sub := rest[:i]
				if !seen[sub] {
					seen[sub] = true
					names = append(names, sub)
				}
			}
		}
	}
	sort.Strings(names)
	return names, nil
}

func (f *FS) Rename(oldname, newname string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, inject, err := f.step(); err != nil {
		return err
	} else if inject {
		return fmt.Errorf("rename %s: %w", oldname, ErrInjected)
	}
	oldname, newname = path.Clean(oldname), path.Clean(newname)
	mf := f.files[oldname]
	if mf == nil {
		return fmt.Errorf("crashfs: rename %s: file does not exist", oldname)
	}
	// If the destination existed durably, its durable content must survive a
	// crash until the rename's directory update is synced.
	if e := f.entries[newname]; e != nil && e.durable {
		if prev := f.files[newname]; prev != nil {
			if _, pending := f.removed[newname]; !pending {
				f.removed[newname] = &memFile{written: append([]byte(nil), prev.written[:prev.synced]...), synced: prev.synced}
			}
		}
	}
	delete(f.files, oldname)
	oldEntry := f.entries[oldname]
	delete(f.entries, oldname)
	if oldEntry != nil && oldEntry.durable {
		// The disappearance of the old name is volatile until dir sync.
		f.removed[oldname] = &memFile{written: append([]byte(nil), mf.written[:mf.synced]...), synced: mf.synced}
	}
	f.files[newname] = mf
	f.entries[newname] = &dirEntry{}
	return nil
}

func (f *FS) Remove(name string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, inject, err := f.step(); err != nil {
		return err
	} else if inject {
		return fmt.Errorf("remove %s: %w", name, ErrInjected)
	}
	name = path.Clean(name)
	mf := f.files[name]
	if mf == nil {
		return nil
	}
	if e := f.entries[name]; e != nil && e.durable {
		if _, pending := f.removed[name]; !pending {
			f.removed[name] = &memFile{written: append([]byte(nil), mf.written[:mf.synced]...), synced: mf.synced}
		}
	}
	delete(f.files, name)
	delete(f.entries, name)
	return nil
}

func (f *FS) RemoveAll(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, inject, err := f.step(); err != nil {
		return err
	} else if inject {
		return fmt.Errorf("removeall %s: %w", dir, ErrInjected)
	}
	dir = path.Clean(dir)
	for name, mf := range f.files {
		if name == dir || strings.HasPrefix(name, dir+"/") {
			if e := f.entries[name]; e != nil && e.durable {
				if _, pending := f.removed[name]; !pending {
					f.removed[name] = &memFile{written: append([]byte(nil), mf.written[:mf.synced]...), synced: mf.synced}
				}
			}
			delete(f.files, name)
			delete(f.entries, name)
		}
	}
	return nil
}

func (f *FS) SyncDir(dir string) error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if _, inject, err := f.step(); err != nil {
		return err
	} else if inject {
		return fmt.Errorf("syncdir %s: %w", dir, ErrInjected)
	}
	dir = path.Clean(dir)
	inDir := func(name string) bool {
		return dir == "." || path.Dir(name) == dir || strings.HasPrefix(name, dir+"/")
	}
	for name, e := range f.entries {
		if inDir(name) {
			e.durable = true
			// A durable entry supersedes any pending removal/overwrite of
			// the same name.
			delete(f.removed, name)
		}
	}
	for name := range f.removed {
		if inDir(name) {
			// The removal/rename-away is now durable.
			delete(f.removed, name)
		}
	}
	return nil
}

var _ vfs.FS = (*FS)(nil)
