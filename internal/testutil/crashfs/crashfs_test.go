package crashfs

import (
	"errors"
	"testing"
)

func write(t *testing.T, f *FS, name, content string) {
	t.Helper()
	h, err := f.Create(name)
	if err != nil {
		t.Fatalf("create %s: %v", name, err)
	}
	if _, err := h.Write([]byte(content)); err != nil {
		t.Fatalf("write %s: %v", name, err)
	}
	if err := h.Close(); err != nil {
		t.Fatalf("close %s: %v", name, err)
	}
}

func writeSynced(t *testing.T, f *FS, name, content string) {
	t.Helper()
	h, err := f.Create(name)
	if err != nil {
		t.Fatalf("create %s: %v", name, err)
	}
	if _, err := h.Write([]byte(content)); err != nil {
		t.Fatalf("write %s: %v", name, err)
	}
	if err := h.Sync(); err != nil {
		t.Fatalf("sync %s: %v", name, err)
	}
	h.Close()
	if err := f.SyncDir("."); err != nil {
		t.Fatalf("syncdir: %v", err)
	}
}

func TestUnsyncedWritesLostOnCrash(t *testing.T) {
	f := New()
	writeSynced(t, f, "a/durable", "kept")
	write(t, f, "a/volatile", "lost")
	f.Crash()
	if data, err := f.ReadFile("a/durable"); err != nil || string(data) != "kept" {
		t.Fatalf("durable file = %q, %v", data, err)
	}
	if _, err := f.ReadFile("a/volatile"); err == nil {
		t.Fatal("unsynced file survived crash")
	}
}

func TestSyncedContentTruncatedToSyncedPrefix(t *testing.T) {
	f := New()
	h, _ := f.Create("x")
	h.Write([]byte("12345"))
	h.Sync()
	h.Write([]byte("6789"))
	h.Close()
	f.SyncDir(".")
	f.Crash()
	data, err := f.ReadFile("x")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "12345" {
		t.Fatalf("after crash content = %q, want synced prefix %q", data, "12345")
	}
}

func TestOverwriteResurrectsOldContentOnCrash(t *testing.T) {
	f := New()
	writeSynced(t, f, "cfg", "old")
	// Overwrite but never sync the new content or the directory.
	write(t, f, "cfg", "new")
	f.Crash()
	data, err := f.ReadFile("cfg")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "old" {
		t.Fatalf("after crash content = %q, want pre-overwrite %q", data, "old")
	}
}

func TestRenameWithoutDirSyncRollsBack(t *testing.T) {
	f := New()
	writeSynced(t, f, "target", "v1")
	h, _ := f.Create("target.tmp")
	h.Write([]byte("v2"))
	h.Sync()
	h.Close()
	if err := f.Rename("target.tmp", "target"); err != nil {
		t.Fatal(err)
	}
	f.Crash() // no SyncDir between rename and crash
	data, err := f.ReadFile("target")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "v1" {
		t.Fatalf("unsynced rename survived crash: %q", data)
	}
}

func TestRenameWithDirSyncIsDurable(t *testing.T) {
	f := New()
	writeSynced(t, f, "target", "v1")
	h, _ := f.Create("target.tmp")
	h.Write([]byte("v2"))
	h.Sync()
	h.Close()
	if err := f.Rename("target.tmp", "target"); err != nil {
		t.Fatal(err)
	}
	if err := f.SyncDir("."); err != nil {
		t.Fatal(err)
	}
	f.Crash()
	data, err := f.ReadFile("target")
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "v2" {
		t.Fatalf("synced rename lost: %q", data)
	}
	if _, err := f.ReadFile("target.tmp"); err == nil {
		t.Fatal("rename source still present")
	}
}

func TestRemoveResurrectedWithoutDirSync(t *testing.T) {
	f := New()
	writeSynced(t, f, "victim", "body")
	if err := f.Remove("victim"); err != nil {
		t.Fatal(err)
	}
	f.Crash()
	if data, err := f.ReadFile("victim"); err != nil || string(data) != "body" {
		t.Fatalf("removed-but-unsynced file gone for good: %q, %v", data, err)
	}
}

func TestFailInjection(t *testing.T) {
	f := New()
	writeSynced(t, f, "pre", "x")
	f.Arm(2, Fail)
	h, err := f.Create("a") // op 1
	if err != nil {
		t.Fatal(err)
	}
	if _, err := h.Write([]byte("y")); err == nil { // op 2: injected
		t.Fatal("write at injection point succeeded")
	}
	if !f.Fired() {
		t.Fatal("injection did not fire")
	}
	if _, err := f.Create("b"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("op after crash = %v, want ErrCrashed", err)
	}
	f.Crash()
	f.Disarm()
	if _, err := f.ReadFile("pre"); err != nil {
		t.Fatalf("durable file must survive restart: %v", err)
	}
}

func TestShortWriteInjection(t *testing.T) {
	f := New()
	f.Arm(2, ShortWrite)
	h, _ := f.Create("x") // op 1
	if _, err := h.Write([]byte("abcdef")); err == nil {
		t.Fatal("short write reported success")
	}
	f.Crash()
	f.Disarm()
	data, _ := f.ReadFile("x")
	if len(data) >= 6 {
		t.Fatalf("short write persisted %d bytes, want < 6", len(data))
	}
}

func TestTornWriteReportsSuccessThenCrashes(t *testing.T) {
	f := New()
	f.Arm(2, TornWrite)
	h, _ := f.Create("x")                                // op 1
	if _, err := h.Write([]byte("abcdef")); err != nil { // op 2: torn, lies
		t.Fatalf("torn write should report success, got %v", err)
	}
	if err := h.Sync(); !errors.Is(err, ErrCrashed) {
		t.Fatalf("op after torn write = %v, want ErrCrashed", err)
	}
	f.Crash()
	f.Disarm()
	data, _ := f.ReadFile("x")
	if len(data) >= 6 {
		t.Fatalf("torn write persisted all %d bytes", len(data))
	}
}

func TestReadDirSorted(t *testing.T) {
	f := New()
	writeSynced(t, f, "d/b", "1")
	writeSynced(t, f, "d/a", "2")
	writeSynced(t, f, "d/sub/c", "3")
	names, err := f.ReadDir("d")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 3 || names[0] != "a" || names[1] != "b" || names[2] != "sub" {
		t.Fatalf("ReadDir = %v", names)
	}
}

func TestRemoveAll(t *testing.T) {
	f := New()
	writeSynced(t, f, "d/x/a", "1")
	writeSynced(t, f, "d/x/b", "2")
	writeSynced(t, f, "d/keep", "3")
	if err := f.RemoveAll("d/x"); err != nil {
		t.Fatal(err)
	}
	if err := f.SyncDir("d"); err != nil {
		t.Fatal(err)
	}
	f.Crash()
	if _, err := f.ReadFile("d/x/a"); err == nil {
		t.Fatal("RemoveAll + SyncDir did not stick")
	}
	if _, err := f.ReadFile("d/keep"); err != nil {
		t.Fatalf("sibling removed: %v", err)
	}
}
