module idaax

go 1.23
