module idaax

go 1.24
