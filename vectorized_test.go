package idaax_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"idaax"
)

// seedVectorTable creates an accelerator-only table with NULLs in several
// columns so the differential queries exercise NULL semantics end to end.
func seedVectorTable(t *testing.T, sys *idaax.System, accelerator, distribute string, rows int) {
	t.Helper()
	s := sys.AdminSession()
	ddl := fmt.Sprintf(
		"CREATE TABLE vdiff (id BIGINT NOT NULL, grp BIGINT, cat VARCHAR(8), v DOUBLE, flag BOOLEAN) IN ACCELERATOR %s%s",
		accelerator, distribute)
	if _, err := s.Exec(ddl); err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	sb.WriteString("INSERT INTO vdiff VALUES ")
	for i := 0; i < rows; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		grp := fmt.Sprintf("%d", i%7)
		cat := fmt.Sprintf("'c%d'", i%5)
		v := fmt.Sprintf("%g", float64((i*13)%400)/4-20)
		flag := "TRUE"
		if i%3 == 0 {
			flag = "FALSE"
		}
		switch i % 17 {
		case 2:
			grp = "NULL"
		case 5:
			cat = "NULL"
		case 9:
			v = "NULL"
		case 12:
			flag = "NULL"
		}
		fmt.Fprintf(&sb, "(%d, %s, %s, %s, %s)", i, grp, cat, v, flag)
	}
	if _, err := s.Exec(sb.String()); err != nil {
		t.Fatal(err)
	}
}

// sortedFingerprint renders a result order-insensitively (the differential
// corpus mixes ordered and unordered statements; ordered ones are compared
// with resultFingerprint too, which keeps row order).
func sortedFingerprint(res *idaax.Result) string {
	lines := make([]string, len(res.Rows))
	for i, row := range res.Rows {
		lines[i] = strings.Join(row, "|")
	}
	sort.Strings(lines)
	return strings.Join(res.Columns, ",") + "\n" + strings.Join(lines, "\n")
}

// vectorizedDifferentialQueries is the end-to-end SQL corpus: vector filters,
// residual fallbacks, vectorized aggregation, row-path fallbacks, NULLs,
// empty results, DISTINCT/ORDER BY/LIMIT above the batch scan.
var vectorizedDifferentialQueries = []struct {
	sql     string
	ordered bool
}{
	{"SELECT * FROM vdiff", false},
	{"SELECT id, v FROM vdiff WHERE v > 30 AND id < 900", false},
	{"SELECT id FROM vdiff WHERE cat = 'c2'", false},
	{"SELECT id FROM vdiff WHERE cat <> 'c0' AND v <= 10", false},
	{"SELECT id FROM vdiff WHERE id BETWEEN 100 AND 180", false},
	{"SELECT id FROM vdiff WHERE v IS NULL", false},
	{"SELECT id, cat FROM vdiff WHERE cat IS NOT NULL AND flag = TRUE", false},
	{"SELECT id FROM vdiff WHERE grp IN (1, 3) AND v > 0", false},
	{"SELECT id FROM vdiff WHERE cat LIKE 'c%' AND id >= 10 AND id < 400", false},
	{"SELECT id FROM vdiff WHERE id = 123456", false},
	// Kind-incomparable comparisons: the scan predicate drops every row on
	// both engines (types.Compare rejects the combination), before the WHERE
	// re-evaluation could raise an error.
	{"SELECT id FROM vdiff WHERE flag = 1", false},
	{"SELECT id FROM vdiff WHERE v = TRUE", false},
	{"SELECT id FROM vdiff WHERE cat BETWEEN 1 AND 5", false},
	{"SELECT id FROM vdiff WHERE id < '200'", false},
	{"SELECT DISTINCT cat FROM vdiff WHERE v > 0", false},
	{"SELECT id, v FROM vdiff WHERE v > 40 ORDER BY v DESC, id LIMIT 11", true},
	{"SELECT COUNT(*) FROM vdiff", true},
	{"SELECT COUNT(*), COUNT(v), SUM(v), AVG(v), MIN(v), MAX(v) FROM vdiff", true},
	{"SELECT COUNT(*), SUM(v) FROM vdiff WHERE id > 500000", true},
	{"SELECT grp, COUNT(*), SUM(v), AVG(v), MIN(v), MAX(v) FROM vdiff GROUP BY grp", false},
	{"SELECT grp, cat, COUNT(*) FROM vdiff GROUP BY grp, cat", false},
	{"SELECT flag, COUNT(*), MIN(cat), MAX(cat) FROM vdiff GROUP BY flag", false},
	{"SELECT grp, STDDEV(v) FROM vdiff WHERE v IS NOT NULL GROUP BY grp", false},
	{"SELECT grp, COUNT(*) AS n FROM vdiff GROUP BY grp HAVING COUNT(*) > 50 ORDER BY grp", true},
	{"SELECT grp, COUNT(DISTINCT cat) FROM vdiff GROUP BY grp ORDER BY grp", true},
	{"SELECT grp, SUM(v) FROM vdiff WHERE cat <> 'c3' GROUP BY grp ORDER BY grp", true},
	{"SELECT v2.cat, COUNT(*) FROM (SELECT cat FROM vdiff WHERE v > 0) v2 GROUP BY v2.cat", false},
}

// TestVectorizedDifferentialSQL is the end-to-end acceptance test on a single
// accelerator: every statement returns identical results with the vectorized
// engine on and off, and the engine actually executes (VectorizedQueries
// advances only while it is on).
func TestVectorizedDifferentialSQL(t *testing.T) {
	sys := newTestSystem(t)
	defer sys.Close()
	seedVectorTable(t, sys, "IDAA1", "", 1000)
	s := sys.AdminSession()

	results := map[bool][]string{}
	for _, vectorized := range []bool{true, false} {
		sys.SetVectorizedExecution(vectorized)
		before, err := sys.AcceleratorStats("")
		if err != nil {
			t.Fatal(err)
		}
		for _, q := range vectorizedDifferentialQueries {
			res, err := s.Query(q.sql)
			if err != nil {
				t.Fatalf("%s (vectorized=%v): %v", q.sql, vectorized, err)
			}
			fp := sortedFingerprint(res)
			if q.ordered {
				fp = resultFingerprint(res)
			}
			results[vectorized] = append(results[vectorized], fp)
		}
		after, err := sys.AcceleratorStats("")
		if err != nil {
			t.Fatal(err)
		}
		ran := after.VectorizedQueries - before.VectorizedQueries
		if vectorized && ran == 0 {
			t.Fatal("vectorized engine enabled but no statement ran vectorized")
		}
		if !vectorized && ran != 0 {
			t.Fatalf("vectorized engine disabled but %d statements ran vectorized", ran)
		}
	}
	for i, q := range vectorizedDifferentialQueries {
		if results[true][i] != results[false][i] {
			t.Errorf("%s: engines disagree\nvectorized:\n%s\nrow:\n%s",
				q.sql, results[true][i], results[false][i])
		}
	}
}

// TestVectorizedExplain pins the EXPLAIN surface: the plan reports the
// vectorized execution mode, and flipping the A/B switch flips the line.
func TestVectorizedExplain(t *testing.T) {
	sys := newTestSystem(t)
	defer sys.Close()
	seedVectorTable(t, sys, "IDAA1", "", 100)
	s := sys.AdminSession()

	planText := func(sql string) string {
		res, err := s.Query("EXPLAIN " + sql)
		if err != nil {
			t.Fatalf("EXPLAIN %s: %v", sql, err)
		}
		var sb strings.Builder
		for _, row := range res.Rows {
			sb.WriteString(row[3] + "\n")
		}
		return sb.String()
	}

	cases := map[string]string{
		"SELECT grp, COUNT(*), SUM(v) FROM vdiff WHERE v > 0 GROUP BY grp": "execution: vectorized (scan+filter+aggregate)",
		"SELECT id FROM vdiff WHERE v > 0 AND cat LIKE 'c%'":               "execution: vectorized (scan+filter)",
		"SELECT grp, COUNT(*) FROM vdiff GROUP BY grp ORDER BY grp":        "execution: vectorized (scan)",
		"SELECT a.id FROM vdiff a, vdiff b WHERE a.id = b.id":              "execution: vectorized (hash-join)",
	}
	for sql, want := range cases {
		if out := planText(sql); !strings.Contains(out, want) {
			t.Errorf("EXPLAIN %s: missing %q in:\n%s", sql, want, out)
		}
	}

	sys.SetVectorizedExecution(false)
	out := planText("SELECT grp, COUNT(*) FROM vdiff GROUP BY grp")
	if !strings.Contains(out, "execution: row-at-a-time") {
		t.Errorf("EXPLAIN with engine off: missing row-at-a-time line in:\n%s", out)
	}
}

// TestVectorizedShardedDifferential runs the corpus against a 3-shard fleet:
// scatter-gather, two-phase partial aggregation and pruned routing must all
// return identical results with the members' vectorized engines on and off.
func TestVectorizedShardedDifferential(t *testing.T) {
	sys := newShardedSystem(t, 3)
	defer sys.Close()
	seedVectorTable(t, sys, "SHARDS", " DISTRIBUTE BY HASH(id)", 1200)
	s := sys.AdminSession()

	queries := append([]struct {
		sql     string
		ordered bool
	}{
		{"SELECT * FROM vdiff WHERE id = 77", false}, // pruned to one shard
		{"SELECT COUNT(*) FROM vdiff WHERE id IN (5, 600, 1199)", true},
		{"SELECT grp, COUNT(*), SUM(v), AVG(v) FROM vdiff WHERE cat <> 'c1' GROUP BY grp", false}, // two-phase
	}, vectorizedDifferentialQueries...)

	results := map[bool][]string{}
	for _, vectorized := range []bool{true, false} {
		sys.SetVectorizedExecution(vectorized)
		for _, q := range queries {
			res, err := s.Query(q.sql)
			if err != nil {
				t.Fatalf("%s (vectorized=%v): %v", q.sql, vectorized, err)
			}
			fp := sortedFingerprint(res)
			if q.ordered {
				fp = resultFingerprint(res)
			}
			results[vectorized] = append(results[vectorized], fp)
		}
	}
	for i, q := range queries {
		if results[true][i] != results[false][i] {
			t.Errorf("%s: sharded engines disagree\nvectorized:\n%s\nrow:\n%s",
				q.sql, results[true][i], results[false][i])
		}
	}

	stats, err := sys.ShardGroupStats("")
	if err != nil {
		t.Fatal(err)
	}
	if stats.Group.VectorizedQueries == 0 {
		t.Fatal("no shard-side statement ran vectorized during the sharded differential")
	}
}

// TestVectorizedScanDuringRebalance races batch scans against a live
// rebalance: while rows migrate between shards, vectorized aggregates must
// keep seeing every row exactly once.
func TestVectorizedScanDuringRebalance(t *testing.T) {
	const rows = 4000
	sys := newShardedSystem(t, 3)
	defer sys.Close()
	seedElasticTable(t, sys, "SHARDS", rows)
	sys.SetVectorizedExecution(true)
	s := sys.AdminSession()

	wantCount, err := s.Query("SELECT COUNT(*), SUM(id) FROM metrics")
	if err != nil {
		t.Fatal(err)
	}
	want := resultFingerprint(wantCount)

	if err := sys.AddShardMember("", "IDAA4", 2); err != nil {
		t.Fatal(err)
	}
	// Query continuously while the migration runs; every snapshot must agree.
	checks := 0
	for {
		status, err := sys.RebalanceStatus("")
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Query("SELECT COUNT(*), SUM(id) FROM metrics")
		if err != nil {
			t.Fatal(err)
		}
		if got := resultFingerprint(res); got != want {
			t.Fatalf("aggregate drifted during rebalance (check %d):\n%s\nvs\n%s", checks, got, want)
		}
		checks++
		if !status.Active {
			break
		}
	}
	if err := sys.WaitForRebalance(""); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query("SELECT region, COUNT(*), SUM(amount) FROM metrics GROUP BY region ORDER BY region")
	if err != nil {
		t.Fatal(err)
	}
	sys.SetVectorizedExecution(false)
	rowRes, err := s.Query("SELECT region, COUNT(*), SUM(amount) FROM metrics GROUP BY region ORDER BY region")
	if err != nil {
		t.Fatal(err)
	}
	if resultFingerprint(res) != resultFingerprint(rowRes) {
		t.Fatalf("post-rebalance group-by differs between engines:\n%s\nvs\n%s",
			resultFingerprint(res), resultFingerprint(rowRes))
	}
}
