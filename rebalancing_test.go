package idaax_test

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"idaax"
)

// seedElasticTable creates a hash-distributed table on the given accelerator
// (or shard group) and loads n deterministic rows.
func seedElasticTable(t *testing.T, sys *idaax.System, accelerator string, n int) {
	t.Helper()
	s := sys.AdminSession()
	ddl := fmt.Sprintf(
		"CREATE TABLE metrics (id BIGINT NOT NULL, region VARCHAR(8), amount DOUBLE) IN ACCELERATOR %s DISTRIBUTE BY HASH(id)",
		accelerator)
	if _, err := s.Exec(ddl); err != nil {
		t.Fatal(err)
	}
	insertMetricsRange(t, s, 0, n)
}

// insertMetricsRange inserts rows with ids [lo, hi) in one statement.
func insertMetricsRange(t *testing.T, s *idaax.Session, lo, hi int) {
	t.Helper()
	if _, err := s.Exec(metricsInsertSQL(lo, hi)); err != nil {
		t.Fatal(err)
	}
}

func metricsInsertSQL(lo, hi int) string {
	regions := []string{"EU", "US", "APAC"}
	var sb strings.Builder
	sb.WriteString("INSERT INTO metrics VALUES ")
	for i := lo; i < hi; i++ {
		if i > lo {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, '%s', %g)", i, regions[i%3], float64(i%13)*0.25)
	}
	return sb.String()
}

// shardTableRowCounts reads the committed row count of a sharded table on
// every member, in shard order, through the advanced coordinator API.
func shardTableRowCounts(t *testing.T, sys *idaax.System, group, table string) []int {
	t.Helper()
	router, err := sys.Coordinator().ShardGroup(group)
	if err != nil {
		t.Fatal(err)
	}
	members := router.Members()
	out := make([]int, len(members))
	for i, m := range members {
		n, err := m.RowCount(0, table)
		if err != nil {
			t.Fatal(err)
		}
		out[i] = n
	}
	return out
}

// TestElasticFleetAddMemberSQL is the end-to-end acceptance test of the
// tentpole: a 3-member fleet grows to 4 via ALTER ACCELERATOR ... ADD MEMBER,
// the online rebalancer redistributes a hash-distributed table so the new
// member owns a fair share, and the grown fleet answers every query
// byte-identically to a single accelerator holding the same rows.
func TestElasticFleetAddMemberSQL(t *testing.T) {
	const rows = 4000
	sharded := newShardedSystem(t, 3)
	defer sharded.Close()
	single := newTestSystem(t)
	defer single.Close()
	seedElasticTable(t, sharded, "SHARDS", rows)
	seedElasticTable(t, single, "IDAA1", rows)

	s := sharded.AdminSession()

	// Topology changes are administrative.
	if _, err := sharded.Session("JOE").Exec("ALTER ACCELERATOR SHARDS ADD MEMBER IDAA4 SLICES 2"); err == nil {
		t.Fatal("non-admin ALTER ACCELERATOR must fail")
	}

	res, err := s.Exec("ALTER ACCELERATOR SHARDS ADD MEMBER IDAA4 SLICES 2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "rebalance started") {
		t.Fatalf("unexpected ALTER result: %+v", res)
	}
	if err := sharded.WaitForRebalance(""); err != nil {
		t.Fatal(err)
	}

	counts := shardTableRowCounts(t, sharded, "SHARDS", "METRICS")
	if len(counts) != 4 {
		t.Fatalf("fleet has %d members, want 4 (%v)", len(counts), counts)
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != rows {
		t.Fatalf("fleet holds %d rows after rebalance, want %d (%v)", total, rows, counts)
	}
	// The new member must own a fair share of the hash-distributed table
	// (expected 25% under rendezvous hashing; 20% guards against flakiness).
	if counts[3] < rows/5 {
		t.Fatalf("new member owns %d of %d rows (%v); rebalance did not redistribute", counts[3], rows, counts)
	}

	stats, err := sharded.ShardGroupStats("")
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Shards) != 4 {
		t.Fatalf("ShardGroupStats reports %d shards, want 4", len(stats.Shards))
	}
	if stats.RowsMigrated != int64(counts[3]) || stats.RebalanceBatches == 0 || stats.RebalancesCompleted == 0 {
		t.Fatalf("migration counters wrong: %+v vs new-member rows %d", stats, counts[3])
	}
	status, err := sharded.RebalanceStatus("")
	if err != nil {
		t.Fatal(err)
	}
	if status.Active || len(status.MigratingTables) != 0 || status.LastError != "" {
		t.Fatalf("rebalance did not settle: %+v", status)
	}

	// Differential: the grown fleet equals the single accelerator.
	shardedSession := sharded.AdminSession()
	singleSession := single.AdminSession()
	for _, q := range []string{
		"SELECT * FROM metrics ORDER BY id",
		"SELECT region, COUNT(*), SUM(amount) FROM metrics GROUP BY region ORDER BY region",
		"SELECT * FROM metrics WHERE id = 1234",
		"SELECT COUNT(*) FROM metrics WHERE id IN (7, 1900, 3999)",
		"SELECT m.region, COUNT(*) FROM metrics m INNER JOIN metrics o ON m.id = o.id GROUP BY m.region ORDER BY m.region",
	} {
		got, err := shardedSession.Query(q)
		if err != nil {
			t.Fatalf("sharded %q: %v", q, err)
		}
		want, err := singleSession.Query(q)
		if err != nil {
			t.Fatalf("single %q: %v", q, err)
		}
		if resultFingerprint(got) != resultFingerprint(want) {
			t.Errorf("%s diverged after rebalance", q)
		}
	}

	// A rebalance on a balanced fleet is a clean no-op.
	res, err = s.Exec("CALL SYSPROC.ACCEL_REBALANCE('SHARDS')")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "0 rows migrated") {
		t.Fatalf("no-op rebalance reported: %q", res.Message)
	}
}

// TestElasticFleetRemoveMemberSQL drains a member via SQL, checks the fleet
// answers unchanged, and covers the shrink-below-2 refusal end to end.
func TestElasticFleetRemoveMemberSQL(t *testing.T) {
	const rows = 1500
	sys := newShardedSystem(t, 3)
	defer sys.Close()
	seedElasticTable(t, sys, "SHARDS", rows)
	s := sys.AdminSession()

	sumBefore, err := s.Query("SELECT COUNT(*), SUM(amount) FROM metrics")
	if err != nil {
		t.Fatal(err)
	}

	res, err := s.Exec("ALTER ACCELERATOR SHARDS REMOVE MEMBER IDAA2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Message, "drained and removed") {
		t.Fatalf("unexpected REMOVE result: %+v", res)
	}
	counts := shardTableRowCounts(t, sys, "SHARDS", "METRICS")
	if len(counts) != 2 {
		t.Fatalf("fleet has %d members after removal, want 2 (%v)", len(counts), counts)
	}
	if counts[0]+counts[1] != rows {
		t.Fatalf("rows lost in drain: %v, want total %d", counts, rows)
	}
	sumAfter, err := s.Query("SELECT COUNT(*), SUM(amount) FROM metrics")
	if err != nil {
		t.Fatal(err)
	}
	if resultFingerprint(sumBefore) != resultFingerprint(sumAfter) {
		t.Fatalf("aggregates changed across drain: %v vs %v", sumBefore.Rows, sumAfter.Rows)
	}
	// The detached accelerator stays paired standalone.
	if _, err := sys.AcceleratorStats("IDAA2"); err != nil {
		t.Fatalf("detached member no longer paired: %v", err)
	}

	// Regression: a 2-member group must refuse to shrink further.
	if _, err := s.Exec("ALTER ACCELERATOR SHARDS REMOVE MEMBER IDAA3"); err == nil {
		t.Fatal("shrinking a 2-member group must fail")
	} else if !strings.Contains(err.Error(), "at least 2 members") {
		t.Fatalf("unexpected refusal: %v", err)
	}
	if got := shardTableRowCounts(t, sys, "SHARDS", "METRICS"); got[0]+got[1] != rows {
		t.Fatalf("refused removal lost rows: %v", got)
	}
}

// TestRebalanceUnderConcurrentWorkload is the concurrent-correctness test of
// the issue: a writer appends batches and a reader scans the full table while
// a member joins mid-workload. Every scan must observe each committed row
// exactly once — the id set is always exactly 0..k-1 for the k rows whose
// batches have committed, with no duplicate, no missing and no stale row —
// and the reader must never be blocked into a stop-the-world window.
func TestRebalanceUnderConcurrentWorkload(t *testing.T) {
	const seedRows = 900
	const batch = 60
	const writerBatches = 24
	sys := newShardedSystem(t, 3)
	defer sys.Close()
	seedElasticTable(t, sys, "SHARDS", seedRows)

	var writerWg, readerWg sync.WaitGroup
	errs := make(chan error, 64)
	stopReader := make(chan struct{})
	readerReady := make(chan struct{})

	// Writer: appends id ranges in committed batches.
	startWriter := make(chan struct{})
	writerWg.Add(1)
	go func() {
		defer writerWg.Done()
		<-startWriter
		ws := sys.AdminSession()
		for b := 0; b < writerBatches; b++ {
			lo := seedRows + b*batch
			if _, err := ws.Exec(metricsInsertSQL(lo, lo+batch)); err != nil {
				errs <- fmt.Errorf("writer batch %d: %w", b, err)
				return
			}
		}
	}()

	// Reader: every scan must see a perfect prefix of the id space.
	readerWg.Add(1)
	go func() {
		defer readerWg.Done()
		rs := sys.AdminSession()
		lastCount := 0
		scans := 0
		for {
			select {
			case <-stopReader:
				return
			default:
			}
			res, err := rs.Query("SELECT id FROM metrics")
			if err != nil {
				errs <- fmt.Errorf("reader scan: %w", err)
				return
			}
			scans++
			if scans == 1 {
				close(readerReady)
			}
			ids := make([]int, len(res.Rows))
			for i, row := range res.Rows {
				v, err := strconv.Atoi(row[0])
				if err != nil {
					errs <- fmt.Errorf("bad id %q", row[0])
					return
				}
				ids[i] = v
			}
			sort.Ints(ids)
			if len(ids) < lastCount {
				errs <- fmt.Errorf("row count shrank from %d to %d (rows lost mid-migration)", lastCount, len(ids))
				return
			}
			lastCount = len(ids)
			if (len(ids)-seedRows)%batch != 0 {
				errs <- fmt.Errorf("scan saw %d rows: a partially applied batch leaked", len(ids))
				return
			}
			for i, id := range ids {
				if id != i {
					errs <- fmt.Errorf("scan of %d rows: position %d holds id %d (duplicate or missing row)", len(ids), i, id)
					return
				}
			}
		}
	}()

	// Only change topology once the reader demonstrably scans: the point is
	// reads during the rebalance, not after it.
	<-readerReady
	close(startWriter)
	if err := sys.AddShardMember("", "IDAA4", 2); err != nil {
		t.Fatal(err)
	}
	if err := sys.WaitForRebalance(""); err != nil {
		t.Fatal(err)
	}

	// Let the writer finish, stop the reader, then let the rebalancer absorb
	// the writer's trailing batches.
	writerWg.Wait()
	close(stopReader)
	readerWg.Wait()
	if err := sys.RebalanceShardGroup(""); err != nil {
		t.Fatal(err)
	}
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Final state: exact prefix, clean placement, new member holds a share.
	total := seedRows + writerBatches*batch
	res, err := sys.AdminSession().Query("SELECT COUNT(*) FROM metrics")
	if err != nil {
		t.Fatal(err)
	}
	if res.Rows[0][0] != strconv.Itoa(total) {
		t.Fatalf("final count %s, want %d", res.Rows[0][0], total)
	}
	counts := shardTableRowCounts(t, sys, "SHARDS", "METRICS")
	sum := 0
	for _, n := range counts {
		sum += n
	}
	if sum != total {
		t.Fatalf("per-shard counts %v sum to %d, want %d", counts, sum, total)
	}
	if counts[3] < total/6 {
		t.Fatalf("new member owns %d of %d rows (%v) after concurrent rebalance", counts[3], total, counts)
	}
	status, err := sys.RebalanceStatus("")
	if err != nil {
		t.Fatal(err)
	}
	if status.Active || len(status.MigratingTables) != 0 || status.LastError != "" {
		t.Fatalf("fleet did not converge: %+v", status)
	}
}
