package idaax_test

import (
	"strings"
	"testing"

	"idaax"
)

func newTestSystem(t *testing.T) *idaax.System {
	t.Helper()
	return idaax.New(idaax.Config{AcceleratorSlices: 2, AnalyticsPublic: true})
}

func TestFacadeEndToEnd(t *testing.T) {
	sys := newTestSystem(t)
	defer sys.Close()
	s := sys.AdminSession()

	if _, err := s.Exec("CREATE TABLE sales (id BIGINT, region VARCHAR(8), amount DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Exec("INSERT INTO sales VALUES (1,'EU',10),(2,'US',20),(3,'EU',30)")
	if err != nil || res.RowsAffected != 3 {
		t.Fatalf("insert: %+v, %v", res, err)
	}
	if _, err := s.Exec("CALL SYSPROC.ACCEL_ADD_TABLES('IDAA1', 'SALES')"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("CALL SYSPROC.ACCEL_LOAD_TABLES('IDAA1', 'SALES')"); err != nil {
		t.Fatal(err)
	}
	q, err := s.Query("SELECT region, SUM(amount) AS total FROM sales GROUP BY region ORDER BY total DESC")
	if err != nil {
		t.Fatal(err)
	}
	if q.Routed != "IDAA1" || len(q.Rows) != 2 {
		t.Fatalf("query: routed=%s rows=%d", q.Routed, len(q.Rows))
	}
	if q.Value(0, "REGION") != "EU" || q.Value(0, "TOTAL") != "40" {
		t.Fatalf("values: %v", q.Rows)
	}
	if !strings.Contains(q.FormatTable(), "REGION") {
		t.Fatal("FormatTable should include header")
	}

	info, err := sys.TableInfo("SALES")
	if err != nil || info.Kind != "ACCELERATED" || info.DB2Rows != 3 || info.AcceleratorRows != 3 {
		t.Fatalf("table info: %+v, %v", info, err)
	}
	if len(sys.Tables()) != 1 {
		t.Fatal("tables list")
	}
	stats, err := sys.AcceleratorStats("")
	if err != nil || stats.Name != "IDAA1" || stats.QueriesRun == 0 {
		t.Fatalf("accelerator stats: %+v, %v", stats, err)
	}
	m := sys.Metrics()
	if m.StatementsOffloaded == 0 || m.ReplicationRowsCopied != 3 {
		t.Fatalf("metrics: %+v", m)
	}
}

func TestFacadeAOTTransactions(t *testing.T) {
	sys := newTestSystem(t)
	s := sys.AdminSession()
	s.MustExec("CREATE TABLE scratch (k BIGINT, v DOUBLE) IN ACCELERATOR IDAA1")
	if err := s.Begin(); err != nil {
		t.Fatal(err)
	}
	if !s.InTransaction() {
		t.Fatal("transaction should be open")
	}
	s.MustExec("INSERT INTO scratch VALUES (1, 1.5)")
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	res := s.MustExec("SELECT COUNT(*) FROM scratch")
	if res.Rows[0][0] != "1" {
		t.Fatalf("count: %v", res.Rows)
	}
	if err := s.SetAcceleration("NONE"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("SELECT * FROM scratch"); err == nil {
		t.Fatal("AOT query with acceleration NONE should fail")
	}
	if err := s.SetAcceleration("bogus"); err == nil {
		t.Fatal("invalid acceleration mode should fail")
	}
	if s.Acceleration() != "NONE" {
		t.Fatalf("acceleration register: %s", s.Acceleration())
	}
}

func TestFacadeLoadCSVIntoAOT(t *testing.T) {
	sys := newTestSystem(t)
	s := sys.AdminSession()
	s.MustExec("CREATE TABLE ext (id BIGINT, score DOUBLE, tag VARCHAR(8)) IN ACCELERATOR IDAA1")
	csv := "ID,SCORE,TAG\n1,0.5,a\n2,0.7,b\n3,,c\n"
	rep, err := sys.Load("EXT", strings.NewReader(csv), idaax.LoadOptions{HasHeader: true, MapByHeader: true})
	if err != nil {
		t.Fatal(err)
	}
	if rep.RowsLoaded != 3 || rep.LoadedInto != "ACCELERATOR" {
		t.Fatalf("load report: %+v", rep)
	}
	res := s.MustExec("SELECT COUNT(*) AS n, COUNT(score) AS scored FROM ext")
	if res.Value(0, "N") != "3" || res.Value(0, "SCORED") != "2" {
		t.Fatalf("loaded data wrong: %v", res.Rows)
	}
	if _, err := sys.Load("NOSUCH", strings.NewReader(csv), idaax.LoadOptions{}); err == nil {
		t.Fatal("loading into unknown table should fail")
	}
}

func TestFacadeCustomProcedure(t *testing.T) {
	sys := newTestSystem(t)
	s := sys.AdminSession()
	s.MustExec("CREATE TABLE base (id BIGINT, v DOUBLE) IN ACCELERATOR IDAA1")
	s.MustExec("INSERT INTO base VALUES (1, 2), (2, 4), (3, 6)")

	err := sys.RegisterProcedure("DEMO.DOUBLE_IT", "doubles v into a new AOT: (out_table)", true,
		func(ctx *idaax.ProcedureContext, args []string) (*idaax.ProcedureResult, error) {
			out := args[0]
			if _, err := ctx.Exec("CREATE TABLE " + out + " (id BIGINT, v DOUBLE) IN ACCELERATOR IDAA1"); err != nil {
				return nil, err
			}
			n, err := ctx.Exec("INSERT INTO " + out + " SELECT id, v * 2 FROM base")
			if err != nil {
				return nil, err
			}
			rows, err := ctx.Query("SELECT COUNT(*) FROM " + out)
			if err != nil {
				return nil, err
			}
			return &idaax.ProcedureResult{RowsAffected: n, Message: "rows=" + rows.Rows[0][0]}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if err := sys.RegisterProcedure("DEMO.DOUBLE_IT", "dup", true, nil); err == nil {
		t.Fatal("duplicate registration should fail")
	}
	res := s.MustExec("CALL DEMO.DOUBLE_IT('DOUBLED')")
	if res.RowsAffected != 3 || !strings.Contains(res.Message, "rows=3") {
		t.Fatalf("call result: %+v", res)
	}
	out := s.MustExec("SELECT SUM(v) FROM doubled")
	if out.Rows[0][0] != "24" {
		t.Fatalf("doubled sum: %v", out.Rows)
	}
	found := false
	for _, p := range sys.Procedures() {
		if p == "DEMO.DOUBLE_IT" {
			found = true
		}
	}
	if !found {
		t.Fatal("procedure not listed")
	}

	// InsertValues path.
	err = sys.RegisterProcedure("DEMO.SEED", "seed rows", true,
		func(ctx *idaax.ProcedureContext, args []string) (*idaax.ProcedureResult, error) {
			n, err := ctx.InsertValues("BASE", [][]any{{int64(10), 1.0}, {int64(11), nil}})
			if err != nil {
				return nil, err
			}
			return &idaax.ProcedureResult{RowsAffected: n}, nil
		})
	if err != nil {
		t.Fatal(err)
	}
	if res := s.MustExec("CALL DEMO.SEED()"); res.RowsAffected != 2 {
		t.Fatalf("seed: %+v", res)
	}
}

func TestFacadeAnalyticsProceduresRegistered(t *testing.T) {
	sys := newTestSystem(t)
	procs := sys.Procedures()
	wanted := []string{"IDAX.KMEANS", "IDAX.PREDICT", "IDAX.LOGISTIC_REGRESSION", "SYSPROC.ACCEL_ADD_TABLES"}
	for _, w := range wanted {
		found := false
		for _, p := range procs {
			if p == w {
				found = true
			}
		}
		if !found {
			t.Errorf("procedure %s not registered", w)
		}
	}
	// DisableAnalytics leaves only the SYSPROC administration procedures.
	bare := idaax.New(idaax.Config{DisableAnalytics: true})
	for _, p := range bare.Procedures() {
		if strings.HasPrefix(p, "IDAX.") {
			t.Errorf("IDAX procedure %s registered despite DisableAnalytics", p)
		}
	}
}

func TestParseSQLHelper(t *testing.T) {
	kind, err := idaax.ParseSQL("SELECT 1")
	if err != nil || !strings.Contains(kind, "SelectStmt") {
		t.Fatalf("ParseSQL: %q, %v", kind, err)
	}
	if _, err := idaax.ParseSQL("NOT SQL AT ALL"); err == nil {
		t.Fatal("invalid SQL should fail")
	}
}

func TestExecScriptAndErrors(t *testing.T) {
	sys := newTestSystem(t)
	s := sys.AdminSession()
	results, err := s.ExecScript(`
		CREATE TABLE a (x BIGINT);
		INSERT INTO a VALUES (1), (2);
		SELECT COUNT(*) FROM a;
	`)
	if err != nil || len(results) != 3 {
		t.Fatalf("script: %d results, %v", len(results), err)
	}
	if results[2].Rows[0][0] != "2" {
		t.Fatalf("script query result: %v", results[2].Rows)
	}
	if _, err := s.Query("INSERT INTO a VALUES (3)"); err == nil {
		t.Fatal("Query on a non-result statement should fail")
	}
	if _, err := s.Exec("SELECT * FROM missing_table"); err == nil {
		t.Fatal("querying a missing table should fail")
	}
}
