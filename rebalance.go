package idaax

import "idaax/internal/shard"

// RebalanceStatus reports the progress of a shard group's online rebalancer.
type RebalanceStatus struct {
	// Epoch counts membership changes of the group (member added, member
	// draining, member detached).
	Epoch int64
	// Active reports whether the background rebalancer is currently running.
	Active bool
	// MigratingTables lists the tables whose rows may still be placed by a
	// superseded partition map, sorted by name.
	MigratingTables []string
	// RowsMigrated counts rows moved between shards since the group was
	// created; Batches counts the committed migration batches behind them.
	RowsMigrated int64
	Batches      int64
	// RowsPerSec is the live migration rate of the running rebalance (0 when
	// the rebalancer is idle).
	RowsPerSec float64
	// LastError is the most recent rebalance failure ("" when none).
	LastError string
}

// AddShardMember grows a shard group at runtime: the named accelerator is
// paired first if unknown (with the given scan parallelism), joins the group,
// and a background rebalancer starts migrating the hash-partitioned rows the
// new member now owns — in bounded batches, while queries, DML and CDC
// replication keep running against the group. It is the API twin of
// ALTER ACCELERATOR <group> ADD MEMBER <name> [SLICES n]. Use
// WaitForRebalance to block until the fleet has converged.
func (s *System) AddShardMember(group, name string, slices int) error {
	return s.coord.AddShardMember(s.shardGroupName(group), name, slices)
}

// RemoveShardMember shrinks a shard group at runtime: the member's rows are
// drained onto the remaining shards and the member is detached from the
// group (it stays paired as a standalone accelerator). The call blocks until
// the drain completes. Shrinking below two members is refused — a group needs
// at least two members to shard over; fold back to single-accelerator mode by
// dropping the group's tables instead. It is the API twin of
// ALTER ACCELERATOR <group> REMOVE MEMBER <name>.
func (s *System) RemoveShardMember(group, name string) error {
	return s.coord.RemoveShardMember(s.shardGroupName(group), name)
}

// RebalanceShardGroup forces a rebalance pass on the group and waits for it
// to converge (the API twin of CALL SYSPROC.ACCEL_REBALANCE). It is a no-op
// on an already balanced group.
func (s *System) RebalanceShardGroup(group string) error {
	router, err := s.coord.ShardGroup(s.shardGroupName(group))
	if err != nil {
		return err
	}
	router.StartRebalance()
	return router.WaitRebalance()
}

// WaitForRebalance blocks until the group's background rebalancer (started by
// AddShardMember / ALTER ACCELERATOR ... ADD MEMBER) has finished and returns
// its error, if any.
func (s *System) WaitForRebalance(group string) error {
	router, err := s.coord.ShardGroup(s.shardGroupName(group))
	if err != nil {
		return err
	}
	return router.WaitRebalance()
}

// RebalanceStatus returns the group's current rebalance progress.
func (s *System) RebalanceStatus(group string) (RebalanceStatus, error) {
	router, err := s.coord.ShardGroup(s.shardGroupName(group))
	if err != nil {
		return RebalanceStatus{}, err
	}
	return toRebalanceStatus(router.RebalanceStatus()), nil
}

func (s *System) shardGroupName(group string) string {
	if group == "" {
		return s.cfg.ShardGroupName
	}
	return group
}

func toRebalanceStatus(st shard.RebalanceStatus) RebalanceStatus {
	return RebalanceStatus{
		Epoch:           st.Epoch,
		Active:          st.Active,
		MigratingTables: st.MigratingTables,
		RowsMigrated:    st.RowsMigrated,
		Batches:         st.Batches,
		RowsPerSec:      st.RowsPerSec,
		LastError:       st.LastError,
	}
}
