// Package idaax is a Go implementation of the system described in "Extending
// Database Accelerators for Data Transformations and Predictive Analytics"
// (EDBT 2016): a DB2-style host database with an attached analytics
// accelerator, extended with accelerator-only tables (AOTs), an in-database
// analytics procedure framework, and a loader that ingests external data
// directly into the accelerator.
//
// The package exposes a small facade over the full system:
//
//	sys := idaax.New(idaax.Config{})
//	defer sys.Close()
//	session := sys.AdminSession()
//	session.Exec("CREATE TABLE stage1 (k BIGINT, v DOUBLE) IN ACCELERATOR IDAA1")
//	session.Exec("INSERT INTO stage1 SELECT ... FROM accelerated_table ...")
//	session.Query("SELECT ... FROM stage1 ...")
//
// Everything below the facade lives in internal/ packages: the row-store DB2
// engine, the columnar sliced accelerator, the federation/offload layer, the
// replication pipeline, the loader and the analytics library.
package idaax

import (
	"time"

	"idaax/internal/vfs"
)

// AcceleratorConfig describes one accelerator of a multi-accelerator fleet.
type AcceleratorConfig struct {
	// Name is the accelerator's pairing name.
	Name string
	// Slices sets the accelerator's scan parallelism (default: number of CPUs).
	Slices int
}

// Config configures a System.
type Config struct {
	// AcceleratorName names the default accelerator (default "IDAA1").
	// Ignored when Accelerators is set.
	AcceleratorName string
	// AcceleratorSlices sets the accelerator's scan/aggregation parallelism
	// (default: number of CPUs).
	AcceleratorSlices int
	// Accelerators, when non-empty, pairs a fleet of accelerators instead of
	// the single default one. The first entry becomes the default accelerator,
	// and with two or more entries a sharded virtual accelerator named
	// ShardGroupName spans the whole fleet: tables created with
	//
	//	CREATE TABLE t (...) IN ACCELERATOR SHARDS DISTRIBUTE BY HASH(col)
	//
	// are partitioned across every member, queries against them scatter-gather
	// with two-phase aggregation, and replication fans changes out to the
	// owning shard.
	Accelerators []AcceleratorConfig
	// ShardGroupName names the sharded virtual accelerator (default "SHARDS").
	ShardGroupName string
	// LockTimeout bounds DB2 lock waits (default 2s).
	LockTimeout time.Duration
	// RegisterAnalytics installs the IDAX.* analytics procedures (default true
	// unless DisableAnalytics is set).
	DisableAnalytics bool
	// AnalyticsPublic grants EXECUTE on the analytics procedures to PUBLIC.
	// When false, only SYSADM and explicit grantees may call them.
	AnalyticsPublic bool
	// AdminUser overrides the implicit administrator authorization id
	// (default SYSADM).
	AdminUser string
	// QueryHistorySize sets how many recent statements the query history ring
	// retains (default 256).
	QueryHistorySize int
	// SlowQueryThreshold is the latency at or above which a statement's full
	// execution trace is captured into the slow-query log (default 100ms; a
	// negative value disables slow-query capture). Tune at runtime with
	// System.SetSlowQueryThreshold.
	SlowQueryThreshold time.Duration
	// EventLogSize sets how many events the structured journal retains
	// (default 1024; the oldest are overwritten).
	EventLogSize int
	// WatchdogInterval is the health watchdog's rule-evaluation period
	// (default 1s). The watchdog starts with ServeOps or
	// StartHealthWatchdog, and stops with Close.
	WatchdogInterval time.Duration
	// CDCLagThreshold is the replication apply lag at which the watchdog
	// degrades the replication component and journals a cdc_lag_high event
	// (default 5s).
	CDCLagThreshold time.Duration

	// DataDir, when non-empty, makes the system durable: DML and replication
	// batches are journaled to a write-ahead log under this directory,
	// checkpoints write per-column segment files, and OpenDurable (or New)
	// recovers the exact committed state after a crash or restart. Empty
	// means purely in-memory (the default, and the historical behavior).
	DataDir string
	// FsyncPolicy controls when the WAL reaches stable storage: "always"
	// (default; a commit returns only after fsync, group-shared across
	// concurrent committers), "grouped" (background fsync every
	// GroupCommitInterval; loss bounded to that window) or "never" (fsync
	// only at rotate/checkpoint/close; fastest, crash loses the OS buffer).
	FsyncPolicy string
	// GroupCommitInterval is the background fsync period for the "grouped"
	// policy (default 2ms).
	GroupCommitInterval time.Duration
	// CheckpointWALBytes triggers an automatic checkpoint when the WAL grows
	// past this many bytes since the last one (default 64 MiB; a negative
	// value disables the trigger — checkpoints then happen only via
	// System.Checkpoint and Close).
	CheckpointWALBytes int64
	// RecoveryParallelism bounds how many tables recovery loads concurrently
	// from the checkpoint (default: number of CPUs).
	RecoveryParallelism int

	// fs overrides the filesystem the durable store writes through; tests
	// inject a crash-simulating in-memory filesystem. When set, DataDir may
	// be empty.
	fs vfs.FS
}

func (c Config) withDefaults() Config {
	if len(c.Accelerators) > 0 {
		c.AcceleratorName = c.Accelerators[0].Name
	}
	if c.AcceleratorName == "" {
		c.AcceleratorName = "IDAA1"
	}
	if c.ShardGroupName == "" {
		c.ShardGroupName = "SHARDS"
	}
	if c.AdminUser == "" {
		c.AdminUser = "SYSADM"
	}
	return c
}
