package idaax_test

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"idaax"
)

// newShardedSystem builds a system with n accelerators and the implicit SHARDS
// group spanning them.
func newShardedSystem(t *testing.T, n int) *idaax.System {
	t.Helper()
	accels := make([]idaax.AcceleratorConfig, n)
	for i := range accels {
		accels[i] = idaax.AcceleratorConfig{Name: fmt.Sprintf("IDAA%d", i+1), Slices: 2}
	}
	return idaax.New(idaax.Config{Accelerators: accels, AnalyticsPublic: true})
}

func seedShardedTable(t *testing.T, sys *idaax.System, accelerator string) {
	t.Helper()
	s := sys.AdminSession()
	ddl := fmt.Sprintf(
		"CREATE TABLE metrics (id BIGINT NOT NULL, region VARCHAR(8), amount DOUBLE) IN ACCELERATOR %s DISTRIBUTE BY HASH(id)",
		accelerator)
	if _, err := s.Exec(ddl); err != nil {
		t.Fatal(err)
	}
	regions := []string{"EU", "US", "APAC"}
	var sb strings.Builder
	sb.WriteString("INSERT INTO metrics VALUES ")
	for i := 0; i < 300; i++ {
		if i > 0 {
			sb.WriteString(", ")
		}
		fmt.Fprintf(&sb, "(%d, '%s', %g)", i, regions[i%3], float64(i%13)*0.25)
	}
	if res, err := s.Exec(sb.String()); err != nil || res.RowsAffected != 300 {
		t.Fatalf("seed insert: %+v, %v", res, err)
	}
}

func resultFingerprint(res *idaax.Result) string {
	var sb strings.Builder
	sb.WriteString(strings.Join(res.Columns, ",") + "\n")
	for _, row := range res.Rows {
		sb.WriteString(strings.Join(row, "|") + "\n")
	}
	return sb.String()
}

// TestShardedDifferentialSQL is the end-to-end acceptance test: a table
// created with DISTRIBUTE BY HASH over two configured accelerators answers
// every statement byte-identically to the same table on a single-accelerator
// system.
func TestShardedDifferentialSQL(t *testing.T) {
	sharded := newShardedSystem(t, 2)
	defer sharded.Close()
	single := newTestSystem(t)
	defer single.Close()

	seedShardedTable(t, sharded, "SHARDS")
	seedShardedTable(t, single, "IDAA1")

	queries := []struct {
		sql     string
		ordered bool
	}{
		{"SELECT * FROM metrics ORDER BY id", true},
		{"SELECT id, amount FROM metrics WHERE amount > 1.5 ORDER BY id", true},
		{"SELECT COUNT(*), SUM(amount), MIN(amount), MAX(amount), AVG(amount) FROM metrics", true},
		{"SELECT region, COUNT(*) AS n, SUM(amount) AS total FROM metrics GROUP BY region ORDER BY region", true},
		{"SELECT region, AVG(amount) FROM metrics GROUP BY region HAVING COUNT(*) > 10 ORDER BY region", true},
		{"SELECT DISTINCT region FROM metrics ORDER BY region", true},
		{"SELECT id, region FROM metrics ORDER BY id LIMIT 20 OFFSET 10", true},
		{"SELECT * FROM metrics WHERE id = 42", true},
		{"SELECT region, COUNT(*) FROM metrics WHERE id = 42 GROUP BY region", false},
		{"SELECT m.region, COUNT(*) FROM metrics m INNER JOIN metrics o ON m.id = o.id GROUP BY m.region ORDER BY m.region", true},
	}
	shardedSession := sharded.AdminSession()
	singleSession := single.AdminSession()
	for _, q := range queries {
		got, err := shardedSession.Query(q.sql)
		if err != nil {
			t.Fatalf("sharded %q: %v", q.sql, err)
		}
		want, err := singleSession.Query(q.sql)
		if err != nil {
			t.Fatalf("single %q: %v", q.sql, err)
		}
		gf, wf := resultFingerprint(got), resultFingerprint(want)
		if !q.ordered {
			gl, wl := strings.Split(gf, "\n"), strings.Split(wf, "\n")
			sort.Strings(gl)
			sort.Strings(wl)
			gf, wf = strings.Join(gl, "\n"), strings.Join(wl, "\n")
		}
		if gf != wf {
			t.Errorf("%s:\n--- sharded ---\n%s--- single ---\n%s", q.sql, gf, wf)
		}
	}

	// DML flows through the router identically.
	for _, stmt := range []string{
		"UPDATE metrics SET amount = amount * 2 WHERE region = 'EU'",
		"DELETE FROM metrics WHERE id >= 280",
	} {
		gres, err := shardedSession.Exec(stmt)
		if err != nil {
			t.Fatal(err)
		}
		wres, err := singleSession.Exec(stmt)
		if err != nil {
			t.Fatal(err)
		}
		if gres.RowsAffected != wres.RowsAffected {
			t.Fatalf("%s: affected %d sharded vs %d single", stmt, gres.RowsAffected, wres.RowsAffected)
		}
	}
	got, err := shardedSession.Query("SELECT id, region, amount FROM metrics ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	want, err := singleSession.Query("SELECT id, region, amount FROM metrics ORDER BY id")
	if err != nil {
		t.Fatal(err)
	}
	if resultFingerprint(got) != resultFingerprint(want) {
		t.Fatal("post-DML state diverged between sharded and single-accelerator systems")
	}
}

func TestShardGroupStatsAPI(t *testing.T) {
	sys := newShardedSystem(t, 3)
	defer sys.Close()
	seedShardedTable(t, sys, "SHARDS")
	s := sys.AdminSession()

	if _, err := s.Query("SELECT region, SUM(amount) FROM metrics GROUP BY region"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Query("SELECT * FROM metrics WHERE id = 5"); err != nil {
		t.Fatal(err)
	}

	stats, err := sys.ShardGroupStats("") // default group name
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.Shards) != 3 {
		t.Fatalf("expected 3 shard entries, got %d", len(stats.Shards))
	}
	var scanned, ingested int64
	for _, sh := range stats.Shards {
		if sh.RowsIngested == 0 {
			t.Fatalf("shard %s ingested no rows; hash distribution degenerate", sh.Name)
		}
		scanned += sh.RowsScanned
		ingested += sh.RowsIngested
	}
	if scanned != stats.Group.RowsScanned {
		t.Fatalf("per-shard RowsScanned sum %d != aggregate %d", scanned, stats.Group.RowsScanned)
	}
	if ingested != stats.Group.RowsIngested {
		t.Fatalf("per-shard RowsIngested sum %d != aggregate %d", ingested, stats.Group.RowsIngested)
	}
	if stats.QueriesRouted < 2 || stats.TwoPhaseAggregates < 1 || stats.QueriesPruned < 1 {
		t.Fatalf("routing counters not recorded: %+v", stats)
	}

	// The generic per-accelerator stats API answers for the group name too.
	agg, err := sys.AcceleratorStats("SHARDS")
	if err != nil {
		t.Fatal(err)
	}
	if agg.RowsScanned != stats.Group.RowsScanned || agg.Tables != 1 {
		t.Fatalf("AcceleratorStats(SHARDS) = %+v", agg)
	}
	// Asking for shard stats of a plain accelerator fails cleanly.
	if _, err := sys.ShardGroupStats("IDAA1"); err == nil {
		t.Fatal("ShardGroupStats on a single accelerator must fail")
	}
}

func TestShardedReplicationSQL(t *testing.T) {
	sys := newShardedSystem(t, 2)
	defer sys.Close()
	s := sys.AdminSession()

	if _, err := s.Exec("CREATE TABLE facts (id BIGINT, v DOUBLE)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO facts VALUES (1,1),(2,2),(3,3),(4,4)"); err != nil {
		t.Fatal(err)
	}
	// Accelerate onto the shard group: the shadow copy is partitioned.
	if _, err := s.Exec("CALL SYSPROC.ACCEL_ADD_TABLES('SHARDS', 'FACTS', 'ID')"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("CALL SYSPROC.ACCEL_LOAD_TABLES('SHARDS', 'FACTS')"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("CALL SYSPROC.ACCEL_SET_TABLES_REPLICATION('SHARDS', 'FACTS', 'ON')"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("INSERT INTO facts VALUES (5,5),(6,6)"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Exec("CALL SYSPROC.ACCEL_SYNC_TABLES('SHARDS')"); err != nil {
		t.Fatal(err)
	}
	res, err := s.Query("SELECT COUNT(*), SUM(v) FROM facts")
	if err != nil {
		t.Fatal(err)
	}
	if res.Routed != "SHARDS" {
		t.Fatalf("query routed to %s, want SHARDS", res.Routed)
	}
	if res.Rows[0][0] != "6" || res.Rows[0][1] != "21" {
		t.Fatalf("replicated sharded table answered %v", res.Rows[0])
	}
}
